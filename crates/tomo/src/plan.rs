//! Plan-and-scratch reconstruction engine.
//!
//! The paper's streaming branch lives on kernel speed: `streamtomocupy`
//! keeps persistent cuFFT plans and GPU scratch buffers for the whole
//! acquisition, so the per-scan work is *only* the FFTs and the
//! gather/scatter — nothing is re-derived per slice. This module is the
//! CPU analogue. A [`ReconPlan`] is built once per `(Geometry,
//! FbpConfig)` and owns everything that is invariant across slices:
//!
//! * the padded ramp-filter frequency response (previously rebuilt — and
//!   re-FFT'd — once per `filter_sinogram` call, i.e. once per slice);
//! * an [`FftPlan`] with precomputed twiddle and bit-reversal tables;
//! * per-angle `(sin θ, cos θ)` tables;
//! * per-row disk-mask extents, so backprojection never touches pixels
//!   the mask would zero anyway.
//!
//! Per-thread mutable state lives in a [`ReconScratch`] (one padded
//! complex FFT buffer plus one filtered-sinogram buffer), created once
//! per worker via [`ReconPlan::make_scratch`] and reused across slices.
//!
//! Two kernel-level optimisations ride on the plan:
//!
//! * **packed real FFT filtering** — the ramp response is real and
//!   symmetric, so two real sinogram rows are packed into one complex
//!   signal (`row_a + i·row_b`), filtered with a single FFT round trip,
//!   and unpacked from the real/imaginary parts. Linearity of the FFT
//!   and the realness of the filter make this exact; it halves the FFT
//!   work per sinogram.
//! * **interval-clipped backprojection** — `t = x·cosθ + y·sinθ +
//!   center` is affine in `x`, so the valid `x` range (where `t` lands
//!   on the detector *and* inside the disk mask) is a single interval
//!   per `(angle, row)` pair. Those intervals are slice-independent, so
//!   the plan precomputes all of them at build time and the hot loop
//!   carries neither bounds checks nor the per-row binary search.
//! * **SIMD row kernels with cache-blocked tiling** — the fused-lerp
//!   inner loop runs through [`crate::simd::backproject_row`] (8 f32
//!   lanes per iteration on AVX2/FMA hosts, lane-chunked scalar
//!   fallback elsewhere), and the angle sweep is tiled over blocks of
//!   output rows so the block being accumulated stays in L1/L2 while
//!   every sinogram row streams over it once per tile.
//!
//! The pre-plan implementations are retained verbatim in
//! [`crate::reference`]; equivalence tests and the `kernels` bench
//! compare against them.

use crate::fbp::FbpConfig;
use crate::fft::{next_pow2, Complex, FftPlan};
use crate::filter::{FilterKind, FilterPlan};
use crate::geometry::Geometry;
use crate::gridrec::{signed_index, GridrecConfig};
use crate::image::{Image, Sinogram, Volume};
use crate::radon::in_recon_disk;
use crate::TomoError;
use rayon::prelude::*;

/// Everything invariant across slices for filtered back projection of a
/// fixed `(Geometry, FbpConfig)` pair.
#[derive(Debug, Clone)]
pub struct ReconPlan {
    geom: Geometry,
    cfg: FbpConfig,
    /// Cached padded filter response + FFT twiddle tables.
    filter: FilterPlan,
    /// `(sin θ, cos θ)` per projection angle.
    trig: Vec<(f64, f64)>,
    /// Per output row `y`: the half-open pixel range `[x0, x1)` to
    /// reconstruct (disk-mask extent, or the full row when unmasked).
    extents: Vec<(usize, usize)>,
    /// Per `(angle, row)` pair (index `a * n_det + y`): the half-open
    /// pixel range whose detector coordinate lands on the detector,
    /// already intersected with the row extent. Slice-independent, so
    /// the per-row binary search runs once at build time instead of
    /// once per backprojected row.
    intervals: Vec<(u32, u32)>,
    /// Backprojection weight `π / n_angles`.
    scale: f64,
    /// Which SIMD kernels the hot loops dispatch to.
    path: crate::simd::SimdPath,
}

/// Reusable per-thread buffers for plan-based reconstruction.
#[derive(Debug, Clone)]
pub struct ReconScratch {
    /// Padded complex FFT staging buffer (`pad` long).
    cbuf: Vec<Complex>,
    /// Filtered-sinogram buffer.
    filtered: Sinogram,
    /// Prescaled f32 sinogram (`n_angles × (n_det + 1)`, one sentinel
    /// `0.0` per row) feeding the SIMD backprojection kernel.
    rowsf: Vec<f32>,
}

impl ReconPlan {
    /// Build a plan. Fails when the geometry is degenerate (no angles,
    /// rotation center off the detector).
    pub fn new(geom: &Geometry, cfg: &FbpConfig) -> Result<ReconPlan, TomoError> {
        if geom.n_angles() == 0 {
            return Err(TomoError::BadParameter("no projection angles".into()));
        }
        geom.validate(geom.n_angles(), geom.n_det)?;
        let n = geom.n_det;
        let trig: Vec<(f64, f64)> = geom.angles.iter().map(|&t| t.sin_cos()).collect();
        let extents: Vec<(usize, usize)> = (0..n)
            .map(|y| {
                if !cfg.mask_disk {
                    return (0, n);
                }
                let x0 = (0..n).find(|&x| in_recon_disk(x, y, n));
                match x0 {
                    None => (0, 0),
                    Some(x0) => {
                        let x1 = (x0..n).take_while(|&x| in_recon_disk(x, y, n)).count() + x0;
                        (x0, x1)
                    }
                }
            })
            .collect();
        let intervals = build_intervals(&trig, &extents, n, geom.center);
        Ok(ReconPlan {
            geom: geom.clone(),
            cfg: *cfg,
            filter: FilterPlan::new(cfg.filter, n),
            trig,
            extents,
            intervals,
            scale: std::f64::consts::PI / geom.n_angles() as f64,
            path: crate::simd::detect(),
        })
    }

    /// Force a specific SIMD path (clamped to host capability) for the
    /// backprojection kernel, the filter multiply, and the embedded FFT
    /// plan. Used by the benches and the SIMD-vs-scalar gates.
    pub fn with_simd_path(mut self, path: crate::simd::SimdPath) -> ReconPlan {
        self.path = path.clamp_to_host();
        self.filter = self.filter.with_simd_path(path);
        self
    }

    /// Which SIMD path the hot loops dispatch to.
    pub fn simd_path(&self) -> crate::simd::SimdPath {
        self.path
    }

    /// Per output row `y`: the half-open pixel range `[x0, x1)` the
    /// plan reconstructs (disk-mask extent, or the full row unmasked).
    pub fn row_extents(&self) -> &[(usize, usize)] {
        &self.extents
    }

    pub fn geometry(&self) -> &Geometry {
        &self.geom
    }

    pub fn config(&self) -> &FbpConfig {
        &self.cfg
    }

    /// Allocate the mutable buffers one worker thread needs. Create one
    /// per thread and reuse it for every slice that thread processes.
    pub fn make_scratch(&self) -> ReconScratch {
        ReconScratch {
            cbuf: self.filter.make_buf(),
            filtered: Sinogram::zeros(self.geom.n_angles(), self.geom.n_det),
            rowsf: vec![0.0; self.geom.n_angles() * (self.geom.n_det + 1)],
        }
    }

    /// Filter every sinogram row into `scratch.filtered` using the
    /// cached frequency response, two rows per complex FFT (see
    /// [`FilterPlan::filter_rows`]).
    pub fn filter_sinogram_with(&self, sino: &Sinogram, scratch: &mut ReconScratch) {
        let ReconScratch { cbuf, filtered, .. } = scratch;
        self.filter.filter_rows(sino, cbuf, filtered);
    }

    /// Accumulate the backprojection of `sino` into `out` (`n_det²`
    /// pixels, row-major), weighting every angle by `scale`. Pixels
    /// outside the plan's row extents are untouched. Allocates the
    /// prescale buffer internally; hot loops should go through
    /// [`ReconPlan::fbp_slice_into`], which reuses scratch.
    pub fn backproject_acc(&self, sino: &Sinogram, out: &mut [f32], scale: f64) {
        let mut rowsf = vec![0.0f32; self.geom.n_angles() * (self.geom.n_det + 1)];
        prescale_sino(sino, scale, &mut rowsf);
        self.backproject_prescaled(&rowsf, out);
    }

    /// Accumulate the backprojection of a single projection row (angle
    /// index `a` of the plan's geometry) into `out`.
    pub fn backproject_angle_acc(&self, row: &[f32], a: usize, out: &mut [f32], scale: f64) {
        let n = self.geom.n_det;
        debug_assert_eq!(out.len(), n * n);
        let mut rowf = vec![0.0f32; n + 1];
        prescale_row(row, scale, &mut rowf);
        let (_, cos_t) = self.trig[a];
        let c = (n as f64 - 1.0) / 2.0;
        for y in 0..n {
            let (xa, xb) = self.intervals[a * n + y];
            let (xa, xb) = (xa as usize, xb as usize);
            if xa >= xb {
                continue;
            }
            let t0 = self.t_start(a, y, xa, c);
            crate::simd::backproject_row(
                self.path,
                &rowf,
                t0,
                cos_t,
                &mut out[y * n + xa..y * n + xb],
            );
        }
    }

    /// Detector coordinate of pixel `(xa, y)` at angle `a`, with the
    /// same float association as the interval predicate so the kernel
    /// never starts outside `[0, n_det − 1]`.
    #[inline]
    fn t_start(&self, a: usize, y: usize, xa: usize, c: f64) -> f64 {
        let (sin_t, cos_t) = self.trig[a];
        let yr = y as f64 - c;
        (xa as f64 - c) * cos_t + (yr * sin_t + self.geom.center)
    }

    /// Backproject a whole prescaled sinogram (`rowsf` as produced by
    /// [`prescale_sino`]) into `out`, tiled over blocks of output rows:
    /// the loop order is tile → angle → row, so the `tile × n_det`
    /// output block being accumulated stays cache-resident while every
    /// sinogram row streams over it once per tile, and each output
    /// pixel still sums its angles in ascending order (the result is
    /// numerically identical to the untiled sweep).
    fn backproject_prescaled(&self, rowsf: &[f32], out: &mut [f32]) {
        let n = self.geom.n_det;
        let stride = n + 1;
        debug_assert_eq!(out.len(), n * n);
        debug_assert_eq!(rowsf.len(), self.trig.len() * stride);
        let c = (n as f64 - 1.0) / 2.0;
        let tile = tile_rows(n);
        let mut y0 = 0usize;
        while y0 < n {
            let y1 = (y0 + tile).min(n);
            for (a, &(sin_t, cos_t)) in self.trig.iter().enumerate() {
                let rowf = &rowsf[a * stride..(a + 1) * stride];
                let ivals = &self.intervals[a * n..(a + 1) * n];
                for (y, &(xa, xb)) in ivals.iter().enumerate().take(y1).skip(y0) {
                    let (xa, xb) = (xa as usize, xb as usize);
                    if xa >= xb {
                        continue;
                    }
                    let yr = y as f64 - c;
                    let t0 = (xa as f64 - c) * cos_t + (yr * sin_t + self.geom.center);
                    crate::simd::backproject_row(
                        self.path,
                        rowf,
                        t0,
                        cos_t,
                        &mut out[y * n + xa..y * n + xb],
                    );
                }
            }
            y0 = y1;
        }
    }

    /// Filtered back projection of one sinogram directly into a
    /// caller-provided `n_det × n_det` pixel buffer (e.g. a volume
    /// slice). The buffer is fully overwritten. Shapes must already be
    /// validated against the plan's geometry.
    pub fn fbp_slice_into(&self, sino: &Sinogram, scratch: &mut ReconScratch, out: &mut [f32]) {
        let ReconScratch {
            cbuf,
            filtered,
            rowsf,
        } = scratch;
        self.filter.filter_rows(sino, cbuf, filtered);
        prescale_sino(filtered, self.scale, rowsf);
        out.fill(0.0);
        self.backproject_prescaled(rowsf, out);
    }

    /// Filtered back projection of one sinogram, returning a fresh
    /// image. Validates shapes.
    pub fn fbp_slice_with(
        &self,
        sino: &Sinogram,
        scratch: &mut ReconScratch,
    ) -> Result<Image, TomoError> {
        self.geom.validate(sino.n_angles, sino.n_det)?;
        let n = self.geom.n_det;
        let mut img = Image::square(n);
        self.fbp_slice_into(sino, scratch, &mut img.data);
        Ok(img)
    }

    /// Reconstruct a stack of sinograms directly into a [`Volume`],
    /// slice-parallel with one scratch per worker thread and no
    /// intermediate `Vec<Image>` copy.
    pub fn fbp_volume(&self, sinos: &[Sinogram]) -> Result<Volume, TomoError> {
        if sinos.is_empty() {
            return Err(TomoError::BadParameter("empty sinogram stack".into()));
        }
        for s in sinos {
            self.geom.validate(s.n_angles, s.n_det)?;
        }
        let n = self.geom.n_det;
        let mut vol = Volume::zeros(n, n, sinos.len());
        vol.data.par_chunks_mut(n * n).enumerate().for_each_init(
            || self.make_scratch(),
            |scratch, (z, slice)| self.fbp_slice_into(&sinos[z], scratch, slice),
        );
        Ok(vol)
    }

    /// Forward-project `img` into `sino` using the plan's trig tables
    /// and per-ray clipping of the integration range.
    pub fn forward_into(&self, img: &Image, sino: &mut Sinogram) {
        debug_assert_eq!(sino.n_angles, self.geom.n_angles());
        debug_assert_eq!(sino.n_det, self.geom.n_det);
        for a in 0..self.geom.n_angles() {
            let (sin_t, cos_t) = self.trig[a];
            let row = sino.row_mut(a);
            crate::radon::project_angle_into(img, &self.geom, sin_t, cos_t, row);
        }
    }

    /// Forward-project a single angle of the plan's geometry into a
    /// detector row buffer.
    pub fn forward_angle_into(&self, img: &Image, a: usize, out: &mut [f32]) {
        let (sin_t, cos_t) = self.trig[a];
        crate::radon::project_angle_into(img, &self.geom, sin_t, cos_t, out);
    }
}

/// Pre-multiply a projection row by the angle weight (in f64, rounded
/// once to f32), so the backprojection inner loop pays no per-pixel
/// scale multiply. `rowf` must hold `n + 1` entries; the extra
/// sentinel stays `0.0` and is only ever read with an interpolation
/// weight of (numerically) zero.
fn prescale_row(row: &[f32], scale: f64, rowf: &mut [f32]) {
    debug_assert_eq!(rowf.len(), row.len() + 1);
    for (d, &s) in rowf.iter_mut().zip(row.iter()) {
        *d = (s as f64 * scale) as f32;
    }
    rowf[row.len()] = 0.0;
}

/// [`prescale_row`] over a whole sinogram, stride `n_det + 1` per row.
fn prescale_sino(sino: &Sinogram, scale: f64, rowsf: &mut [f32]) {
    let stride = sino.n_det + 1;
    debug_assert_eq!(rowsf.len(), sino.n_angles * stride);
    for (a, dst) in rowsf.chunks_exact_mut(stride).enumerate() {
        prescale_row(sino.row(a), scale, dst);
    }
}

/// Output rows per backprojection tile: sized so the `tile × n_det`
/// f32 block under accumulation fits comfortably in L1 (32 KiB),
/// floored at 8 rows so small images stay a single sweep.
fn tile_rows(n: usize) -> usize {
    (8192 / n.max(1)).clamp(8, 64)
}

/// Per-`(angle, row)` clip intervals: the half-open `x` range whose
/// detector coordinate lands on the detector, intersected with the
/// row extents. Uses the exact predicate (not an inverse float solve)
/// because near θ = π/2 rounding makes `t_of` plateau at a boundary
/// value across many pixels, far outside any fixed widening of the
/// algebraic interval; `t_of` is weakly monotone in `x` (affine map,
/// and f64 rounding is monotone), so each range is a single interval
/// found by binary search.
fn build_intervals(
    trig: &[(f64, f64)],
    extents: &[(usize, usize)],
    n: usize,
    center: f64,
) -> Vec<(u32, u32)> {
    let c = (n as f64 - 1.0) / 2.0;
    let last = (n - 1) as f64;
    let mut intervals = Vec::with_capacity(trig.len() * n);
    for &(sin_t, cos_t) in trig {
        for (y, &(x0, x1)) in extents.iter().enumerate() {
            if x0 >= x1 {
                intervals.push((0, 0));
                continue;
            }
            let yr = y as f64 - c;
            // Same float association as the reference backprojector's
            // bounds test, so inclusion never flips on a boundary ulp.
            let t_of = |x: usize| -> f64 { (x as f64 - c) * cos_t + yr * sin_t + center };
            let (xa, xb) = if cos_t > 0.0 {
                (
                    lower_bound(x0, x1, |x| t_of(x) >= 0.0),
                    lower_bound(x0, x1, |x| t_of(x) > last),
                )
            } else if cos_t < 0.0 {
                (
                    lower_bound(x0, x1, |x| t_of(x) <= last),
                    lower_bound(x0, x1, |x| t_of(x) < 0.0),
                )
            } else if (0.0..=last).contains(&t_of(x0)) {
                (x0, x1)
            } else {
                (0, 0)
            };
            intervals.push(if xa < xb {
                (xa as u32, xb as u32)
            } else {
                (0, 0)
            });
        }
    }
    intervals
}

/// Smallest `x` in `[lo, hi]` for which `cond` holds, assuming `cond`
/// is monotone false→true over the range (returns `hi` when none does).
fn lower_bound(mut lo: usize, mut hi: usize, cond: impl Fn(usize) -> bool) -> usize {
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if cond(mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo
}

/// Cell of the precomputed polar→Cartesian gather for gridrec: which
/// two spectra rows to sample, at which (signed) radii, with which
/// angular weight and combined window-gain/centering-shift factor.
#[derive(Debug, Clone, Copy)]
struct GatherCell {
    /// Destination index `j*m + k` in the Cartesian spectrum.
    idx: u32,
    a0: u32,
    a1: u32,
    rho0: f64,
    rho1: f64,
    /// Angular interpolation weight toward `a1`.
    w: f64,
    /// Window gain × output-centering phase, folded into one factor.
    gs: Complex,
}

/// Everything invariant across slices for direct Fourier ("gridrec")
/// reconstruction of a fixed `(Geometry, GridrecConfig)` pair: the
/// oversampled FFT plan, the rotation-axis phase ramp, and the full
/// polar→Cartesian gather table (the per-cell `atan2`/`sqrt`/`cis`
/// work that used to be redone for every slice).
#[derive(Debug, Clone)]
pub struct GridrecPlan {
    geom: Geometry,
    cfg: GridrecConfig,
    m: usize,
    fft: FftPlan,
    /// Per-bin phase factor moving the rotation axis to the origin.
    phase: Vec<Complex>,
    cells: Vec<GatherCell>,
}

/// Reusable buffers for plan-based gridrec.
#[derive(Debug, Clone)]
pub struct GridrecScratch {
    /// Per-angle projection spectra (`n_angles × m`).
    spectra: Vec<Complex>,
    /// Row staging buffer (`m`).
    buf: Vec<Complex>,
    /// Cartesian spectrum / image grid (`m × m`).
    grid: Vec<Complex>,
}

impl GridrecPlan {
    pub fn new(geom: &Geometry, cfg: &GridrecConfig) -> Result<GridrecPlan, TomoError> {
        let n_angles = geom.n_angles();
        if n_angles < 2 {
            return Err(TomoError::BadParameter(
                "gridrec needs at least two angles".into(),
            ));
        }
        geom.validate(n_angles, geom.n_det)?;
        let n = geom.n_det;
        let m = next_pow2(cfg.oversample.max(1) * n);
        let mf = m as f64;
        let tau = 2.0 * std::f64::consts::PI;
        let phase = (0..m)
            .map(|k| {
                let q = signed_index(k, m) as f64;
                Complex::cis(tau * q * geom.center / mf)
            })
            .collect();

        let dtheta = std::f64::consts::PI / n_angles as f64;
        let nyq = mf / 2.0;
        let cx = (n as f64 - 1.0) / 2.0;
        let mut cells = Vec::with_capacity(m * m * 4 / 5);
        for j in 0..m {
            let qy = signed_index(j, m) as f64;
            for k in 0..m {
                let qx = signed_index(k, m) as f64;
                let mut rho = (qx * qx + qy * qy).sqrt();
                if rho > nyq {
                    continue;
                }
                let mut theta = qy.atan2(qx);
                if theta < 0.0 {
                    theta += std::f64::consts::PI;
                    rho = -rho;
                }
                if theta >= std::f64::consts::PI {
                    theta -= std::f64::consts::PI;
                    rho = -rho;
                }
                let pos = theta / dtheta;
                let a0 = pos.floor() as usize;
                let w = pos - a0 as f64;
                let a0 = a0.min(n_angles - 1);
                // wrap past the last angle: θ → θ - π flips the ray
                let (a1, rho1) = if a0 + 1 < n_angles {
                    (a0 + 1, rho)
                } else {
                    (0, -rho)
                };
                let wgain = match cfg.window {
                    FilterKind::None | FilterKind::RamLak => 1.0,
                    other => crate::gridrec::window_gain(other, rho.abs() / nyq),
                };
                let shift = Complex::cis(-tau * (qx * cx + qy * cx) / mf);
                cells.push(GatherCell {
                    idx: (j * m + k) as u32,
                    a0: a0 as u32,
                    a1: a1 as u32,
                    rho0: rho,
                    rho1,
                    w,
                    gs: shift.scale(wgain),
                });
            }
        }
        Ok(GridrecPlan {
            geom: geom.clone(),
            cfg: *cfg,
            m,
            fft: FftPlan::new(m),
            phase,
            cells,
        })
    }

    pub fn geometry(&self) -> &Geometry {
        &self.geom
    }

    pub fn config(&self) -> &GridrecConfig {
        &self.cfg
    }

    pub fn make_scratch(&self) -> GridrecScratch {
        GridrecScratch {
            spectra: vec![Complex::ZERO; self.geom.n_angles() * self.m],
            buf: vec![Complex::ZERO; self.m],
            grid: vec![Complex::ZERO; self.m * self.m],
        }
    }

    /// Reconstruct one slice through the plan.
    pub fn gridrec_slice_with(
        &self,
        sino: &Sinogram,
        scratch: &mut GridrecScratch,
    ) -> Result<Image, TomoError> {
        self.geom.validate(sino.n_angles, sino.n_det)?;
        let n = self.geom.n_det;
        let m = self.m;
        let mf = m as f64;
        let GridrecScratch { spectra, buf, grid } = scratch;

        // 1) FFT every projection, phase-shifted so the rotation axis
        //    is the spatial origin.
        for a in 0..sino.n_angles {
            let nd = sino.n_det;
            for (c, &v) in buf.iter_mut().zip(sino.row(a).iter()) {
                *c = Complex::from_re(v as f64);
            }
            for c in buf[nd..].iter_mut() {
                *c = Complex::ZERO;
            }
            self.fft.forward(buf);
            for (k, (s, c)) in spectra[a * m..(a + 1) * m]
                .iter_mut()
                .zip(buf.iter())
                .enumerate()
            {
                *s = *c * self.phase[k];
            }
        }

        // 2) Gather the Cartesian spectrum from the precomputed cells.
        let sample_radial = |a: usize, rho: f64| -> Complex {
            let idx = rho.rem_euclid(mf);
            let i0 = idx.floor() as usize % m;
            let i1 = (i0 + 1) % m;
            let f = idx - idx.floor();
            let c0 = spectra[a * m + i0];
            let c1 = spectra[a * m + i1];
            c0.scale(1.0 - f) + c1.scale(f)
        };
        grid.fill(Complex::ZERO);
        for cell in &self.cells {
            let v0 = sample_radial(cell.a0 as usize, cell.rho0);
            let v1 = sample_radial(cell.a1 as usize, cell.rho1);
            let val = v0.scale(1.0 - cell.w) + v1.scale(cell.w);
            grid[cell.idx as usize] = val * cell.gs;
        }

        // 3) Inverse 2D FFT and crop.
        crate::fft::fft2_with_plan(&self.fft, grid, true);
        let mut img = Image::square(n);
        for y in 0..n {
            for x in 0..n {
                img.set(x, y, grid[y * m + x].re as f32);
            }
        }
        if self.cfg.mask_disk {
            crate::radon::apply_disk_mask(&mut img);
        }
        Ok(img)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::radon::forward_project;

    fn disk_image(n: usize, r: f64, v: f32) -> Image {
        let mut img = Image::square(n);
        let c = (n as f64 - 1.0) / 2.0;
        for y in 0..n {
            for x in 0..n {
                let dx = x as f64 - c;
                let dy = y as f64 - c;
                if (dx * dx + dy * dy).sqrt() <= r {
                    img.set(x, y, v);
                }
            }
        }
        img
    }

    #[test]
    fn plan_extents_match_disk_mask() {
        let geom = Geometry::parallel_180(8, 32);
        let plan = ReconPlan::new(&geom, &FbpConfig::default()).unwrap();
        for y in 0..32 {
            let (x0, x1) = plan.extents[y];
            for x in 0..32 {
                let inside = x >= x0 && x < x1;
                assert_eq!(inside, in_recon_disk(x, y, 32), "pixel ({x},{y})");
            }
        }
    }

    #[test]
    fn plan_rejects_degenerate_geometry() {
        let empty = Geometry {
            angles: vec![],
            n_det: 16,
            center: 7.5,
        };
        assert!(ReconPlan::new(&empty, &FbpConfig::default()).is_err());
        let bad_center = Geometry::parallel_180(4, 16).with_center(-1.0);
        assert!(ReconPlan::new(&bad_center, &FbpConfig::default()).is_err());
    }

    #[test]
    fn scratch_reuse_is_deterministic() {
        let n = 32;
        let truth = disk_image(n, 9.0, 1.0);
        let geom = Geometry::parallel_180(24, n);
        let sino = forward_project(&truth, &geom);
        let plan = ReconPlan::new(&geom, &FbpConfig::default()).unwrap();
        let mut scratch = plan.make_scratch();
        let a = plan.fbp_slice_with(&sino, &mut scratch).unwrap();
        let b = plan.fbp_slice_with(&sino, &mut scratch).unwrap();
        assert_eq!(a, b, "dirty scratch must not leak into the next slice");
    }

    #[test]
    fn plan_volume_matches_plan_slices() {
        let n = 32;
        let truth = disk_image(n, 8.0, 1.0);
        let geom = Geometry::parallel_180(20, n);
        let sino = forward_project(&truth, &geom);
        let plan = ReconPlan::new(&geom, &FbpConfig::default()).unwrap();
        let sinos = vec![sino.clone(); 5];
        let vol = plan.fbp_volume(&sinos).unwrap();
        let mut scratch = plan.make_scratch();
        let single = plan.fbp_slice_with(&sino, &mut scratch).unwrap();
        for z in 0..5 {
            assert_eq!(vol.slice_xy(z), single);
        }
    }

    #[test]
    fn volume_shape_mismatch_is_an_error() {
        let geom = Geometry::parallel_180(8, 16);
        let plan = ReconPlan::new(&geom, &FbpConfig::default()).unwrap();
        assert!(plan.fbp_volume(&[]).is_err());
        let bad = Sinogram::zeros(8, 12);
        assert!(plan.fbp_volume(&[bad]).is_err());
    }
}
