//! Direct Fourier ("gridrec"-style) reconstruction.
//!
//! The Fourier slice theorem says the 1D FFT of a parallel projection at
//! angle θ equals the slice of the image's 2D FFT along that angle. This
//! module FFTs every projection, resamples the resulting polar spectrum
//! onto a Cartesian grid (bilinear in ρ and θ), and inverse-2D-FFTs —
//! the same structure as TomoPy's `gridrec`, the fast CPU algorithm the
//! paper's file-based pipeline uses when speed matters more than the
//! iterative solvers' quality.

use crate::filter::FilterKind;
use crate::geometry::Geometry;
use crate::image::{Image, Sinogram};
use crate::plan::GridrecPlan;
use crate::TomoError;
use serde::{Deserialize, Serialize};

/// Configuration for direct Fourier reconstruction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GridrecConfig {
    /// Radial apodization window applied in frequency space; tames the
    /// interpolation noise near Nyquist. `RamLak`/`None` mean no extra
    /// apodization (the direct method needs no ramp).
    pub window: FilterKind,
    /// Oversampling factor of the Fourier grid relative to the detector
    /// width (≥2 recommended to reduce interpolation error).
    pub oversample: usize,
    /// Mask the output to the inscribed circle.
    pub mask_disk: bool,
}

impl Default for GridrecConfig {
    fn default() -> Self {
        GridrecConfig {
            window: FilterKind::Hann,
            oversample: 2,
            mask_disk: true,
        }
    }
}

/// Reconstruct a slice with the direct Fourier method.
///
/// Convenience wrapper that builds a [`GridrecPlan`] (gather table, FFT
/// plan, phase factors) per call; batch reconstructions should hold a
/// plan and call [`GridrecPlan::gridrec_slice_with`] to amortize it.
pub fn gridrec_slice(
    sino: &Sinogram,
    geom: &Geometry,
    cfg: &GridrecConfig,
) -> Result<Image, TomoError> {
    let plan = GridrecPlan::new(geom, cfg)?;
    let mut scratch = plan.make_scratch();
    plan.gridrec_slice_with(sino, &mut scratch)
}

pub(crate) fn signed_index(k: usize, m: usize) -> i64 {
    if k < m / 2 {
        k as i64
    } else {
        k as i64 - m as i64
    }
}

pub(crate) fn window_gain(kind: FilterKind, w: f64) -> f64 {
    use std::f64::consts::PI;
    match kind {
        FilterKind::SheppLogan => {
            if w == 0.0 {
                1.0
            } else {
                let x = PI * w / 2.0;
                x.sin() / x
            }
        }
        FilterKind::Cosine => (PI * w / 2.0).cos(),
        FilterKind::Hamming => 0.54 + 0.46 * (PI * w).cos(),
        FilterKind::Hann => 0.5 * (1.0 + (PI * w).cos()),
        FilterKind::Butterworth => 1.0 / (1.0 + (w / 0.5).powi(4)),
        FilterKind::RamLak | FilterKind::None => 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::radon::{forward_project, in_recon_disk};

    fn disk_image(n: usize, r: f64, v: f32) -> Image {
        let mut img = Image::square(n);
        let c = (n as f64 - 1.0) / 2.0;
        for y in 0..n {
            for x in 0..n {
                let dx = x as f64 - c;
                let dy = y as f64 - c;
                if (dx * dx + dy * dy).sqrt() <= r {
                    img.set(x, y, v);
                }
            }
        }
        img
    }

    fn rmse_in_disk(a: &Image, b: &Image) -> f64 {
        let n = a.width;
        let mut e = 0.0;
        let mut cnt = 0usize;
        for y in 0..n {
            for x in 0..n {
                if in_recon_disk(x, y, n) {
                    e += (a.get(x, y) as f64 - b.get(x, y) as f64).powi(2);
                    cnt += 1;
                }
            }
        }
        (e / cnt as f64).sqrt()
    }

    #[test]
    fn gridrec_recovers_disk() {
        let n = 64;
        let truth = disk_image(n, 16.0, 1.0);
        let geom = Geometry::parallel_180(180, n);
        let sino = forward_project(&truth, &geom);
        let rec = gridrec_slice(&sino, &geom, &GridrecConfig::default()).unwrap();
        let c = n / 2;
        let center = rec.get(c, c);
        assert!((center - 1.0).abs() < 0.25, "center {center}");
        let rmse = rmse_in_disk(&rec, &truth);
        assert!(rmse < 0.2, "rmse {rmse}");
    }

    #[test]
    fn gridrec_is_comparable_to_fbp() {
        let n = 64;
        let truth = disk_image(n, 14.0, 1.0);
        let geom = Geometry::parallel_180(160, n);
        let sino = forward_project(&truth, &geom);
        let grid = gridrec_slice(&sino, &geom, &GridrecConfig::default()).unwrap();
        let fbp = crate::fbp::fbp_slice(&sino, &geom, &crate::fbp::FbpConfig::default()).unwrap();
        let e_grid = rmse_in_disk(&grid, &truth);
        let e_fbp = rmse_in_disk(&fbp, &truth);
        // direct Fourier should be within 3x of FBP error on a smooth phantom
        assert!(
            e_grid < 3.0 * e_fbp + 0.05,
            "gridrec rmse {e_grid} vs fbp {e_fbp}"
        );
    }

    #[test]
    fn higher_oversampling_does_not_hurt() {
        let n = 32;
        let truth = disk_image(n, 8.0, 1.0);
        let geom = Geometry::parallel_180(90, n);
        let sino = forward_project(&truth, &geom);
        let lo = gridrec_slice(
            &sino,
            &geom,
            &GridrecConfig {
                oversample: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let hi = gridrec_slice(
            &sino,
            &geom,
            &GridrecConfig {
                oversample: 4,
                ..Default::default()
            },
        )
        .unwrap();
        let e_lo = rmse_in_disk(&lo, &truth);
        let e_hi = rmse_in_disk(&hi, &truth);
        assert!(
            e_hi <= e_lo * 1.2,
            "oversampling regressed: {e_lo} -> {e_hi}"
        );
    }

    #[test]
    fn rejects_single_angle() {
        let geom = Geometry::parallel_180(1, 16);
        let sino = Sinogram::zeros(1, 16);
        assert!(gridrec_slice(&sino, &geom, &GridrecConfig::default()).is_err());
    }

    #[test]
    fn signed_index_wraps() {
        assert_eq!(signed_index(0, 8), 0);
        assert_eq!(signed_index(3, 8), 3);
        assert_eq!(signed_index(4, 8), -4);
        assert_eq!(signed_index(7, 8), -1);
    }
}
