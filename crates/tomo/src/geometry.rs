//! Parallel-beam acquisition geometry.
//!
//! The ALS 8.3.2 beamline performs 180° parallel-beam scans (the paper's
//! example: 1969 projections over 180°). Geometry couples the projection
//! angles to the detector bin count and the rotation-axis position.

use serde::{Deserialize, Serialize};

/// Parallel-beam scan geometry for one sinogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Geometry {
    /// Projection angles in radians.
    pub angles: Vec<f64>,
    /// Number of detector bins per projection row.
    pub n_det: usize,
    /// Rotation-axis position in detector coordinates (bins). For a
    /// perfectly aligned detector this is `(n_det - 1) / 2`.
    pub center: f64,
}

impl Geometry {
    /// Evenly spaced angles over `[0, π)` — a standard 180° scan.
    pub fn parallel_180(n_angles: usize, n_det: usize) -> Self {
        let angles = (0..n_angles)
            .map(|i| std::f64::consts::PI * i as f64 / n_angles as f64)
            .collect();
        Geometry {
            angles,
            n_det,
            center: (n_det as f64 - 1.0) / 2.0,
        }
    }

    /// Same but with an explicit (possibly mis-calibrated) rotation center.
    pub fn with_center(mut self, center: f64) -> Self {
        self.center = center;
        self
    }

    pub fn n_angles(&self) -> usize {
        self.angles.len()
    }

    /// Angular step between consecutive projections (radians); zero when
    /// fewer than two angles.
    pub fn angle_step(&self) -> f64 {
        if self.angles.len() < 2 {
            0.0
        } else {
            (self.angles[self.angles.len() - 1] - self.angles[0]) / (self.angles.len() - 1) as f64
        }
    }

    /// Sanity-check the geometry against a sinogram shape.
    pub fn validate(&self, n_angles: usize, n_det: usize) -> Result<(), crate::TomoError> {
        if self.angles.len() != n_angles || self.n_det != n_det {
            return Err(crate::TomoError::ShapeMismatch {
                expected: (self.angles.len(), self.n_det),
                got: (n_angles, n_det),
            });
        }
        if !(0.0..self.n_det as f64).contains(&self.center) {
            return Err(crate::TomoError::BadParameter(format!(
                "rotation center {} outside detector [0, {})",
                self.center, self.n_det
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_180_spans_half_turn() {
        let g = Geometry::parallel_180(4, 64);
        assert_eq!(g.n_angles(), 4);
        assert_eq!(g.angles[0], 0.0);
        assert!((g.angles[3] - 3.0 * std::f64::consts::PI / 4.0).abs() < 1e-12);
        // half-open interval: never reaches π itself
        assert!(g.angles.iter().all(|&a| a < std::f64::consts::PI));
        assert_eq!(g.center, 31.5);
    }

    #[test]
    fn angle_step_is_uniform() {
        let g = Geometry::parallel_180(180, 32);
        assert!((g.angle_step() - std::f64::consts::PI / 180.0).abs() < 1e-12);
        let g1 = Geometry::parallel_180(1, 32);
        assert_eq!(g1.angle_step(), 0.0);
    }

    #[test]
    fn validate_catches_mismatches() {
        let g = Geometry::parallel_180(10, 32);
        assert!(g.validate(10, 32).is_ok());
        assert!(g.validate(9, 32).is_err());
        assert!(g.validate(10, 31).is_err());
        let bad = Geometry::parallel_180(10, 32).with_center(-3.0);
        assert!(bad.validate(10, 32).is_err());
    }
}
