//! Projection preprocessing: the steps that make the file-based branch's
//! reconstructions "higher quality owing to the preprocessing" (paper §3.1).
//!
//! The chain mirrors the standard TomoPy recipe used at beamline 8.3.2:
//! dark/flat-field normalization → zinger removal → −log transform →
//! ring-artifact suppression, with an optional Paganin-style single-material
//! phase filter.

use crate::image::Sinogram;

/// Normalize raw detector counts with dark- and flat-field references:
/// `(raw − dark) / (flat − dark)`, clamped to a small positive floor so the
/// subsequent −log is defined.
///
/// `raw` is a stack of projection rows for one slice (a sinogram); `dark`
/// and `flat` are per-detector-bin reference rows.
pub fn normalize(raw: &Sinogram, dark: &[f32], flat: &[f32]) -> Sinogram {
    assert_eq!(dark.len(), raw.n_det, "dark field width mismatch");
    assert_eq!(flat.len(), raw.n_det, "flat field width mismatch");
    let mut out = Sinogram::zeros(raw.n_angles, raw.n_det);
    for a in 0..raw.n_angles {
        let src = raw.row(a);
        let dst = out.row_mut(a);
        for t in 0..raw.n_det {
            let denom = (flat[t] - dark[t]).max(1e-6);
            let v = (src[t] - dark[t]) / denom;
            dst[t] = v.clamp(1e-6, f32::MAX);
        }
    }
    out
}

/// −log transform: converts normalized transmission to line integrals of
/// the attenuation coefficient (Beer–Lambert).
pub fn minus_log(sino: &Sinogram) -> Sinogram {
    let mut out = sino.clone();
    for v in out.data.iter_mut() {
        *v = -(v.max(1e-6).ln());
    }
    out
}

/// Remove zingers (isolated hot pixels from scattered X-rays hitting the
/// detector) with a 1D median-of-3 test along the detector axis: a sample
/// more than `threshold` above both neighbours is replaced by their mean.
pub fn remove_zingers(sino: &Sinogram, threshold: f32) -> Sinogram {
    let mut out = sino.clone();
    for a in 0..sino.n_angles {
        let src = sino.row(a);
        let dst = out.row_mut(a);
        for t in 1..sino.n_det.saturating_sub(1) {
            let left = src[t - 1];
            let right = src[t + 1];
            if src[t] - left > threshold && src[t] - right > threshold {
                dst[t] = 0.5 * (left + right);
            }
        }
    }
    out
}

/// Suppress ring artifacts. Rings in the reconstruction come from
/// detector-column gain errors, which appear as vertical stripes in the
/// sinogram. The classic remedy (Münch/Raven-style, simplified): estimate
/// each column's mean, smooth the mean profile, and subtract the residual
/// stripe component.
pub fn remove_stripes(sino: &Sinogram, window: usize) -> Sinogram {
    let n_det = sino.n_det;
    if n_det == 0 || sino.n_angles == 0 {
        return sino.clone();
    }
    // per-column mean over angles
    let mut col_mean = vec![0.0f64; n_det];
    for a in 0..sino.n_angles {
        for (m, &v) in col_mean.iter_mut().zip(sino.row(a).iter()) {
            *m += v as f64;
        }
    }
    for m in col_mean.iter_mut() {
        *m /= sino.n_angles as f64;
    }
    // smooth the profile with a centered moving average
    let w = window.max(1);
    let mut smooth = vec![0.0f64; n_det];
    for (t, sm) in smooth.iter_mut().enumerate() {
        let lo = t.saturating_sub(w);
        let hi = (t + w + 1).min(n_det);
        let s: f64 = col_mean[lo..hi].iter().sum();
        *sm = s / (hi - lo) as f64;
    }
    // subtract the high-frequency (stripe) component of the column means
    let mut out = sino.clone();
    for a in 0..sino.n_angles {
        let row = out.row_mut(a);
        for t in 0..n_det {
            row[t] -= (col_mean[t] - smooth[t]) as f32;
        }
    }
    out
}

/// Paganin-style single-material phase filter (simplified 1D variant): a
/// low-pass filter along the detector axis whose strength is set by
/// `delta_beta` (δ/β of the sample) and the propagation distance. Larger
/// values smooth more, boosting soft-tissue contrast at the cost of edges.
pub fn paganin_filter(sino: &Sinogram, delta_beta: f64) -> Sinogram {
    use crate::fft::{fft, ifft, next_pow2, Complex};
    if delta_beta <= 0.0 {
        return sino.clone();
    }
    let pad = next_pow2(2 * sino.n_det);
    // 1 / (1 + α ω²) transfer function; α scales with δ/β
    let alpha = delta_beta / 100.0;
    let gains: Vec<f64> = (0..pad)
        .map(|k| {
            let f = if k <= pad / 2 { k } else { pad - k } as f64 / pad as f64;
            let w = 2.0 * f;
            1.0 / (1.0 + alpha * w * w * pad as f64)
        })
        .collect();
    let mut out = Sinogram::zeros(sino.n_angles, sino.n_det);
    let mut buf = vec![Complex::ZERO; pad];
    for a in 0..sino.n_angles {
        buf.iter_mut().for_each(|c| *c = Complex::ZERO);
        // mirror-pad to reduce edge ringing
        let row = sino.row(a);
        for (i, c) in buf.iter_mut().enumerate().take(pad) {
            let idx = i % (2 * sino.n_det);
            let t = if idx < sino.n_det {
                idx
            } else {
                2 * sino.n_det - 1 - idx
            };
            *c = Complex::from_re(row[t.min(sino.n_det - 1)] as f64);
        }
        fft(&mut buf);
        for (c, &g) in buf.iter_mut().zip(gains.iter()) {
            *c = c.scale(g);
        }
        ifft(&mut buf);
        for (o, c) in out.row_mut(a).iter_mut().zip(buf.iter()) {
            *o = c.re as f32;
        }
    }
    out
}

/// The full standard preprocessing chain used by the file-based pipeline.
pub fn standard_chain(raw: &Sinogram, dark: &[f32], flat: &[f32]) -> Sinogram {
    let norm = normalize(raw, dark, flat);
    let dezing = remove_zingers(&norm, 0.5);
    let logged = minus_log(&dezing);
    remove_stripes(&logged, 9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_rescales_counts() {
        let mut raw = Sinogram::zeros(1, 3);
        raw.data.copy_from_slice(&[100.0, 550.0, 1000.0]);
        let dark = vec![100.0; 3];
        let flat = vec![1000.0; 3];
        let n = normalize(&raw, &dark, &flat);
        assert!((n.data[0] - 1e-6).abs() < 1e-7); // clamped at floor
        assert!((n.data[1] - 0.5).abs() < 1e-6);
        assert!((n.data[2] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn normalize_handles_dead_flat_pixels() {
        let mut raw = Sinogram::zeros(1, 2);
        raw.data.copy_from_slice(&[5.0, 5.0]);
        let dark = vec![5.0, 5.0];
        let flat = vec![5.0, 5.0]; // flat == dark: dead pixel
        let n = normalize(&raw, &dark, &flat);
        assert!(n.data.iter().all(|v| v.is_finite() && *v > 0.0));
    }

    #[test]
    fn minus_log_inverts_exponential() {
        let mut sino = Sinogram::zeros(1, 3);
        sino.data
            .copy_from_slice(&[1.0, (-2.0f32).exp(), (-0.5f32).exp()]);
        let l = minus_log(&sino);
        assert!((l.data[0] - 0.0).abs() < 1e-6);
        assert!((l.data[1] - 2.0).abs() < 1e-5);
        assert!((l.data[2] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn minus_log_survives_zeros() {
        let sino = Sinogram::zeros(1, 4);
        let l = minus_log(&sino);
        assert!(l.data.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn zinger_is_removed_but_edges_kept() {
        let mut sino = Sinogram::zeros(1, 7);
        sino.data
            .copy_from_slice(&[1.0, 1.0, 1.0, 9.0, 1.0, 4.0, 4.0]);
        let z = remove_zingers(&sino, 2.0);
        assert_eq!(z.data[3], 1.0); // isolated spike removed
        assert_eq!(z.data[5], 4.0); // genuine step preserved
    }

    #[test]
    fn stripe_removal_flattens_bad_column() {
        let n_angles = 50;
        let n_det = 32;
        let mut sino = Sinogram::zeros(n_angles, n_det);
        for a in 0..n_angles {
            for t in 0..n_det {
                let mut v = 1.0;
                if t == 10 {
                    v += 0.5; // miscalibrated detector column
                }
                sino.set(a, t, v);
            }
        }
        let fixed = remove_stripes(&sino, 5);
        let col: Vec<f32> = (0..n_angles).map(|a| fixed.get(a, 10)).collect();
        let mean = col.iter().sum::<f32>() / col.len() as f32;
        assert!(
            (mean - 1.0).abs() < 0.15,
            "stripe column mean {mean} should be pulled toward 1.0"
        );
    }

    #[test]
    fn stripe_removal_preserves_smooth_structure() {
        let mut sino = Sinogram::zeros(20, 64);
        for a in 0..20 {
            for t in 0..64 {
                sino.set(a, t, (t as f32 / 64.0).sin());
            }
        }
        let fixed = remove_stripes(&sino, 5);
        for i in 0..sino.data.len() {
            assert!((fixed.data[i] - sino.data[i]).abs() < 0.05);
        }
    }

    #[test]
    fn paganin_smooths_noise() {
        let mut sino = Sinogram::zeros(1, 64);
        for (t, v) in sino.row_mut(0).iter_mut().enumerate() {
            *v = if t % 2 == 0 { 1.0 } else { -1.0 };
        }
        let p = paganin_filter(&sino, 50.0);
        let amp = p.row(0)[20..40].iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        assert!(
            amp < 0.4,
            "high-frequency noise should be damped, got {amp}"
        );
    }

    #[test]
    fn paganin_zero_strength_is_identity() {
        let mut sino = Sinogram::zeros(2, 16);
        for (i, v) in sino.data.iter_mut().enumerate() {
            *v = i as f32;
        }
        assert_eq!(paganin_filter(&sino, 0.0), sino);
    }

    #[test]
    fn standard_chain_produces_finite_line_integrals() {
        let n_angles = 10;
        let n_det = 32;
        let mut raw = Sinogram::zeros(n_angles, n_det);
        for (i, v) in raw.data.iter_mut().enumerate() {
            *v = 500.0 + (i % 17) as f32 * 20.0;
        }
        let dark = vec![100.0; n_det];
        let flat = vec![900.0; n_det];
        let out = standard_chain(&raw, &dark, &flat);
        assert!(out.data.iter().all(|v| v.is_finite()));
        // transmission < 1 everywhere => line integrals ≥ 0 (approximately)
        assert!(out.data.iter().all(|&v| v > -0.5));
    }
}
