//! Projection preprocessing: the steps that make the file-based branch's
//! reconstructions "higher quality owing to the preprocessing" (paper §3.1).
//!
//! The chain mirrors the standard TomoPy recipe used at beamline 8.3.2:
//! dark/flat-field normalization → zinger removal → −log transform →
//! ring-artifact suppression, with an optional Paganin-style single-material
//! phase filter.
//!
//! Two layers exist for every step: standalone functions (the unfused
//! originals, kept as the equivalence baseline — see also
//! [`crate::reference::prep_chain`]) and the fused plans. [`PrepPlan`] /
//! [`RawPrepPlan`] collapse normalization, zinger removal, and −log into
//! one in-place pass per row; an optional [`SinoPostPlan`] rides behind
//! them folding ring suppression (bit-for-bit equal to
//! [`remove_stripes`]) and Paganin phase retrieval (precomputed filter
//! response on a cached [`FftPlan`], two mirror-padded rows per complex
//! FFT) into the same sweep over the sinogram.

use crate::fft::{next_pow2, Complex, FftPlan};
use crate::image::Sinogram;

/// Normalize raw detector counts with dark- and flat-field references:
/// `(raw − dark) / (flat − dark)`, clamped to a small positive floor so the
/// subsequent −log is defined.
///
/// `raw` is a stack of projection rows for one slice (a sinogram); `dark`
/// and `flat` are per-detector-bin reference rows.
pub fn normalize(raw: &Sinogram, dark: &[f32], flat: &[f32]) -> Sinogram {
    assert_eq!(dark.len(), raw.n_det, "dark field width mismatch");
    assert_eq!(flat.len(), raw.n_det, "flat field width mismatch");
    let mut out = Sinogram::zeros(raw.n_angles, raw.n_det);
    for a in 0..raw.n_angles {
        let src = raw.row(a);
        let dst = out.row_mut(a);
        for t in 0..raw.n_det {
            let denom = (flat[t] - dark[t]).max(1e-6);
            let v = (src[t] - dark[t]) / denom;
            dst[t] = v.clamp(1e-6, f32::MAX);
        }
    }
    out
}

/// −log transform: converts normalized transmission to line integrals of
/// the attenuation coefficient (Beer–Lambert).
pub fn minus_log(sino: &Sinogram) -> Sinogram {
    let mut out = sino.clone();
    for v in out.data.iter_mut() {
        *v = -(v.max(1e-6).ln());
    }
    out
}

/// Remove zingers (isolated hot pixels from scattered X-rays hitting the
/// detector) with a 1D median-of-3 test along the detector axis: a sample
/// more than `threshold` above both neighbours is replaced by their mean.
pub fn remove_zingers(sino: &Sinogram, threshold: f32) -> Sinogram {
    let mut out = sino.clone();
    for a in 0..sino.n_angles {
        let src = sino.row(a);
        let dst = out.row_mut(a);
        for t in 1..sino.n_det.saturating_sub(1) {
            let left = src[t - 1];
            let right = src[t + 1];
            if src[t] - left > threshold && src[t] - right > threshold {
                dst[t] = 0.5 * (left + right);
            }
        }
    }
    out
}

/// Suppress ring artifacts. Rings in the reconstruction come from
/// detector-column gain errors, which appear as vertical stripes in the
/// sinogram. The classic remedy (Münch/Raven-style, simplified): estimate
/// each column's mean, smooth the mean profile, and subtract the residual
/// stripe component.
pub fn remove_stripes(sino: &Sinogram, window: usize) -> Sinogram {
    let n_det = sino.n_det;
    if n_det == 0 || sino.n_angles == 0 {
        return sino.clone();
    }
    // per-column mean over angles
    let mut col_mean = vec![0.0f64; n_det];
    for a in 0..sino.n_angles {
        for (m, &v) in col_mean.iter_mut().zip(sino.row(a).iter()) {
            *m += v as f64;
        }
    }
    for m in col_mean.iter_mut() {
        *m /= sino.n_angles as f64;
    }
    // smooth the profile with a centered moving average
    let w = window.max(1);
    let mut smooth = vec![0.0f64; n_det];
    for (t, sm) in smooth.iter_mut().enumerate() {
        let lo = t.saturating_sub(w);
        let hi = (t + w + 1).min(n_det);
        let s: f64 = col_mean[lo..hi].iter().sum();
        *sm = s / (hi - lo) as f64;
    }
    // subtract the high-frequency (stripe) component of the column means
    let mut out = sino.clone();
    for a in 0..sino.n_angles {
        let row = out.row_mut(a);
        for t in 0..n_det {
            row[t] -= (col_mean[t] - smooth[t]) as f32;
        }
    }
    out
}

/// Paganin-style single-material phase filter (simplified 1D variant): a
/// low-pass filter along the detector axis whose strength is set by
/// `delta_beta` (δ/β of the sample) and the propagation distance. Larger
/// values smooth more, boosting soft-tissue contrast at the cost of edges.
pub fn paganin_filter(sino: &Sinogram, delta_beta: f64) -> Sinogram {
    use crate::fft::{fft, ifft, next_pow2, Complex};
    if delta_beta <= 0.0 {
        return sino.clone();
    }
    let pad = next_pow2(2 * sino.n_det);
    // 1 / (1 + α ω²) transfer function; α scales with δ/β
    let alpha = delta_beta / 100.0;
    let gains: Vec<f64> = (0..pad)
        .map(|k| {
            let f = if k <= pad / 2 { k } else { pad - k } as f64 / pad as f64;
            let w = 2.0 * f;
            1.0 / (1.0 + alpha * w * w * pad as f64)
        })
        .collect();
    let mut out = Sinogram::zeros(sino.n_angles, sino.n_det);
    let mut buf = vec![Complex::ZERO; pad];
    for a in 0..sino.n_angles {
        buf.iter_mut().for_each(|c| *c = Complex::ZERO);
        // mirror-pad to reduce edge ringing
        let row = sino.row(a);
        for (i, c) in buf.iter_mut().enumerate().take(pad) {
            let idx = i % (2 * sino.n_det);
            let t = if idx < sino.n_det {
                idx
            } else {
                2 * sino.n_det - 1 - idx
            };
            *c = Complex::from_re(row[t.min(sino.n_det - 1)] as f64);
        }
        fft(&mut buf);
        for (c, &g) in buf.iter_mut().zip(gains.iter()) {
            *c = c.scale(g);
        }
        ifft(&mut buf);
        for (o, c) in out.row_mut(a).iter_mut().zip(buf.iter()) {
            *o = c.re as f32;
        }
    }
    out
}

/// Precomputed Paganin low-pass: the `1 / (1 + α ω² pad)` transfer
/// function and a table-driven [`FftPlan`], built once per detector
/// width. The gains are real and symmetric, so — exactly like the ramp
/// filter — two mirror-padded rows ride one complex FFT round trip.
#[derive(Debug, Clone)]
pub struct PaganinPlan {
    n_det: usize,
    pad: usize,
    /// Per-bin gains duplicated (`[g0, g0, g1, g1, ...]`) for the SIMD
    /// spectrum multiply.
    gains2: Vec<f64>,
    fft: FftPlan,
    path: crate::simd::SimdPath,
}

impl PaganinPlan {
    pub fn new(n_det: usize, delta_beta: f64) -> PaganinPlan {
        assert!(n_det > 0, "empty detector");
        assert!(delta_beta > 0.0, "delta_beta must be positive");
        let pad = next_pow2(2 * n_det);
        let alpha = delta_beta / 100.0;
        let gains2 = (0..pad)
            .flat_map(|k| {
                let f = if k <= pad / 2 { k } else { pad - k } as f64 / pad as f64;
                let w = 2.0 * f;
                [1.0 / (1.0 + alpha * w * w * pad as f64); 2]
            })
            .collect();
        PaganinPlan {
            n_det,
            pad,
            gains2,
            fft: FftPlan::new(pad),
            path: crate::simd::detect(),
        }
    }

    /// Padded FFT length; scratch buffers must be exactly this long.
    pub fn pad(&self) -> usize {
        self.pad
    }

    /// Mirror-padded source index for padded position `i` (the same
    /// reflection [`paganin_filter`] uses).
    #[inline]
    fn mirror(&self, i: usize) -> usize {
        let idx = i % (2 * self.n_det);
        let t = if idx < self.n_det {
            idx
        } else {
            2 * self.n_det - 1 - idx
        };
        t.min(self.n_det - 1)
    }

    /// Low-pass every row of `sino` in place, two rows per complex FFT.
    pub fn apply(&self, sino: &mut Sinogram, cbuf: &mut [Complex]) {
        assert_eq!(sino.n_det, self.n_det, "detector width mismatch");
        assert_eq!(cbuf.len(), self.pad, "scratch buffer length mismatch");
        let mut a = 0usize;
        while a < sino.n_angles {
            let packed = a + 1 < sino.n_angles;
            {
                let r0 = sino.row(a);
                if packed {
                    let r1 = sino.row(a + 1);
                    for (i, c) in cbuf.iter_mut().enumerate() {
                        let t = self.mirror(i);
                        *c = Complex::new(r0[t] as f64, r1[t] as f64);
                    }
                } else {
                    for (i, c) in cbuf.iter_mut().enumerate() {
                        *c = Complex::from_re(r0[self.mirror(i)] as f64);
                    }
                }
            }
            self.fft.forward(cbuf);
            crate::simd::scale_spectrum(self.path, cbuf, &self.gains2);
            self.fft.inverse(cbuf);
            for (o, c) in sino.row_mut(a).iter_mut().zip(cbuf.iter()) {
                *o = c.re as f32;
            }
            if packed {
                for (o, c) in sino.row_mut(a + 1).iter_mut().zip(cbuf.iter()) {
                    *o = c.im as f32;
                }
                a += 2;
            } else {
                a += 1;
            }
        }
    }
}

/// Fused whole-sinogram post-stage riding behind the per-row prep
/// plans: streaming column-mean ring detrend (bit-for-bit equal to
/// [`remove_stripes`]) followed by the planned Paganin low-pass. Both
/// steps are optional; with neither, [`SinoPostPlan::apply`] is a no-op.
#[derive(Debug, Clone, Default)]
pub struct SinoPostPlan {
    ring_window: Option<usize>,
    paganin: Option<PaganinPlan>,
}

/// Reusable buffers for [`SinoPostPlan::apply`].
#[derive(Debug, Clone, Default)]
pub struct SinoPostScratch {
    /// Padded complex FFT staging buffer (Paganin only).
    cbuf: Vec<Complex>,
    /// Per-column mean accumulator (ring only).
    col_mean: Vec<f64>,
    /// Smoothed column-mean profile (ring only).
    smooth: Vec<f64>,
}

impl SinoPostPlan {
    pub fn new(
        n_det: usize,
        ring_window: Option<usize>,
        paganin_delta_beta: Option<f64>,
    ) -> SinoPostPlan {
        SinoPostPlan {
            ring_window,
            paganin: paganin_delta_beta
                .filter(|&db| db > 0.0)
                .map(|db| PaganinPlan::new(n_det, db)),
        }
    }

    /// True when the stage does nothing (lets callers skip the sweep).
    pub fn is_empty(&self) -> bool {
        self.ring_window.is_none() && self.paganin.is_none()
    }

    pub fn make_scratch(&self) -> SinoPostScratch {
        SinoPostScratch {
            cbuf: self
                .paganin
                .as_ref()
                .map(|p| vec![Complex::ZERO; p.pad])
                .unwrap_or_default(),
            col_mean: Vec::new(),
            smooth: Vec::new(),
        }
    }

    /// Run the fused post-chain over a fully prepped sinogram in place.
    pub fn apply(&self, sino: &mut Sinogram, scratch: &mut SinoPostScratch) {
        if let Some(w) = self.ring_window {
            ring_detrend_inplace(sino, w, &mut scratch.col_mean, &mut scratch.smooth);
        }
        if let Some(p) = &self.paganin {
            p.apply(sino, &mut scratch.cbuf);
        }
    }
}

/// In-place ring suppression, bit-for-bit equal to [`remove_stripes`]:
/// identical accumulation order for the column means, identical
/// moving-average smoothing, identical subtraction expression.
fn ring_detrend_inplace(
    sino: &mut Sinogram,
    window: usize,
    col_mean: &mut Vec<f64>,
    smooth: &mut Vec<f64>,
) {
    let n_det = sino.n_det;
    if n_det == 0 || sino.n_angles == 0 {
        return;
    }
    col_mean.clear();
    col_mean.resize(n_det, 0.0);
    for a in 0..sino.n_angles {
        for (m, &v) in col_mean.iter_mut().zip(sino.row(a).iter()) {
            *m += v as f64;
        }
    }
    for m in col_mean.iter_mut() {
        *m /= sino.n_angles as f64;
    }
    let w = window.max(1);
    smooth.clear();
    smooth.resize(n_det, 0.0);
    for (t, sm) in smooth.iter_mut().enumerate() {
        let lo = t.saturating_sub(w);
        let hi = (t + w + 1).min(n_det);
        let s: f64 = col_mean[lo..hi].iter().sum();
        *sm = s / (hi - lo) as f64;
    }
    for a in 0..sino.n_angles {
        let row = sino.row_mut(a);
        for t in 0..n_det {
            row[t] -= (col_mean[t] - smooth[t]) as f32;
        }
    }
}

/// In-place zinger-removal + −log over one row, bit-for-bit equal to
/// `minus_log(&remove_zingers(...))` on that row. `row` holds the
/// pre-log (normalized transmission) values on entry. The rolling
/// `prev` variable preserves the pre-replacement neighbour values that
/// `remove_zingers` reads from its immutable source row.
fn zinger_log_row_inplace(row: &mut [f32], threshold: Option<f32>) {
    let n = row.len();
    if n == 0 {
        return;
    }
    let log = |v: f32| -(v.max(1e-6).ln());
    let Some(thr) = threshold else {
        for v in row.iter_mut() {
            *v = log(*v);
        }
        return;
    };
    let mut prev = row[0];
    row[0] = log(prev);
    for t in 1..n.saturating_sub(1) {
        let cur = row[t];
        let next = row[t + 1];
        let v = if cur - prev > thr && cur - next > thr {
            0.5 * (prev + next)
        } else {
            cur
        };
        row[t] = log(v);
        prev = cur;
    }
    if n > 1 {
        row[n - 1] = log(row[n - 1]);
    }
}

/// Fused preprocessing plan for float-count sinograms: the
/// `normalize` → `remove_zingers` → `minus_log` chain collapsed into a
/// single in-place pass per row, with the per-bin dark levels and
/// `(flat − dark)` denominators hoisted out of the per-sample loop.
///
/// The denominators are stored (not their reciprocals) and applied by
/// division: hoisting the per-angle recomputation is where the time
/// goes, and dividing keeps the output **bit-for-bit identical** to the
/// unfused chain — the equivalence the pipeline tests assert.
#[derive(Debug, Clone)]
pub struct PrepPlan {
    dark: Vec<f32>,
    denom: Vec<f32>,
    zinger_threshold: Option<f32>,
    post: SinoPostPlan,
}

impl PrepPlan {
    /// Precompute per-bin normalization terms from reference rows.
    /// `zinger_threshold: None` skips zinger removal entirely.
    pub fn new(dark: &[f32], flat: &[f32], zinger_threshold: Option<f32>) -> PrepPlan {
        assert_eq!(dark.len(), flat.len(), "dark/flat width mismatch");
        let denom = flat
            .iter()
            .zip(dark.iter())
            .map(|(&f, &d)| (f - d).max(1e-6))
            .collect();
        PrepPlan {
            dark: dark.to_vec(),
            denom,
            zinger_threshold,
            post: SinoPostPlan::default(),
        }
    }

    /// Fold ring-artifact suppression (window `window`, bit-for-bit
    /// equal to [`remove_stripes`]) into [`PrepPlan::apply_with`].
    pub fn with_ring(mut self, window: usize) -> PrepPlan {
        self.post.ring_window = Some(window);
        self
    }

    /// Fold the Paganin phase filter (strength `delta_beta`) into
    /// [`PrepPlan::apply_with`]; values ≤ 0 disable it.
    pub fn with_paganin(mut self, delta_beta: f64) -> PrepPlan {
        self.post = SinoPostPlan {
            ring_window: self.post.ring_window,
            paganin: (delta_beta > 0.0).then(|| PaganinPlan::new(self.n_det(), delta_beta)),
        };
        self
    }

    /// Allocate the buffers [`PrepPlan::apply_with`] reuses across
    /// sinograms.
    pub fn make_post_scratch(&self) -> SinoPostScratch {
        self.post.make_scratch()
    }

    pub fn n_det(&self) -> usize {
        self.dark.len()
    }

    /// Convert one row of raw counts to line integrals, in place.
    pub fn apply_row(&self, row: &mut [f32]) {
        assert_eq!(row.len(), self.dark.len(), "row width mismatch");
        for (t, r) in row.iter_mut().enumerate() {
            let v = (*r - self.dark[t]) / self.denom[t];
            *r = v.clamp(1e-6, f32::MAX);
        }
        zinger_log_row_inplace(row, self.zinger_threshold);
    }

    /// Convert a whole sinogram of raw counts to line integrals, in place.
    pub fn apply(&self, sino: &mut Sinogram) {
        assert_eq!(sino.n_det, self.dark.len(), "sinogram width mismatch");
        for a in 0..sino.n_angles {
            self.apply_row(sino.row_mut(a));
        }
    }

    /// [`PrepPlan::apply`] plus the fused ring/Paganin post-stage
    /// configured via [`PrepPlan::with_ring`] / [`PrepPlan::with_paganin`],
    /// all in one pass over the sinogram with reusable scratch.
    pub fn apply_with(&self, sino: &mut Sinogram, scratch: &mut SinoPostScratch) {
        self.apply(sino);
        self.post.apply(sino, scratch);
    }
}

/// Fused preprocessing plan for raw `u16` detector frames, matching the
/// realmode file/streaming branch semantics: per-pixel
/// `t = ((raw − dark) / (flat − dark).max(1)).clamp(1e-6, 1.0)` in f64,
/// `−ln(t) / mu_scale` to f32, then optional zinger removal **in the
/// log domain**. Per-pixel dark levels and denominators are hoisted
/// into flat tables at plan build; division and the exact f64→f32
/// expression order are preserved so the output is bit-for-bit equal to
/// the unfused per-slice gather it replaces.
#[derive(Debug, Clone)]
pub struct RawPrepPlan {
    rows: usize,
    cols: usize,
    dark: Vec<f64>,
    denom: Vec<f64>,
    mu_scale: f64,
    zinger_threshold: Option<f32>,
    post: SinoPostPlan,
}

impl RawPrepPlan {
    /// `dark`/`flat` are full reference frames (`rows × cols`).
    pub fn new(
        dark: &[u16],
        flat: &[u16],
        rows: usize,
        cols: usize,
        mu_scale: f64,
        zinger_threshold: Option<f32>,
    ) -> RawPrepPlan {
        assert_eq!(dark.len(), rows * cols, "dark frame shape mismatch");
        assert_eq!(flat.len(), rows * cols, "flat frame shape mismatch");
        assert!(mu_scale > 0.0, "mu_scale must be positive");
        let dark_f: Vec<f64> = dark.iter().map(|&d| d as f64).collect();
        let denom = flat
            .iter()
            .zip(dark_f.iter())
            .map(|(&f, &d)| (f as f64 - d).max(1.0))
            .collect();
        RawPrepPlan {
            rows,
            cols,
            dark: dark_f,
            denom,
            mu_scale,
            zinger_threshold,
            post: SinoPostPlan::default(),
        }
    }

    /// Attach a fused ring/Paganin post-stage, run per slice by
    /// [`RawPrepPlan::finish_sinogram`] after all angle rows landed.
    pub fn with_post(mut self, post: SinoPostPlan) -> RawPrepPlan {
        self.post = post;
        self
    }

    /// True when [`RawPrepPlan::finish_sinogram`] would do nothing.
    pub fn post_is_empty(&self) -> bool {
        self.post.is_empty()
    }

    /// Allocate the buffers [`RawPrepPlan::finish_sinogram`] reuses
    /// across slices.
    pub fn make_post_scratch(&self) -> SinoPostScratch {
        self.post.make_scratch()
    }

    /// Run the fused ring/Paganin post-stage over one fully assembled
    /// sinogram (all angle rows already prepped via
    /// [`RawPrepPlan::prep_angle_row`]).
    pub fn finish_sinogram(&self, sino: &mut Sinogram, scratch: &mut SinoPostScratch) {
        self.post.apply(sino, scratch);
    }

    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    pub fn zinger_threshold(&self) -> Option<f32> {
        self.zinger_threshold
    }

    /// Convert one projection row (`cols` raw counts at detector row
    /// `detector_row` of one frame) into one sinogram row of line
    /// integrals.
    pub fn prep_angle_row(&self, detector_row: usize, raw_row: &[u16], dst: &mut [f32]) {
        assert!(detector_row < self.rows, "detector row out of range");
        assert_eq!(raw_row.len(), self.cols, "raw row width mismatch");
        assert_eq!(dst.len(), self.cols, "destination row width mismatch");
        let off = detector_row * self.cols;
        let dark = &self.dark[off..off + self.cols];
        let denom = &self.denom[off..off + self.cols];
        for c in 0..self.cols {
            let t = ((raw_row[c] as f64 - dark[c]) / denom[c]).clamp(1e-6, 1.0);
            dst[c] = (-(t.ln()) / self.mu_scale) as f32;
        }
        zinger_row_inplace(dst, self.zinger_threshold);
    }
}

/// In-place zinger removal over one row (log-domain variant used by the
/// raw-count plan), bit-for-bit equal to `remove_zingers` on that row.
fn zinger_row_inplace(row: &mut [f32], threshold: Option<f32>) {
    let Some(thr) = threshold else { return };
    let n = row.len();
    if n < 3 {
        return;
    }
    let mut prev = row[0];
    for t in 1..n - 1 {
        let cur = row[t];
        let next = row[t + 1];
        if cur - prev > thr && cur - next > thr {
            row[t] = 0.5 * (prev + next);
        }
        prev = cur;
    }
}

/// The full standard preprocessing chain used by the file-based pipeline.
/// Normalization, zinger removal, −log, and ring suppression all run
/// through the fused [`PrepPlan`] pass (bit-identical to the explicit
/// `normalize → remove_zingers → minus_log → remove_stripes` chain).
pub fn standard_chain(raw: &Sinogram, dark: &[f32], flat: &[f32]) -> Sinogram {
    let mut fused = raw.clone();
    let plan = PrepPlan::new(dark, flat, Some(0.5)).with_ring(9);
    let mut scratch = plan.make_post_scratch();
    plan.apply_with(&mut fused, &mut scratch);
    fused
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_rescales_counts() {
        let mut raw = Sinogram::zeros(1, 3);
        raw.data.copy_from_slice(&[100.0, 550.0, 1000.0]);
        let dark = vec![100.0; 3];
        let flat = vec![1000.0; 3];
        let n = normalize(&raw, &dark, &flat);
        assert!((n.data[0] - 1e-6).abs() < 1e-7); // clamped at floor
        assert!((n.data[1] - 0.5).abs() < 1e-6);
        assert!((n.data[2] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn normalize_handles_dead_flat_pixels() {
        let mut raw = Sinogram::zeros(1, 2);
        raw.data.copy_from_slice(&[5.0, 5.0]);
        let dark = vec![5.0, 5.0];
        let flat = vec![5.0, 5.0]; // flat == dark: dead pixel
        let n = normalize(&raw, &dark, &flat);
        assert!(n.data.iter().all(|v| v.is_finite() && *v > 0.0));
    }

    #[test]
    fn minus_log_inverts_exponential() {
        let mut sino = Sinogram::zeros(1, 3);
        sino.data
            .copy_from_slice(&[1.0, (-2.0f32).exp(), (-0.5f32).exp()]);
        let l = minus_log(&sino);
        assert!((l.data[0] - 0.0).abs() < 1e-6);
        assert!((l.data[1] - 2.0).abs() < 1e-5);
        assert!((l.data[2] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn minus_log_survives_zeros() {
        let sino = Sinogram::zeros(1, 4);
        let l = minus_log(&sino);
        assert!(l.data.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn zinger_is_removed_but_edges_kept() {
        let mut sino = Sinogram::zeros(1, 7);
        sino.data
            .copy_from_slice(&[1.0, 1.0, 1.0, 9.0, 1.0, 4.0, 4.0]);
        let z = remove_zingers(&sino, 2.0);
        assert_eq!(z.data[3], 1.0); // isolated spike removed
        assert_eq!(z.data[5], 4.0); // genuine step preserved
    }

    #[test]
    fn stripe_removal_flattens_bad_column() {
        let n_angles = 50;
        let n_det = 32;
        let mut sino = Sinogram::zeros(n_angles, n_det);
        for a in 0..n_angles {
            for t in 0..n_det {
                let mut v = 1.0;
                if t == 10 {
                    v += 0.5; // miscalibrated detector column
                }
                sino.set(a, t, v);
            }
        }
        let fixed = remove_stripes(&sino, 5);
        let col: Vec<f32> = (0..n_angles).map(|a| fixed.get(a, 10)).collect();
        let mean = col.iter().sum::<f32>() / col.len() as f32;
        assert!(
            (mean - 1.0).abs() < 0.15,
            "stripe column mean {mean} should be pulled toward 1.0"
        );
    }

    #[test]
    fn stripe_removal_preserves_smooth_structure() {
        let mut sino = Sinogram::zeros(20, 64);
        for a in 0..20 {
            for t in 0..64 {
                sino.set(a, t, (t as f32 / 64.0).sin());
            }
        }
        let fixed = remove_stripes(&sino, 5);
        for i in 0..sino.data.len() {
            assert!((fixed.data[i] - sino.data[i]).abs() < 0.05);
        }
    }

    #[test]
    fn paganin_smooths_noise() {
        let mut sino = Sinogram::zeros(1, 64);
        for (t, v) in sino.row_mut(0).iter_mut().enumerate() {
            *v = if t % 2 == 0 { 1.0 } else { -1.0 };
        }
        let p = paganin_filter(&sino, 50.0);
        let amp = p.row(0)[20..40].iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        assert!(
            amp < 0.4,
            "high-frequency noise should be damped, got {amp}"
        );
    }

    #[test]
    fn paganin_zero_strength_is_identity() {
        let mut sino = Sinogram::zeros(2, 16);
        for (i, v) in sino.data.iter_mut().enumerate() {
            *v = i as f32;
        }
        assert_eq!(paganin_filter(&sino, 0.0), sino);
    }

    /// Deterministic pseudo-random counts (no external RNG dep).
    fn lcg_counts(seed: u64, len: usize, lo: f32, hi: f32) -> Vec<f32> {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let u = (state >> 33) as f32 / (1u64 << 31) as f32;
                lo + u * (hi - lo)
            })
            .collect()
    }

    #[test]
    fn prep_plan_matches_unfused_chain_bit_for_bit() {
        let n_angles = 23;
        let n_det = 61;
        let mut raw = Sinogram::zeros(n_angles, n_det);
        raw.data
            .copy_from_slice(&lcg_counts(7, n_angles * n_det, 80.0, 1100.0));
        // sprinkle zingers and a few below-dark samples
        for (i, v) in raw.data.iter_mut().enumerate() {
            if i % 37 == 5 {
                *v += 900.0;
            }
            if i % 53 == 11 {
                *v = 10.0;
            }
        }
        let dark = lcg_counts(11, n_det, 50.0, 120.0);
        let mut flat = lcg_counts(13, n_det, 800.0, 1200.0);
        flat[17] = dark[17]; // dead pixel: exercises the denominator floor
        for &thr in &[0.5f32, 0.05] {
            let expected = minus_log(&remove_zingers(&normalize(&raw, &dark, &flat), thr));
            let mut fused = raw.clone();
            PrepPlan::new(&dark, &flat, Some(thr)).apply(&mut fused);
            assert_eq!(
                expected.data, fused.data,
                "fused PrepPlan must match normalize→zingers→log bit-for-bit (thr {thr})"
            );
        }
        // no-zinger variant: normalize→log only
        let expected = minus_log(&normalize(&raw, &dark, &flat));
        let mut fused = raw.clone();
        PrepPlan::new(&dark, &flat, None).apply(&mut fused);
        assert_eq!(expected.data, fused.data);
    }

    #[test]
    fn raw_prep_plan_matches_per_element_gather_bit_for_bit() {
        // reference: the realmode per-element math + log-domain zingers
        let rows = 5;
        let cols = 41;
        let n_angles = 19;
        let mu = 0.04;
        let dark: Vec<u16> = lcg_counts(3, rows * cols, 40.0, 110.0)
            .iter()
            .map(|&v| v as u16)
            .collect();
        let mut flat: Vec<u16> = lcg_counts(5, rows * cols, 700.0, 1300.0)
            .iter()
            .map(|&v| v as u16)
            .collect();
        flat[2 * cols + 7] = dark[2 * cols + 7]; // dead pixel
        let frames: Vec<Vec<u16>> = (0..n_angles)
            .map(|a| {
                lcg_counts(100 + a as u64, rows * cols, 60.0, 1400.0)
                    .iter()
                    .map(|&v| v as u16)
                    .collect()
            })
            .collect();
        let plan = RawPrepPlan::new(&dark, &flat, rows, cols, mu, Some(0.5));
        for r in 0..rows {
            let mut reference = Sinogram::zeros(n_angles, cols);
            for (a, frame) in frames.iter().enumerate() {
                for c in 0..cols {
                    let raw = frame[r * cols + c] as f64;
                    let d = dark[r * cols + c] as f64;
                    let f = flat[r * cols + c] as f64;
                    let t = ((raw - d) / (f - d).max(1.0)).clamp(1e-6, 1.0);
                    reference.set(a, c, (-(t.ln()) / mu) as f32);
                }
            }
            let reference = remove_zingers(&reference, 0.5);
            let mut fused = Sinogram::zeros(n_angles, cols);
            for (a, frame) in frames.iter().enumerate() {
                plan.prep_angle_row(r, &frame[r * cols..(r + 1) * cols], fused.row_mut(a));
            }
            assert_eq!(reference.data, fused.data, "detector row {r}");
        }
    }

    #[test]
    fn standard_chain_produces_finite_line_integrals() {
        let n_angles = 10;
        let n_det = 32;
        let mut raw = Sinogram::zeros(n_angles, n_det);
        for (i, v) in raw.data.iter_mut().enumerate() {
            *v = 500.0 + (i % 17) as f32 * 20.0;
        }
        let dark = vec![100.0; n_det];
        let flat = vec![900.0; n_det];
        let out = standard_chain(&raw, &dark, &flat);
        assert!(out.data.iter().all(|v| v.is_finite()));
        // transmission < 1 everywhere => line integrals ≥ 0 (approximately)
        assert!(out.data.iter().all(|&v| v > -0.5));
    }
}
