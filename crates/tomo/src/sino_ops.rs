//! Sinogram manipulation utilities used by beamline operations:
//! 360°→180° folding, ROI cropping (the "cropped test scans" of §5.2),
//! detector binning, and edge padding for truncated acquisitions.

use crate::geometry::Geometry;
use crate::image::Sinogram;
use crate::TomoError;

/// Fold a full 360° scan into a 180° sinogram by averaging each
/// projection with the mirror of its opposite (θ + π) view. Halves the
/// angle count and reduces photon noise by √2 — the standard redundancy
/// average for centered 360° acquisitions.
///
/// Requires an even number of angles spanning a full turn.
pub fn fold_360_to_180(
    sino: &Sinogram,
    geom: &Geometry,
) -> Result<(Sinogram, Geometry), TomoError> {
    geom.validate(sino.n_angles, sino.n_det)?;
    if sino.n_angles % 2 != 0 {
        return Err(TomoError::BadParameter(
            "360° fold needs an even angle count".into(),
        ));
    }
    let half = sino.n_angles / 2;
    let mut out = Sinogram::zeros(half, sino.n_det);
    for a in 0..half {
        let direct = sino.row(a);
        let opposite = sino.row(a + half);
        let dst = out.row_mut(a);
        for t in 0..sino.n_det {
            // the θ+π view sees the same ray family mirrored about the
            // rotation axis; for a centered axis that's a detector flip
            let mirrored = opposite[sino.n_det - 1 - t];
            dst[t] = 0.5 * (direct[t] + mirrored);
        }
    }
    let folded_geom = Geometry {
        angles: geom.angles[..half].to_vec(),
        n_det: geom.n_det,
        center: geom.center,
    };
    Ok((out, folded_geom))
}

/// Crop the detector axis to `[lo, hi)` — what a cropped test scan
/// records. The returned geometry's rotation center shifts accordingly.
pub fn crop_roi(
    sino: &Sinogram,
    geom: &Geometry,
    lo: usize,
    hi: usize,
) -> Result<(Sinogram, Geometry), TomoError> {
    geom.validate(sino.n_angles, sino.n_det)?;
    if lo >= hi || hi > sino.n_det {
        return Err(TomoError::BadParameter(format!(
            "bad ROI [{lo}, {hi}) for detector width {}",
            sino.n_det
        )));
    }
    let width = hi - lo;
    let mut out = Sinogram::zeros(sino.n_angles, width);
    for a in 0..sino.n_angles {
        out.row_mut(a).copy_from_slice(&sino.row(a)[lo..hi]);
    }
    let cropped_geom = Geometry {
        angles: geom.angles.clone(),
        n_det: width,
        center: geom.center - lo as f64,
    };
    Ok((out, cropped_geom))
}

/// Bin the detector axis by an integer factor (averaging), the detector's
/// hardware binning mode. The center rescales with the bin size.
pub fn bin_detector(
    sino: &Sinogram,
    geom: &Geometry,
    factor: usize,
) -> Result<(Sinogram, Geometry), TomoError> {
    geom.validate(sino.n_angles, sino.n_det)?;
    if factor == 0 || sino.n_det % factor != 0 {
        return Err(TomoError::BadParameter(format!(
            "bin factor {factor} must divide detector width {}",
            sino.n_det
        )));
    }
    let width = sino.n_det / factor;
    let mut out = Sinogram::zeros(sino.n_angles, width);
    for a in 0..sino.n_angles {
        let src = sino.row(a);
        let dst = out.row_mut(a);
        for (t, d) in dst.iter_mut().enumerate() {
            let s: f32 = src[t * factor..(t + 1) * factor].iter().sum();
            *d = s / factor as f32;
        }
    }
    // a point at detector coordinate c maps to bin (c - (factor-1)/2)/factor
    let binned_geom = Geometry {
        angles: geom.angles.clone(),
        n_det: width,
        center: (geom.center - (factor as f64 - 1.0) / 2.0) / factor as f64,
    };
    Ok((out, binned_geom))
}

/// Pad each row by `pad` bins of edge extension on both sides. Reduces
/// the bright-rim truncation artifact when the sample extends past the
/// detector (interior/ROI tomography).
pub fn pad_edges(sino: &Sinogram, geom: &Geometry, pad: usize) -> (Sinogram, Geometry) {
    let width = sino.n_det + 2 * pad;
    let mut out = Sinogram::zeros(sino.n_angles, width);
    for a in 0..sino.n_angles {
        let src = sino.row(a);
        let dst = out.row_mut(a);
        let first = *src.first().unwrap_or(&0.0);
        let last = *src.last().unwrap_or(&0.0);
        for d in dst[..pad].iter_mut() {
            *d = first;
        }
        dst[pad..pad + sino.n_det].copy_from_slice(src);
        for d in dst[pad + sino.n_det..].iter_mut() {
            *d = last;
        }
    }
    let padded_geom = Geometry {
        angles: geom.angles.clone(),
        n_det: width,
        center: geom.center + pad as f64,
    };
    (out, padded_geom)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fbp::{fbp_slice, FbpConfig};
    use crate::image::Image;
    use crate::radon::{forward_project, in_recon_disk};

    fn disk_image(n: usize, r: f64) -> Image {
        let mut img = Image::square(n);
        let c = (n as f64 - 1.0) / 2.0;
        for y in 0..n {
            for x in 0..n {
                let dx = x as f64 - c;
                let dy = y as f64 - c;
                if (dx * dx + dy * dy).sqrt() <= r {
                    img.set(x, y, 1.0);
                }
            }
        }
        img
    }

    fn full_turn_geometry(n_angles: usize, n_det: usize) -> Geometry {
        let angles = (0..n_angles)
            .map(|i| 2.0 * std::f64::consts::PI * i as f64 / n_angles as f64)
            .collect();
        Geometry {
            angles,
            n_det,
            center: (n_det as f64 - 1.0) / 2.0,
        }
    }

    #[test]
    fn fold_recovers_180_geometry() {
        let n = 32;
        let img = disk_image(n, 9.0);
        let geom360 = full_turn_geometry(48, n);
        let sino360 = forward_project(&img, &geom360);
        let (sino180, geom180) = fold_360_to_180(&sino360, &geom360).unwrap();
        assert_eq!(sino180.n_angles, 24);
        assert_eq!(geom180.n_angles(), 24);
        // folded data should reconstruct the disk
        let rec = fbp_slice(&sino180, &geom180, &FbpConfig::default()).unwrap();
        let center = rec.get(n / 2, n / 2);
        assert!((center - 1.0).abs() < 0.15, "center {center}");
    }

    #[test]
    fn fold_averages_redundant_views() {
        // a symmetric object: folded rows equal the original rows
        let n = 32;
        let img = disk_image(n, 8.0);
        let geom360 = full_turn_geometry(16, n);
        let sino360 = forward_project(&img, &geom360);
        let (folded, _) = fold_360_to_180(&sino360, &geom360).unwrap();
        for a in 0..8 {
            for t in 0..n {
                assert!(
                    (folded.get(a, t) - sino360.get(a, t)).abs() < 0.3,
                    "({a},{t})"
                );
            }
        }
    }

    #[test]
    fn fold_rejects_odd_angle_counts() {
        let geom = full_turn_geometry(15, 8);
        let sino = Sinogram::zeros(15, 8);
        assert!(fold_360_to_180(&sino, &geom).is_err());
    }

    #[test]
    fn crop_shifts_center() {
        let geom = Geometry::parallel_180(10, 64);
        let sino = Sinogram::zeros(10, 64);
        let (cropped, cgeom) = crop_roi(&sino, &geom, 16, 48).unwrap();
        assert_eq!(cropped.n_det, 32);
        assert_eq!(cgeom.center, 31.5 - 16.0);
        assert!(crop_roi(&sino, &geom, 40, 30).is_err());
        assert!(crop_roi(&sino, &geom, 0, 65).is_err());
    }

    #[test]
    fn crop_preserves_values() {
        let geom = Geometry::parallel_180(2, 8);
        let mut sino = Sinogram::zeros(2, 8);
        for (i, v) in sino.data.iter_mut().enumerate() {
            *v = i as f32;
        }
        let (c, _) = crop_roi(&sino, &geom, 2, 6).unwrap();
        assert_eq!(c.row(0), &[2.0, 3.0, 4.0, 5.0]);
        assert_eq!(c.row(1), &[10.0, 11.0, 12.0, 13.0]);
    }

    #[test]
    fn binning_averages_and_rescales_center() {
        let geom = Geometry::parallel_180(1, 8);
        let mut sino = Sinogram::zeros(1, 8);
        sino.row_mut(0)
            .copy_from_slice(&[0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0]);
        let (binned, bgeom) = bin_detector(&sino, &geom, 2).unwrap();
        assert_eq!(binned.row(0), &[1.0, 5.0, 9.0, 13.0]);
        // center 3.5 -> (3.5 - 0.5)/2 = 1.5, the midpoint of 4 bins
        assert!((bgeom.center - 1.5).abs() < 1e-12);
        assert!(bin_detector(&sino, &geom, 3).is_err());
    }

    #[test]
    fn binned_recon_still_reconstructs() {
        let n = 64;
        let img = disk_image(n, 18.0);
        let geom = Geometry::parallel_180(60, n);
        let sino = forward_project(&img, &geom);
        let (binned, bgeom) = bin_detector(&sino, &geom, 2).unwrap();
        let rec = fbp_slice(&binned, &bgeom, &FbpConfig::default()).unwrap();
        // binned line integrals keep their physical length scale, so the
        // reconstruction at half resolution has ~2x the per-pixel value
        let center = rec.get(n / 4, n / 4);
        assert!((center - 2.0).abs() < 0.4, "center {center}");
    }

    #[test]
    fn padding_reduces_truncation_artifact() {
        // truncate a scan of an oversized disk, then reconstruct with and
        // without edge padding; padding should reduce the error
        let n = 64;
        let img = disk_image(n, 30.0); // extendsing toward the detector edge
        let geom = Geometry::parallel_180(90, n);
        let sino = forward_project(&img, &geom);
        // truncate to the central 40 bins
        let (trunc, tgeom) = crop_roi(&sino, &geom, 12, 52).unwrap();
        let plain = fbp_slice(&trunc, &tgeom, &FbpConfig::default()).unwrap();
        let (padded, pgeom) = pad_edges(&trunc, &tgeom, 20);
        let rec_padded = fbp_slice(&padded, &pgeom, &FbpConfig::default()).unwrap();
        // compare the interior against truth value 1.0
        let m = 40;
        let err = |rec: &Image, full_width: usize| -> f64 {
            let off = (full_width - m) / 2;
            let mut e = 0.0;
            let mut cnt = 0;
            for y in 0..m {
                for x in 0..m {
                    if in_recon_disk(x, y, m) {
                        e += (rec.get(x + off, y + off) as f64 - 1.0).powi(2);
                        cnt += 1;
                    }
                }
            }
            (e / cnt as f64).sqrt()
        };
        let e_plain = err(&plain, 40);
        let e_padded = err(&rec_padded, 80);
        assert!(
            e_padded < e_plain,
            "padding should help: {e_plain} -> {e_padded}"
        );
    }
}
