//! Filtered back projection.
//!
//! This is the algorithm the streaming branch runs: one filtered back
//! projection per slice immediately after the 180° acquisition completes.
//! Volume reconstruction parallelizes across slices with rayon, the same
//! sinogram-level decomposition tomopy uses across the 128 cores of a
//! NERSC CPU node (and streamtomocupy across 4 GPUs).

use crate::filter::FilterKind;
use crate::geometry::Geometry;
use crate::image::{Image, Sinogram, Volume};
use crate::plan::ReconPlan;
use crate::TomoError;
use serde::{Deserialize, Serialize};

/// Configuration for filtered back projection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FbpConfig {
    /// Apodizing window.
    pub filter: FilterKind,
    /// Mask the reconstruction to the inscribed circle.
    pub mask_disk: bool,
}

impl Default for FbpConfig {
    fn default() -> Self {
        FbpConfig {
            filter: FilterKind::SheppLogan,
            mask_disk: true,
        }
    }
}

/// Reconstruct a single slice from its sinogram. The output is a square
/// image with side `n_det`.
///
/// Convenience wrapper that builds a [`ReconPlan`] per call; anything
/// reconstructing more than one slice of the same geometry should hold a
/// plan and call [`ReconPlan::fbp_slice_with`] to amortize the filter
/// response, FFT tables, and scratch buffers.
pub fn fbp_slice(sino: &Sinogram, geom: &Geometry, cfg: &FbpConfig) -> Result<Image, TomoError> {
    geom.validate(sino.n_angles, sino.n_det)?;
    let plan = ReconPlan::new(geom, cfg)?;
    let mut scratch = plan.make_scratch();
    plan.fbp_slice_with(sino, &mut scratch)
}

/// Reconstruct a full volume from a stack of per-slice sinograms,
/// slice-parallel via rayon. Convenience wrapper over
/// [`ReconPlan::fbp_volume`], which reconstructs directly into the
/// volume's slice buffers with one scratch per worker thread.
pub fn fbp_volume(
    sinos: &[Sinogram],
    geom: &Geometry,
    cfg: &FbpConfig,
) -> Result<Volume, TomoError> {
    if sinos.is_empty() {
        return Err(TomoError::BadParameter("empty sinogram stack".into()));
    }
    let plan = ReconPlan::new(geom, cfg)?;
    plan.fbp_volume(sinos)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::radon::{forward_project, in_recon_disk};

    fn disk_image(n: usize, r: f64, v: f32) -> Image {
        let mut img = Image::square(n);
        let c = (n as f64 - 1.0) / 2.0;
        for y in 0..n {
            for x in 0..n {
                let dx = x as f64 - c;
                let dy = y as f64 - c;
                if (dx * dx + dy * dy).sqrt() <= r {
                    img.set(x, y, v);
                }
            }
        }
        img
    }

    #[test]
    fn fbp_recovers_disk_amplitude() {
        let n = 64;
        let truth = disk_image(n, 18.0, 1.0);
        let geom = Geometry::parallel_180(120, n);
        let sino = forward_project(&truth, &geom);
        let rec = fbp_slice(&sino, &geom, &FbpConfig::default()).unwrap();
        // interior of the disk should be near 1.0
        let c = n / 2;
        let interior: f32 = rec.get(c, c);
        assert!(
            (interior - 1.0).abs() < 0.12,
            "center value {interior} should be ~1"
        );
        // well outside the disk but inside the recon circle should be ~0
        let outside = rec.get(c, 4);
        assert!(outside.abs() < 0.12, "background {outside} should be ~0");
    }

    #[test]
    fn fbp_error_decreases_with_more_angles() {
        let n = 64;
        let truth = disk_image(n, 16.0, 1.0);
        let err = |n_angles: usize| -> f64 {
            let geom = Geometry::parallel_180(n_angles, n);
            let sino = forward_project(&truth, &geom);
            let rec = fbp_slice(&sino, &geom, &FbpConfig::default()).unwrap();
            let mut e = 0.0;
            let mut cnt = 0usize;
            for y in 0..n {
                for x in 0..n {
                    if in_recon_disk(x, y, n) {
                        e += (rec.get(x, y) as f64 - truth.get(x, y) as f64).powi(2);
                        cnt += 1;
                    }
                }
            }
            (e / cnt as f64).sqrt()
        };
        let e_few = err(12);
        let e_many = err(180);
        assert!(
            e_many < e_few * 0.7,
            "RMSE should drop with angles: {e_few} -> {e_many}"
        );
    }

    #[test]
    fn unfiltered_bp_is_much_worse_than_fbp() {
        let n = 48;
        let truth = disk_image(n, 12.0, 1.0);
        let geom = Geometry::parallel_180(90, n);
        let sino = forward_project(&truth, &geom);
        let fbp = fbp_slice(&sino, &geom, &FbpConfig::default()).unwrap();
        let bp = fbp_slice(
            &sino,
            &geom,
            &FbpConfig {
                filter: FilterKind::None,
                mask_disk: true,
            },
        )
        .unwrap();
        let rmse = |img: &Image| -> f64 {
            let mut e = 0.0;
            for i in 0..img.data.len() {
                e += (img.data[i] as f64 - truth.data[i] as f64).powi(2);
            }
            (e / img.data.len() as f64).sqrt()
        };
        assert!(rmse(&bp) > 5.0 * rmse(&fbp));
    }

    #[test]
    fn shape_mismatch_is_an_error() {
        let geom = Geometry::parallel_180(10, 32);
        let sino = Sinogram::zeros(10, 16);
        assert!(matches!(
            fbp_slice(&sino, &geom, &FbpConfig::default()),
            Err(TomoError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn volume_recon_matches_slicewise() {
        let n = 32;
        let truth = disk_image(n, 8.0, 1.0);
        let geom = Geometry::parallel_180(30, n);
        let sino = forward_project(&truth, &geom);
        let sinos = vec![sino.clone(), sino.clone(), sino.clone()];
        let vol = fbp_volume(&sinos, &geom, &FbpConfig::default()).unwrap();
        assert_eq!((vol.nx, vol.ny, vol.nz), (n, n, 3));
        let single = fbp_slice(&sino, &geom, &FbpConfig::default()).unwrap();
        for z in 0..3 {
            assert_eq!(vol.slice_xy(z), single);
        }
    }

    #[test]
    fn empty_stack_is_an_error() {
        let geom = Geometry::parallel_180(10, 16);
        assert!(fbp_volume(&[], &geom, &FbpConfig::default()).is_err());
    }
}
