//! Forward and back projection operators for parallel-beam geometry.
//!
//! Conventions: for a projection at angle `θ`, a pixel at image coordinates
//! `(x, y)` (origin at the image center) maps to detector coordinate
//! `s = x·cosθ + y·sinθ` relative to the rotation center. The forward
//! projector integrates along the ray direction `(-sinθ, cosθ)` with unit
//! step and bilinear sampling; the back projector gathers with linear
//! interpolation along the detector. The pair is approximately adjoint,
//! which is what the iterative solvers in [`crate::iterative`] rely on.

use crate::geometry::Geometry;
use crate::image::{Image, Sinogram};

/// Integrate the image along every ray of the geometry, producing a
/// sinogram. This is the `A` in the iterative solvers and the synthetic
/// data generator used by the phantom crate.
pub fn forward_project(img: &Image, geom: &Geometry) -> Sinogram {
    let mut sino = Sinogram::zeros(geom.n_angles(), geom.n_det);
    forward_project_into(img, geom, &mut sino);
    sino
}

/// Forward-project into an existing sinogram buffer (avoids reallocation in
/// iterative loops).
pub fn forward_project_into(img: &Image, geom: &Geometry, sino: &mut Sinogram) {
    assert_eq!(sino.n_angles, geom.n_angles());
    assert_eq!(sino.n_det, geom.n_det);
    for (a, &theta) in geom.angles.iter().enumerate() {
        let (sin_t, cos_t) = theta.sin_cos();
        project_angle_into(img, geom, sin_t, cos_t, sino.row_mut(a));
    }
}

/// Integrate one projection angle (given as its precomputed `sinθ`/`cosθ`)
/// into a detector row. The integration range of each ray is clipped to
/// where it can intersect the image rectangle: `sample_bilinear` is exactly
/// zero unless `x ∈ [0, w-1]` and `y ∈ [0, h-1]`, so the clip (widened by
/// two steps on each side for float safety) changes no sums — it only skips
/// samples that were exact zeros.
pub(crate) fn project_angle_into(
    img: &Image,
    geom: &Geometry,
    sin_t: f64,
    cos_t: f64,
    out_row: &mut [f32],
) {
    let cx = (img.width as f64 - 1.0) / 2.0;
    let cy = (img.height as f64 - 1.0) / 2.0;
    let last_x = img.width as f64 - 1.0;
    let last_y = img.height as f64 - 1.0;
    // ray length covers the image diagonal
    let half_len =
        (((img.width * img.width + img.height * img.height) as f64).sqrt() / 2.0).ceil() as i64;
    for (t, out) in out_row.iter_mut().enumerate() {
        let s = t as f64 - geom.center;
        // base point on the detector line through the image center
        let bx = cx + s * cos_t;
        let by = cy + s * sin_t;
        let mut lo = -(half_len as f64);
        let mut hi = half_len as f64;
        // x(r) = bx − r·sinθ ∈ [0, last_x]
        if sin_t != 0.0 {
            let a = (bx - last_x) / sin_t;
            let b = bx / sin_t;
            lo = lo.max(a.min(b));
            hi = hi.min(a.max(b));
        } else if !(0.0..=last_x).contains(&bx) {
            *out = 0.0;
            continue;
        }
        // y(r) = by + r·cosθ ∈ [0, last_y]
        if cos_t != 0.0 {
            let a = -by / cos_t;
            let b = (last_y - by) / cos_t;
            lo = lo.max(a.min(b));
            hi = hi.min(a.max(b));
        } else if !(0.0..=last_y).contains(&by) {
            *out = 0.0;
            continue;
        }
        // float-to-int casts saturate, so degenerate (empty) intervals are safe
        let r_lo = ((lo.floor() as i64) - 2).max(-half_len);
        let r_hi = ((hi.ceil() as i64) + 2).min(half_len);
        let mut acc = 0.0f64;
        for r in r_lo..=r_hi {
            let rf = r as f64;
            let x = bx - rf * sin_t;
            let y = by + rf * cos_t;
            acc += img.sample_bilinear(x, y);
        }
        *out = acc as f32;
    }
}

/// Unfiltered back projection: smear every sinogram row back across the
/// image. `scale` is applied per angle (FBP passes `π / n_angles`).
pub fn backproject(sino: &Sinogram, geom: &Geometry, n: usize, scale: f64) -> Image {
    let mut img = Image::square(n);
    backproject_into(sino, geom, &mut img, scale);
    img
}

/// Back-project into an existing image buffer, accumulating.
pub fn backproject_into(sino: &Sinogram, geom: &Geometry, img: &mut Image, scale: f64) {
    assert_eq!(sino.n_angles, geom.n_angles());
    assert_eq!(sino.n_det, geom.n_det);
    let cx = (img.width as f64 - 1.0) / 2.0;
    let cy = (img.height as f64 - 1.0) / 2.0;
    let width = img.width;
    for (a, &theta) in geom.angles.iter().enumerate() {
        let (sin_t, cos_t) = theta.sin_cos();
        for y in 0..img.height {
            let yr = y as f64 - cy;
            let row_base = y * width;
            for x in 0..width {
                let xr = x as f64 - cx;
                let t = xr * cos_t + yr * sin_t + geom.center;
                if t >= 0.0 && t <= (geom.n_det - 1) as f64 {
                    let v = sino.sample_row(a, t);
                    img.data[row_base + x] += (v * scale) as f32;
                }
            }
        }
    }
}

/// The reconstruction disk: pixels outside the inscribed circle are not
/// covered by every projection, so reconstructions are usually masked to
/// this region. Returns `true` when `(x, y)` is inside.
pub fn in_recon_disk(x: usize, y: usize, n: usize) -> bool {
    let c = (n as f64 - 1.0) / 2.0;
    let dx = x as f64 - c;
    let dy = y as f64 - c;
    dx * dx + dy * dy <= (n as f64 / 2.0 - 1.0).powi(2)
}

/// Zero all pixels outside the reconstruction disk.
pub fn apply_disk_mask(img: &mut Image) {
    let n = img.width;
    assert_eq!(img.width, img.height, "disk mask requires a square image");
    for y in 0..n {
        for x in 0..n {
            if !in_recon_disk(x, y, n) {
                img.set(x, y, 0.0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Centered disk of radius r and value v.
    fn disk_image(n: usize, r: f64, v: f32) -> Image {
        let mut img = Image::square(n);
        let c = (n as f64 - 1.0) / 2.0;
        for y in 0..n {
            for x in 0..n {
                let dx = x as f64 - c;
                let dy = y as f64 - c;
                if (dx * dx + dy * dy).sqrt() <= r {
                    img.set(x, y, v);
                }
            }
        }
        img
    }

    #[test]
    fn projection_of_disk_matches_chord_length() {
        let n = 64;
        let r = 20.0;
        let img = disk_image(n, r, 1.0);
        let geom = Geometry::parallel_180(8, n);
        let sino = forward_project(&img, &geom);
        // the central ray crosses the full diameter: integral ≈ 2r
        for a in 0..geom.n_angles() {
            let center_val = sino.sample_row(a, geom.center);
            assert!(
                (center_val - 2.0 * r).abs() < 2.5,
                "angle {a}: {center_val} vs {}",
                2.0 * r
            );
        }
    }

    #[test]
    fn projection_mass_is_angle_invariant() {
        // total mass of each projection equals the image integral
        let n = 48;
        let img = disk_image(n, 12.0, 2.0);
        let total: f64 = img.data.iter().map(|&v| v as f64).sum();
        let geom = Geometry::parallel_180(16, n);
        let sino = forward_project(&img, &geom);
        for a in 0..geom.n_angles() {
            let mass: f64 = sino.row(a).iter().map(|&v| v as f64).sum();
            assert!(
                (mass - total).abs() / total < 0.02,
                "angle {a}: mass {mass} vs {total}"
            );
        }
    }

    #[test]
    fn forward_projection_is_linear() {
        let n = 32;
        let a = disk_image(n, 8.0, 1.0);
        let b = disk_image(n, 4.0, 3.0);
        let mut sum = Image::square(n);
        for i in 0..sum.data.len() {
            sum.data[i] = a.data[i] + b.data[i];
        }
        let geom = Geometry::parallel_180(12, n);
        let pa = forward_project(&a, &geom);
        let pb = forward_project(&b, &geom);
        let psum = forward_project(&sum, &geom);
        for i in 0..psum.data.len() {
            assert!((psum.data[i] - (pa.data[i] + pb.data[i])).abs() < 1e-3);
        }
    }

    #[test]
    fn forward_and_back_are_approximately_adjoint() {
        // <A x, y> ≈ <x, A^T y> for random-ish x, y
        let n = 24;
        let geom = Geometry::parallel_180(10, n);
        let mut x = Image::square(n);
        for (i, v) in x.data.iter_mut().enumerate() {
            // only fill the interior disk to avoid edge clipping asymmetry
            let xx = i % n;
            let yy = i / n;
            if in_recon_disk(xx, yy, n) {
                *v = ((i * 2654435761) % 97) as f32 / 97.0;
            }
        }
        let mut y = Sinogram::zeros(geom.n_angles(), geom.n_det);
        for (i, v) in y.data.iter_mut().enumerate() {
            *v = ((i * 40503) % 89) as f32 / 89.0;
        }
        let ax = forward_project(&x, &geom);
        let aty = backproject(&y, &geom, n, 1.0);
        let lhs: f64 = ax
            .data
            .iter()
            .zip(y.data.iter())
            .map(|(&a, &b)| a as f64 * b as f64)
            .sum();
        let rhs: f64 = x
            .data
            .iter()
            .zip(aty.data.iter())
            .map(|(&a, &b)| a as f64 * b as f64)
            .sum();
        let rel = (lhs - rhs).abs() / lhs.abs().max(1e-9);
        assert!(rel < 0.05, "adjoint mismatch: {lhs} vs {rhs} (rel {rel})");
    }

    #[test]
    fn empty_image_projects_to_zero() {
        let geom = Geometry::parallel_180(5, 16);
        let sino = forward_project(&Image::square(16), &geom);
        assert!(sino.data.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn backproject_scale_is_linear() {
        let geom = Geometry::parallel_180(6, 16);
        let mut sino = Sinogram::zeros(6, 16);
        sino.data.iter_mut().for_each(|v| *v = 1.0);
        let b1 = backproject(&sino, &geom, 16, 1.0);
        let b2 = backproject(&sino, &geom, 16, 2.0);
        for (a, b) in b1.data.iter().zip(b2.data.iter()) {
            assert!((b - 2.0 * a).abs() < 1e-5);
        }
    }

    #[test]
    fn disk_mask_zeroes_corners_keeps_center() {
        let mut img = Image::square(16);
        img.data.iter_mut().for_each(|v| *v = 1.0);
        apply_disk_mask(&mut img);
        assert_eq!(img.get(0, 0), 0.0);
        assert_eq!(img.get(15, 15), 0.0);
        assert_eq!(img.get(8, 8), 1.0);
    }
}
