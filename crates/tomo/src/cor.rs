//! Center-of-rotation (COR) estimation.
//!
//! A mis-calibrated rotation axis produces characteristic crescent
//! artifacts; beamline staff historically tuned it by eye. For a 180° scan
//! the projection at π is the mirror of the projection at 0 about the
//! rotation axis, so the axis can be found by maximizing the correlation
//! between row 0 and the flipped final row (Vo-style registration,
//! simplified to 1D).

use crate::image::Sinogram;

/// Estimate the rotation center (in detector bins) from the first and last
/// rows of a 180° sinogram. Searches shifts in `[-max_shift, max_shift]`
/// around the detector midpoint at `step` resolution.
///
/// Returns the estimated center, or `None` when the sinogram has fewer
/// than two rows.
pub fn find_center(sino: &Sinogram, max_shift: f64, step: f64) -> Option<f64> {
    if sino.n_angles < 2 || sino.n_det < 4 {
        return None;
    }
    let first = sino.row(0);
    let last = sino.row(sino.n_angles - 1);
    let mid = (sino.n_det as f64 - 1.0) / 2.0;
    let step = step.max(1e-3);

    let mut best_center = mid;
    let mut best_score = f64::NEG_INFINITY;
    let mut shift = -max_shift;
    while shift <= max_shift + 1e-12 {
        let center = mid + shift;
        let score = mirror_correlation(first, last, center);
        if score > best_score {
            best_score = score;
            best_center = center;
        }
        shift += step;
    }
    Some(best_center)
}

/// Normalized cross-correlation between `first(t)` and `last(2·center − t)`.
fn mirror_correlation(first: &[f32], last: &[f32], center: f64) -> f64 {
    let n = first.len();
    let mut sum_a = 0.0;
    let mut sum_b = 0.0;
    let mut count = 0usize;
    let mut pairs: Vec<(f64, f64)> = Vec::with_capacity(n);
    for (t, &a) in first.iter().enumerate() {
        let mirrored = 2.0 * center - t as f64;
        if mirrored < 0.0 || mirrored > (n - 1) as f64 {
            continue;
        }
        let i = mirrored.floor() as usize;
        let f = mirrored - i as f64;
        let b = if i + 1 < n {
            last[i] as f64 * (1.0 - f) + last[i + 1] as f64 * f
        } else {
            last[i] as f64
        };
        pairs.push((a as f64, b));
        sum_a += a as f64;
        sum_b += b;
        count += 1;
    }
    if count < 8 {
        return f64::NEG_INFINITY;
    }
    let ma = sum_a / count as f64;
    let mb = sum_b / count as f64;
    let mut num = 0.0;
    let mut da = 0.0;
    let mut db = 0.0;
    for (a, b) in pairs {
        num += (a - ma) * (b - mb);
        da += (a - ma).powi(2);
        db += (b - mb).powi(2);
    }
    if da <= 0.0 || db <= 0.0 {
        return f64::NEG_INFINITY;
    }
    num / (da * db).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Geometry;
    use crate::image::Image;
    use crate::radon::forward_project;

    fn offset_blob(n: usize) -> Image {
        let mut img = Image::square(n);
        let c = (n as f64 - 1.0) / 2.0;
        for y in 0..n {
            for x in 0..n {
                let dx = x as f64 - c - 5.0;
                let dy = y as f64 - c + 3.0;
                if (dx * dx + dy * dy).sqrt() < n as f64 * 0.12 {
                    img.set(x, y, 1.0);
                }
            }
        }
        img
    }

    /// Build a sinogram whose final row is exactly the 180° mirror view.
    fn sino_with_center(n: usize, center: f64) -> Sinogram {
        let img = offset_blob(n);
        // include the π endpoint so row 0 and the last row are mirror pairs
        let mut geom = Geometry::parallel_180(64, n).with_center(center);
        geom.angles.push(std::f64::consts::PI);
        let full = forward_project(&img, &geom);
        Sinogram::from_vec(geom.angles.len(), n, full.data)
    }

    #[test]
    fn finds_true_center_when_aligned() {
        let n = 64;
        let sino = sino_with_center(n, (n as f64 - 1.0) / 2.0);
        let est = find_center(&sino, 8.0, 0.25).unwrap();
        assert!(
            (est - 31.5).abs() <= 0.5,
            "estimated center {est}, expected 31.5"
        );
    }

    #[test]
    fn finds_shifted_center() {
        let n = 64;
        let true_center = 34.0;
        let sino = sino_with_center(n, true_center);
        let est = find_center(&sino, 8.0, 0.25).unwrap();
        assert!(
            (est - true_center).abs() <= 0.75,
            "estimated center {est}, expected {true_center}"
        );
    }

    #[test]
    fn degenerate_input_returns_none() {
        assert!(find_center(&Sinogram::zeros(1, 64), 5.0, 0.5).is_none());
        assert!(find_center(&Sinogram::zeros(10, 2), 5.0, 0.5).is_none());
    }

    #[test]
    fn flat_sinogram_returns_midpoint() {
        // no structure to register: correlation is -inf everywhere, so the
        // search keeps the detector midpoint
        let sino = Sinogram::zeros(4, 32);
        let est = find_center(&sino, 4.0, 0.5).unwrap();
        assert!((est - 15.5).abs() < 1e-9);
    }
}
