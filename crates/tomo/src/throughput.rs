//! Calibrated reconstruction cost models.
//!
//! The discrete-event simulation needs to know how long a paper-scale
//! reconstruction takes without actually allocating a 50 GB volume. The
//! models here count the dominant inner-loop operations (back-projection
//! samples, FFT butterflies, iterative sweeps) and divide by a device
//! throughput. The default throughputs are chosen so the paper's reference
//! scan — 1969 projections of 2160×2560, reconstructed on the 4 GPUs of a
//! NERSC node — lands in the reported 7–8 s window, and a 128-core CPU
//! node lands in the file-based branch's tens-of-minutes window; real
//! small-scale measurements can re-calibrate them.

use als_simcore::{ByteSize, SimDuration};
use serde::{Deserialize, Serialize};

/// Dimensions of an acquisition at paper scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScanDims {
    /// Number of projection angles.
    pub n_angles: usize,
    /// Detector rows (→ number of reconstructed slices).
    pub det_rows: usize,
    /// Detector columns (→ reconstructed slice side).
    pub det_cols: usize,
}

impl ScanDims {
    /// The reference scan from §5.2: "1969 16-bit projection images of
    /// size 2160×2560 (∼20 GB)".
    pub fn paper_reference() -> ScanDims {
        ScanDims {
            n_angles: 1969,
            det_rows: 2160,
            det_cols: 2560,
        }
    }

    /// Raw data size at 16-bit depth.
    pub fn raw_bytes(&self) -> ByteSize {
        ByteSize::from_bytes((self.n_angles * self.det_rows * self.det_cols * 2) as u64)
    }

    /// Reconstructed volume size at 32-bit depth
    /// (`det_rows × det_cols × det_cols` voxels).
    pub fn volume_bytes(&self) -> ByteSize {
        ByteSize::from_bytes((self.det_rows * self.det_cols * self.det_cols * 4) as u64)
    }

    /// Voxels in the reconstructed volume.
    pub fn voxels(&self) -> u64 {
        (self.det_rows * self.det_cols * self.det_cols) as u64
    }

    /// Back-projection inner-loop operations for one full FBP pass:
    /// every voxel gathers one sample per angle.
    pub fn backproj_ops(&self) -> u64 {
        self.voxels() * self.n_angles as u64
    }

    /// Scale every dimension by `f` (used to derive laptop-scale replicas
    /// with the same aspect ratio).
    pub fn scaled(&self, f: f64) -> ScanDims {
        let s = |v: usize| ((v as f64 * f).round() as usize).max(2);
        ScanDims {
            n_angles: s(self.n_angles),
            det_rows: s(self.det_rows),
            det_cols: s(self.det_cols),
        }
    }
}

/// Reconstruction device classes present in the paper's deployment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceModel {
    /// Back-projection samples per second, aggregated over the device.
    pub backproj_ops_per_sec: f64,
    /// Human-readable description for reports.
    pub devices: usize,
}

impl DeviceModel {
    /// A NERSC Perlmutter GPU node: 4 × A100. Calibrated so the paper's
    /// reference scan takes ≈7.5 s (§5.2 reports 7–8 s).
    pub fn nersc_gpu_node() -> DeviceModel {
        let ref_ops = ScanDims::paper_reference().backproj_ops() as f64;
        DeviceModel {
            backproj_ops_per_sec: ref_ops / 7.5,
            devices: 4,
        }
    }

    /// A NERSC Perlmutter CPU node: 128 cores running tomopy/gridrec-class
    /// code. Calibrated roughly 60× slower than the 4-GPU node, which puts
    /// a full-quality iterative reconstruction of a 25 GB scan in the
    /// 10–20 min band the file-based flows exhibit.
    pub fn nersc_cpu_node() -> DeviceModel {
        DeviceModel {
            backproj_ops_per_sec: DeviceModel::nersc_gpu_node().backproj_ops_per_sec / 60.0,
            devices: 128,
        }
    }

    /// An ALCF Polaris node (4 × A100-class accelerators) running the
    /// file-based CPU code path via Globus Compute. The ALCF flow uses
    /// fewer preprocessing passes, which is one reason Table 2 shows it
    /// finishing faster than the NERSC file branch on average.
    pub fn alcf_polaris_node() -> DeviceModel {
        DeviceModel {
            backproj_ops_per_sec: DeviceModel::nersc_gpu_node().backproj_ops_per_sec / 45.0,
            devices: 64,
        }
    }

    /// Calibrate a model from a real measurement: `ops` inner-loop
    /// operations observed to take `wall` seconds.
    pub fn calibrated(ops: u64, wall: SimDuration) -> DeviceModel {
        let secs = wall.as_secs_f64().max(1e-9);
        DeviceModel {
            backproj_ops_per_sec: ops as f64 / secs,
            devices: 1,
        }
    }
}

/// Reconstruction algorithm classes with their cost multipliers relative
/// to one plain back-projection pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReconClass {
    /// Streaming FBP: one filtered back-projection pass.
    StreamingFbp,
    /// Gridrec-style direct Fourier: cheaper than FBP per voxel.
    Gridrec,
    /// Full file-based pipeline: preprocessing + iterative refinement.
    /// `sweeps` counts forward+back pairs (e.g. SIRT iterations).
    Iterative { sweeps: u32 },
}

impl ReconClass {
    /// Cost in units of back-projection passes.
    pub fn pass_factor(&self) -> f64 {
        match self {
            // filtering adds ~15% on top of the back projection
            ReconClass::StreamingFbp => 1.15,
            // gridding + 2D FFT ≈ 40% of a BP pass at production sizes
            ReconClass::Gridrec => 0.4,
            // each sweep is a forward + back pair, plus preprocessing
            ReconClass::Iterative { sweeps } => 1.3 + 2.0 * *sweeps as f64,
        }
    }
}

/// Estimate the wall time of a reconstruction of `dims` with `class` on
/// `device`.
pub fn estimate_recon_time(
    dims: &ScanDims,
    class: ReconClass,
    device: &DeviceModel,
) -> SimDuration {
    let ops = dims.backproj_ops() as f64 * class.pass_factor();
    SimDuration::from_secs_f64(ops / device.backproj_ops_per_sec.max(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_reference_sizes_match_section_5_2() {
        let dims = ScanDims::paper_reference();
        // "∼20 GB" raw
        let raw_gib = dims.raw_bytes().as_gib_f64();
        assert!((18.0..23.0).contains(&raw_gib), "raw {raw_gib} GiB");
        // "∼50 GB" reconstructed volume
        let vol_gib = dims.volume_bytes().as_gib_f64();
        assert!((47.0..56.0).contains(&vol_gib), "volume {vol_gib} GiB");
    }

    #[test]
    fn streaming_recon_hits_7_to_8_seconds() {
        let t = estimate_recon_time(
            &ScanDims::paper_reference(),
            ReconClass::StreamingFbp,
            &DeviceModel::nersc_gpu_node(),
        );
        let secs = t.as_secs_f64();
        assert!((7.0..10.0).contains(&secs), "streaming recon {secs} s");
    }

    #[test]
    fn file_based_recon_is_minutes_not_seconds() {
        let t = estimate_recon_time(
            &ScanDims::paper_reference(),
            ReconClass::Iterative { sweeps: 2 },
            &DeviceModel::nersc_cpu_node(),
        );
        let mins = t.as_secs_f64() / 60.0;
        assert!(
            (10.0..60.0).contains(&mins),
            "file-based recon {mins} min should be tens of minutes"
        );
    }

    #[test]
    fn gridrec_is_cheaper_than_fbp() {
        let dims = ScanDims::paper_reference();
        let dev = DeviceModel::nersc_cpu_node();
        let fbp = estimate_recon_time(&dims, ReconClass::StreamingFbp, &dev);
        let grid = estimate_recon_time(&dims, ReconClass::Gridrec, &dev);
        assert!(grid < fbp);
    }

    #[test]
    fn iterative_cost_scales_with_sweeps() {
        let dims = ScanDims::paper_reference().scaled(0.1);
        let dev = DeviceModel::nersc_cpu_node();
        let t2 = estimate_recon_time(&dims, ReconClass::Iterative { sweeps: 2 }, &dev);
        let t8 = estimate_recon_time(&dims, ReconClass::Iterative { sweeps: 8 }, &dev);
        let ratio = t8.as_secs_f64() / t2.as_secs_f64();
        assert!((2.5..4.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn scaled_dims_preserve_aspect() {
        let d = ScanDims::paper_reference().scaled(0.05);
        assert!(d.n_angles >= 2 && d.det_rows >= 2 && d.det_cols >= 2);
        let ar_orig = 2560.0 / 2160.0;
        let ar = d.det_cols as f64 / d.det_rows as f64;
        assert!((ar - ar_orig).abs() < 0.1);
    }

    #[test]
    fn calibration_roundtrips() {
        let dev = DeviceModel::calibrated(1_000_000, SimDuration::from_secs(2));
        assert!((dev.backproj_ops_per_sec - 500_000.0).abs() < 1.0);
    }
}
