//! Minimal complex arithmetic and an iterative radix-2 FFT.
//!
//! Written in-house so the reconstruction stack has no external FFT
//! dependency. Sizes are restricted to powers of two; callers zero-pad
//! (which FBP wants anyway to avoid circular-convolution wraparound).

/// A complex number in `f64`. `repr(C)` so a `[Complex]` slice can be
/// reinterpreted as interleaved `(re, im)` f64 pairs by the SIMD
/// kernels in [`crate::simd`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Complex {
    pub re: f64,
    pub im: f64,
}

impl Complex {
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };

    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    pub fn from_re(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    pub fn abs(self) -> f64 {
        self.norm_sq().sqrt()
    }

    pub fn scale(self, s: f64) -> Self {
        Complex::new(self.re * s, self.im * s)
    }

    /// `e^{iθ}`.
    pub fn cis(theta: f64) -> Self {
        Complex::new(theta.cos(), theta.sin())
    }
}

impl std::ops::Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl std::ops::Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl std::ops::Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl std::ops::AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

/// Round `n` up to the next power of two (minimum 1).
pub fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

fn bit_reverse_permute(data: &mut [Complex]) {
    let n = data.len();
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            data.swap(i, j);
        }
    }
}

fn fft_inplace(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    assert!(
        n.is_power_of_two(),
        "FFT size must be a power of two, got {n}"
    );
    if n <= 1 {
        return;
    }
    bit_reverse_permute(data);
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::cis(ang);
        for chunk in data.chunks_mut(len) {
            let mut w = Complex::from_re(1.0);
            let (lo, hi) = chunk.split_at_mut(len / 2);
            for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
                let u = *a;
                let v = *b * w;
                *a = u + v;
                *b = u - v;
                w = w * wlen;
            }
        }
        len <<= 1;
    }
    if inverse {
        let inv_n = 1.0 / n as f64;
        for x in data.iter_mut() {
            *x = x.scale(inv_n);
        }
    }
}

/// Precomputed radix-2 FFT plan: bit-reversal permutation and per-stage
/// twiddle tables built once and reused across transforms of the same
/// length. The free functions [`fft`]/[`ifft`] derive every twiddle by
/// recursive multiplication, which is fine for one-shot transforms but
/// wasteful inside the reconstruction loops that run thousands of
/// same-size FFTs — those go through a plan (see [`crate::plan`]).
///
/// Table twiddles are each computed directly with `sin`/`cos`, so a plan
/// is also slightly *more* accurate than the recursive path.
///
/// Plans dispatch their butterfly stages through [`crate::simd`]: on
/// hosts with AVX2+FMA the stage loop runs two complexes per 256-bit
/// lane, **bit-identical** to the scalar loop (mul + addsub, no FMA
/// contraction — see `simd::stage_butterflies`); elsewhere the scalar
/// loop runs. [`FftPlan::new`] picks the detected path; tests force
/// paths via [`FftPlan::with_simd_path`].
#[derive(Debug, Clone)]
pub struct FftPlan {
    n: usize,
    /// Bit-reversed index of every position (swap when `i < rev[i]`).
    rev: Vec<u32>,
    /// Forward twiddles, stages concatenated: for each `len` in
    /// `2, 4, …, n`, the factors `e^{-2πi j/len}` for `j < len/2`.
    tw: Vec<Complex>,
    /// Which butterfly kernel the stage loop dispatches to.
    path: crate::simd::SimdPath,
}

impl FftPlan {
    /// Build a plan for transforms of length `n` (power of two).
    pub fn new(n: usize) -> FftPlan {
        assert!(
            n.is_power_of_two(),
            "FFT size must be a power of two, got {n}"
        );
        assert!(n <= u32::MAX as usize, "FFT size {n} too large for plan");
        let mut rev = vec![0u32; n];
        let mut j = 0usize;
        for r in rev.iter_mut().skip(1) {
            let mut bit = n >> 1;
            while j & bit != 0 {
                j ^= bit;
                bit >>= 1;
            }
            j |= bit;
            *r = j as u32;
        }
        let mut tw = Vec::with_capacity(n.saturating_sub(1));
        let mut len = 2usize;
        while len <= n {
            let ang = -2.0 * std::f64::consts::PI / len as f64;
            for j in 0..len / 2 {
                tw.push(Complex::cis(ang * j as f64));
            }
            len <<= 1;
        }
        FftPlan {
            n,
            rev,
            tw,
            path: crate::simd::detect(),
        }
    }

    /// Force a specific SIMD path (clamped to what the host supports).
    /// Used by the equivalence tests and benches; [`FftPlan::new`]
    /// already picks the widest safe path.
    pub fn with_simd_path(mut self, path: crate::simd::SimdPath) -> FftPlan {
        self.path = path.clamp_to_host();
        self
    }

    /// The butterfly kernel family this plan dispatches to.
    pub fn simd_path(&self) -> crate::simd::SimdPath {
        self.path
    }

    /// Transform length this plan was built for.
    pub fn len(&self) -> usize {
        self.n
    }

    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Forward FFT (in place). `data.len()` must equal `self.len()`.
    pub fn forward(&self, data: &mut [Complex]) {
        self.process(data, false);
    }

    /// Inverse FFT (in place), normalized by `1/N`.
    pub fn inverse(&self, data: &mut [Complex]) {
        self.process(data, true);
    }

    fn process(&self, data: &mut [Complex], inverse: bool) {
        let n = self.n;
        assert_eq!(data.len(), n, "buffer length does not match plan");
        if n <= 1 {
            return;
        }
        for i in 1..n {
            let j = self.rev[i] as usize;
            if i < j {
                data.swap(i, j);
            }
        }
        let mut len = 2usize;
        let mut stage = 0usize;
        while len <= n {
            let half = len / 2;
            let tw = &self.tw[stage..stage + half];
            for chunk in data.chunks_mut(len) {
                let (lo, hi) = chunk.split_at_mut(half);
                crate::simd::stage_butterflies(self.path, lo, hi, tw, inverse);
            }
            stage += half;
            len <<= 1;
        }
        if inverse {
            let inv_n = 1.0 / n as f64;
            for x in data.iter_mut() {
                *x = x.scale(inv_n);
            }
        }
    }
}

/// 2D FFT of a square row-major grid through a prebuilt plan of length
/// `n` (rows, then columns via transpose).
pub fn fft2_with_plan(plan: &FftPlan, data: &mut [Complex], inverse: bool) {
    let n = plan.len();
    assert_eq!(data.len(), n * n);
    for row in data.chunks_mut(n) {
        plan.process(row, inverse);
    }
    transpose_square(data, n);
    for row in data.chunks_mut(n) {
        plan.process(row, inverse);
    }
    transpose_square(data, n);
}

/// Forward FFT (in place). `data.len()` must be a power of two.
pub fn fft(data: &mut [Complex]) {
    fft_inplace(data, false);
}

/// Inverse FFT (in place), normalized by `1/N`.
pub fn ifft(data: &mut [Complex]) {
    fft_inplace(data, true);
}

/// FFT of a real signal, zero-padded to `padded_len` (must be a power of two
/// and ≥ `signal.len()`).
pub fn rfft_padded(signal: &[f64], padded_len: usize) -> Vec<Complex> {
    assert!(padded_len >= signal.len());
    let mut buf = vec![Complex::ZERO; padded_len];
    for (b, &s) in buf.iter_mut().zip(signal.iter()) {
        *b = Complex::from_re(s);
    }
    fft(&mut buf);
    buf
}

/// 2D FFT of a square row-major grid, in place. `n` is the side length
/// (power of two). Transforms rows then columns.
pub fn fft2_inplace(data: &mut [Complex], n: usize, inverse: bool) {
    assert_eq!(data.len(), n * n);
    // rows
    for row in data.chunks_mut(n) {
        fft_inplace(row, inverse);
    }
    // columns via transpose-FFT-transpose
    transpose_square(data, n);
    for row in data.chunks_mut(n) {
        fft_inplace(row, inverse);
    }
    transpose_square(data, n);
}

/// In-place transpose of a square row-major matrix.
pub fn transpose_square(data: &mut [Complex], n: usize) {
    for i in 0..n {
        for j in (i + 1)..n {
            data.swap(i * n + j, j * n + i);
        }
    }
}

/// Cyclically shift a 1D complex buffer so index 0 moves to the center
/// (equivalent of `fftshift`).
pub fn fftshift(data: &mut [Complex]) {
    let n = data.len();
    data.rotate_left(n / 2);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut d = vec![Complex::ZERO; 8];
        d[0] = Complex::from_re(1.0);
        fft(&mut d);
        for c in &d {
            assert_close(c.re, 1.0, 1e-12);
            assert_close(c.im, 0.0, 1e-12);
        }
    }

    #[test]
    fn fft_of_constant_is_dc_spike() {
        let mut d = vec![Complex::from_re(2.5); 16];
        fft(&mut d);
        assert_close(d[0].re, 40.0, 1e-9);
        for c in &d[1..] {
            assert_close(c.abs(), 0.0, 1e-9);
        }
    }

    #[test]
    fn single_tone_lands_in_one_bin() {
        let n = 64;
        let k = 5;
        let mut d: Vec<Complex> = (0..n)
            .map(|i| {
                Complex::from_re(
                    (2.0 * std::f64::consts::PI * k as f64 * i as f64 / n as f64).cos(),
                )
            })
            .collect();
        fft(&mut d);
        // cosine splits energy between bins k and n-k
        assert_close(d[k].abs(), n as f64 / 2.0, 1e-9);
        assert_close(d[n - k].abs(), n as f64 / 2.0, 1e-9);
        for (i, c) in d.iter().enumerate() {
            if i != k && i != n - k {
                assert_close(c.abs(), 0.0, 1e-8);
            }
        }
    }

    #[test]
    fn roundtrip_restores_signal() {
        let n = 128;
        let orig: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.7).sin(), (i as f64 * 0.3).cos()))
            .collect();
        let mut d = orig.clone();
        fft(&mut d);
        ifft(&mut d);
        for (a, b) in d.iter().zip(orig.iter()) {
            assert_close(a.re, b.re, 1e-10);
            assert_close(a.im, b.im, 1e-10);
        }
    }

    #[test]
    fn parseval_energy_conserved() {
        let n = 256;
        let sig: Vec<Complex> = (0..n)
            .map(|i| Complex::from_re(((i * 37 % 17) as f64) - 8.0))
            .collect();
        let time_energy: f64 = sig.iter().map(|c| c.norm_sq()).sum();
        let mut d = sig;
        fft(&mut d);
        let freq_energy: f64 = d.iter().map(|c| c.norm_sq()).sum::<f64>() / n as f64;
        assert_close(time_energy, freq_energy, 1e-6);
    }

    #[test]
    fn fft2_roundtrip() {
        let n = 16;
        let orig: Vec<Complex> = (0..n * n)
            .map(|i| Complex::new((i as f64 * 0.11).sin(), (i as f64 * 0.05).cos()))
            .collect();
        let mut d = orig.clone();
        fft2_inplace(&mut d, n, false);
        fft2_inplace(&mut d, n, true);
        for (a, b) in d.iter().zip(orig.iter()) {
            assert_close(a.re, b.re, 1e-9);
            assert_close(a.im, b.im, 1e-9);
        }
    }

    #[test]
    fn next_pow2_rounds_up() {
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(2), 2);
        assert_eq!(next_pow2(3), 4);
        assert_eq!(next_pow2(1000), 1024);
        assert_eq!(next_pow2(1024), 1024);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_size_panics() {
        let mut d = vec![Complex::ZERO; 12];
        fft(&mut d);
    }

    #[test]
    fn rfft_padded_matches_direct() {
        let sig = [1.0, -2.0, 3.0];
        let spec = rfft_padded(&sig, 8);
        // DC bin equals the sum
        assert_close(spec[0].re, 2.0, 1e-12);
        assert_close(spec[0].im, 0.0, 1e-12);
        // real input => Hermitian spectrum
        for k in 1..4 {
            let a = spec[k];
            let b = spec[8 - k].conj();
            assert_close(a.re, b.re, 1e-12);
            assert_close(a.im, b.im, 1e-12);
        }
    }

    #[test]
    fn plan_matches_free_functions() {
        for n in [1usize, 2, 8, 64, 256] {
            let plan = FftPlan::new(n);
            let orig: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.13).sin(), (i as f64 * 0.41).cos()))
                .collect();
            let mut a = orig.clone();
            let mut b = orig.clone();
            fft(&mut a);
            plan.forward(&mut b);
            for (x, y) in a.iter().zip(b.iter()) {
                assert_close(x.re, y.re, 1e-9);
                assert_close(x.im, y.im, 1e-9);
            }
            ifft(&mut a);
            plan.inverse(&mut b);
            for (x, y) in b.iter().zip(orig.iter()) {
                assert_close(x.re, y.re, 1e-9);
                assert_close(x.im, y.im, 1e-9);
            }
            let _ = a;
        }
    }

    #[test]
    fn fft2_with_plan_matches_inplace() {
        let n = 16;
        let plan = FftPlan::new(n);
        let orig: Vec<Complex> = (0..n * n)
            .map(|i| Complex::new((i as f64 * 0.07).sin(), (i as f64 * 0.03).cos()))
            .collect();
        let mut a = orig.clone();
        let mut b = orig;
        fft2_inplace(&mut a, n, true);
        fft2_with_plan(&plan, &mut b, true);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_close(x.re, y.re, 1e-9);
            assert_close(x.im, y.im, 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn plan_rejects_non_pow2() {
        FftPlan::new(12);
    }

    #[test]
    fn simd_plan_is_bit_identical_to_scalar_plan() {
        use crate::simd::SimdPath;
        for n in [2usize, 4, 16, 128, 1024] {
            let scalar = FftPlan::new(n).with_simd_path(SimdPath::Scalar);
            let wide = FftPlan::new(n).with_simd_path(SimdPath::Avx2);
            let orig: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.29).sin(), (i as f64 * 0.61).cos()))
                .collect();
            let mut a = orig.clone();
            let mut b = orig;
            scalar.forward(&mut a);
            wide.forward(&mut b);
            assert_eq!(a, b, "forward n={n} diverged across SIMD paths");
            scalar.inverse(&mut a);
            wide.inverse(&mut b);
            assert_eq!(a, b, "inverse n={n} diverged across SIMD paths");
        }
    }

    #[test]
    fn fftshift_centers_zero_bin() {
        let mut d: Vec<Complex> = (0..8).map(|i| Complex::from_re(i as f64)).collect();
        fftshift(&mut d);
        assert_eq!(d[0].re, 4.0);
        assert_eq!(d[4].re, 0.0);
    }
}
