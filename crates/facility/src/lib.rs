//! Pluggable facility controllers and the cost-aware N-way router.
//!
//! The paper's workflows treat each HPC site as an interchangeable
//! reconstruction backend behind site-specific plumbing: NERSC via
//! SFAPI/Slurm, ALCF via Globus Compute, OLCF via a Slurm-like batch
//! system with a very different queue personality. [`FacilityController`]
//! is that seam: the campaign simulation talks to every site through one
//! trait, and the [`router::Router`] decides *which* site a branch runs
//! at — scoring all healthy facilities by queue depth × estimated
//! transfer time × circuit state, and re-routing a branch more than once
//! as outages roll across the fleet.
//!
//! Operation handles are facility-qualified: the raw Slurm/Compute id is
//! tagged with the facility in the high bits (see [`Facility::encode_op`])
//! so a single `op -> branch` map in the orchestrator can address three
//! independent id spaces without collision, and recovery can route a
//! journalled handle back to the right site.

pub mod controllers;
pub mod router;

use als_hpc::Qos;
use als_netsim::SiteId;
use als_orchestrator::{ExternalKind, OpFate};
use als_simcore::{SimDuration, SimInstant};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

pub use controllers::{AlcfController, NerscController, OlcfController};
pub use router::{CandidateView, RouteDecision, Router, RouterConfig, RouterMode};

/// Job-name prefix shared by all reconstruction work across facilities.
/// Orphan adoption and orphan cancellation key off it.
pub const RECON_PREFIX: &str = "recon_";

/// Job-name prefix for router health-probe jobs. Probes must never be
/// adopted as reconstruction work nor reaped as orphans.
pub const PROBE_PREFIX: &str = "probe_";

/// The facilities in the fleet, in router preference order for ties.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Facility {
    /// NERSC Perlmutter via the Superfacility API (realtime QOS).
    Nersc,
    /// ALCF Polaris via Globus Compute (demand-queue endpoint).
    Alcf,
    /// OLCF Frontier via batch Slurm (long queue holds, batch QOS).
    Olcf,
}

impl Facility {
    pub const ALL: [Facility; 3] = [Facility::Nersc, Facility::Alcf, Facility::Olcf];

    /// Stable small integer key (used in `OpCtx` labels and op encoding).
    pub fn key(self) -> u8 {
        match self {
            Facility::Nersc => 0,
            Facility::Alcf => 1,
            Facility::Olcf => 2,
        }
    }

    pub fn from_key(k: u8) -> Option<Facility> {
        match k {
            0 => Some(Facility::Nersc),
            1 => Some(Facility::Alcf),
            2 => Some(Facility::Olcf),
            _ => None,
        }
    }

    /// Lowercase name used in idempotency keys and flow parameters.
    pub fn name(self) -> &'static str {
        match self {
            Facility::Nersc => "nersc",
            Facility::Alcf => "alcf",
            Facility::Olcf => "olcf",
        }
    }

    pub fn from_name(s: &str) -> Option<Facility> {
        match s {
            "nersc" => Some(Facility::Nersc),
            "alcf" => Some(Facility::Alcf),
            "olcf" => Some(Facility::Olcf),
            _ => None,
        }
    }

    pub fn site(self) -> SiteId {
        match self {
            Facility::Nersc => SiteId::Nersc,
            Facility::Alcf => SiteId::Alcf,
            Facility::Olcf => SiteId::Olcf,
        }
    }

    /// Tag a raw facility-local operation id with this facility so ids
    /// from different facilities never collide in one namespace.
    pub fn encode_op(self, raw: u64) -> u64 {
        debug_assert!(raw < (1 << 48));
        ((self.key() as u64 + 1) << 48) | raw
    }

    /// Invert [`Facility::encode_op`].
    pub fn decode_op(op: u64) -> Option<(Facility, u64)> {
        let tag = (op >> 48) as u8;
        let fac = Facility::from_key(tag.checked_sub(1)?)?;
        Some((fac, op & ((1 << 48) - 1)))
    }
}

/// What kind of work a submission is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FacilityTask {
    /// Full tomographic reconstruction of one scan.
    Reconstruct,
    /// Multi-resolution pyramid build over a reconstructed volume.
    MultiResolution,
    /// Tiny router health probe (half-open breaker re-admission).
    Probe,
}

/// A work request, facility-agnostic. Controllers map it onto their own
/// scheduler personality (QOS downgrades, batch holds, endpoint modes).
#[derive(Debug, Clone)]
pub struct SubmitSpec {
    /// Display/journal name; reconstruction names must start with
    /// [`RECON_PREFIX`] and probes with [`PROBE_PREFIX`].
    pub name: String,
    pub task: FacilityTask,
    /// Actual service time once running (known to the simulation).
    pub runtime: SimDuration,
    /// Walltime limit requested from the scheduler.
    pub walltime: SimDuration,
    /// Requested QOS; controllers may downgrade (OLCF is batch-biased).
    pub qos: Qos,
    pub nodes: usize,
}

/// A successfully accepted operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Submission {
    /// Facility-qualified handle ([`Facility::encode_op`]).
    pub op: u64,
    /// When the orchestrator should give up and cancel the op if it has
    /// not resolved (walltime + slack, or runtime-derived for Compute).
    pub deadline: SimInstant,
}

/// Why a submission was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FacilityError {
    /// The facility rejected or immediately failed the request.
    Rejected(String),
}

impl std::fmt::Display for FacilityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FacilityError::Rejected(why) => write!(f, "submission rejected: {why}"),
        }
    }
}

/// Point-in-time facility health, the router's scoring input.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FacilityStatus {
    /// Whether the control plane would accept a submission right now.
    pub accepting: bool,
    /// Jobs/tasks waiting to start.
    pub queue_depth: usize,
    /// Jobs/tasks currently running.
    pub running: usize,
    pub free_nodes: usize,
    /// Personality-weighted estimate of queue wait for a new submission,
    /// in seconds. OLCF's batch bias shows up here.
    pub est_wait_s: f64,
}

/// A terminal state change for an operation at a facility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpEvent {
    /// Facility-qualified handle.
    pub op: u64,
    pub at: SimInstant,
    /// `true` iff the operation completed successfully.
    pub ok: bool,
}

/// Fault-plan actions a facility can be subjected to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FacilityFault {
    /// Scheduler/endpoint outage begins: stop accepting work and kill
    /// running reconstruction ops (returned as failure events).
    OutageStart,
    OutageEnd,
    /// Auth layer expires all tokens and refuses new ones (SFAPI only;
    /// a no-op for facilities without a token-auth control plane).
    AuthExpire,
    AuthRestore,
}

/// One HPC site the campaign can reconstruct at.
///
/// Controllers own the site's scheduler/endpoint state machine and
/// translate the trait's facility-agnostic verbs onto it. All `op`
/// handles crossing this boundary are facility-qualified.
pub trait FacilityController {
    fn facility(&self) -> Facility;

    fn site(&self) -> SiteId {
        self.facility().site()
    }

    /// Which journal ledger this facility's ops live in.
    fn external_kind(&self) -> ExternalKind;

    /// Task name recorded on the flow run for a submission here (e.g.
    /// `sfapi_slurm_job`, `globus_compute_recon`, `olcf_batch_job`).
    fn exec_task_name(&self) -> &'static str;

    /// Submit work. Controllers apply their scheduler personality (QOS
    /// bias, batch holds) before handing it to the backend.
    fn submit(&mut self, spec: &SubmitSpec, now: SimInstant) -> Result<Submission, FacilityError>;

    /// Submit a full reconstruction ([`FacilityTask::Reconstruct`]).
    fn reconstruct(
        &mut self,
        spec: &SubmitSpec,
        now: SimInstant,
    ) -> Result<Submission, FacilityError> {
        debug_assert_eq!(spec.task, FacilityTask::Reconstruct);
        self.submit(spec, now)
    }

    /// Submit a multi-resolution build ([`FacilityTask::MultiResolution`]).
    fn build_multi_resolution(
        &mut self,
        spec: &SubmitSpec,
        now: SimInstant,
    ) -> Result<Submission, FacilityError> {
        debug_assert_eq!(spec.task, FacilityTask::MultiResolution);
        self.submit(spec, now)
    }

    /// Cancel an operation; `true` if the facility accepted the cancel.
    fn cancel(&mut self, op: u64, now: SimInstant) -> bool;

    fn health(&self, now: SimInstant) -> FacilityStatus;

    /// Advance the backend clock to `now` and drain terminal events.
    fn poll(&mut self, now: SimInstant) -> Vec<OpEvent>;

    fn next_event_time(&self) -> Option<SimInstant>;

    /// What became of an op (for crash-recovery reconciliation).
    fn op_fate(&self, op: u64) -> OpFate;

    /// Reconstruction ops with their labels, as facility-qualified
    /// handles — including finished ones (backends retain terminal ops
    /// for fate queries). Recovery adopts these when the journal lost
    /// the submit; filter by [`FacilityController::op_fate`] for
    /// liveness.
    fn labeled_ops(&self) -> Vec<(u64, String)>;

    /// Cancel live reconstruction ops not in `known` (facility-qualified
    /// handles); returns how many were reaped. Probe jobs are exempt.
    fn cancel_orphans(&mut self, known: &BTreeSet<u64>, now: SimInstant) -> usize;

    /// Apply a fault-plan action; returns failure events for ops killed
    /// by the fault.
    fn inject(&mut self, fault: FacilityFault, now: SimInstant) -> Vec<OpEvent>;

    /// Site-local background load (other users' jobs). Only meaningful
    /// for facilities that model a shared batch system.
    fn submit_background(&mut self, _runtime: SimDuration, _nodes: usize, _now: SimInstant) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_encoding_round_trips_and_separates_facilities() {
        for fac in Facility::ALL {
            for raw in [0u64, 1, 7, 0xFFFF_FFFF] {
                let op = fac.encode_op(raw);
                assert_eq!(Facility::decode_op(op), Some((fac, raw)));
            }
        }
        // same raw id at different facilities must not collide
        assert_ne!(Facility::Nersc.encode_op(42), Facility::Olcf.encode_op(42));
        // untagged raw ids decode to nothing
        assert_eq!(Facility::decode_op(42), None);
    }

    #[test]
    fn facility_names_round_trip() {
        for fac in Facility::ALL {
            assert_eq!(Facility::from_name(fac.name()), Some(fac));
            assert_eq!(Facility::from_key(fac.key()), Some(fac));
        }
        assert_eq!(Facility::from_name("lcrc"), None);
    }
}
