//! Cost-aware N-way routing across the facility fleet.
//!
//! The router replaces the original one-shot NERSC↔ALCF failover: every
//! branch has a *home* facility, and when the home (or the current
//! execution site) fails, the router scores all admissible facilities by
//! `queue wait × estimated transfer time` and retargets the branch —
//! possibly more than once, so a branch degrades NERSC → ALCF → OLCF as
//! outages roll across the fleet.
//!
//! Admissibility is strict: a facility is only a candidate while its
//! circuit breaker is **Closed** and its heartbeat is fresh. Half-open
//! breakers are re-admitted through a dedicated probe job (see
//! [`Router::maybe_probe`]), never by risking a full campaign branch.
//! Re-routing history is epoch-guarded: a branch may return to a
//! facility it abandoned only after that facility has *recovered* (its
//! breaker closed again), which kills A→B→A ping-pong within one
//! health epoch while still allowing genuine fail-back.

use crate::Facility;
use als_hpc::{BreakerConfig, BreakerState, CircuitBreaker};
use als_orchestrator::RetryPolicy;
use als_simcore::{SimDuration, SimInstant};
use als_telemetry::{Counter, Histogram, Registry};
use std::collections::BTreeMap;

/// Routing policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouterMode {
    /// Legacy behaviour: a branch may fail over exactly once, to the
    /// "other" facility, gated only by `allow_request` (half-open
    /// breakers admit a full branch as the probe).
    OneShot,
    /// Score all healthy facilities and re-route as often as the hop
    /// budget allows; half-open facilities re-admit via probe jobs.
    CostAware,
}

#[derive(Debug, Clone, Copy)]
pub struct RouterConfig {
    pub mode: RouterMode,
    /// Maximum facilities a single branch may try (including its home).
    pub max_hops: usize,
    /// Per-facility breaker settings.
    pub breaker: BreakerConfig,
    /// Backoff schedule for repeated half-open probes of one facility.
    pub probe_retry: RetryPolicy,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            mode: RouterMode::CostAware,
            max_hops: 4,
            breaker: BreakerConfig::default(),
            probe_retry: RetryPolicy {
                max_attempts: 6,
                base_delay: SimDuration::from_secs(60),
                backoff: 2.0,
                jitter: 0.25,
            },
        }
    }
}

/// The router's per-candidate scoring input, assembled by the caller
/// from [`crate::FacilityController::health`] and the transfer service's
/// link-capacity estimate.
#[derive(Debug, Clone, Copy)]
pub struct CandidateView {
    pub facility: Facility,
    /// Personality-weighted queue-wait estimate, seconds.
    pub est_wait_s: f64,
    /// Estimated time to move the scan to this site, seconds
    /// (`f64::INFINITY` when unroutable).
    pub est_transfer_s: f64,
    /// True when the facility's heartbeat has gone stale.
    pub heartbeat_stale: bool,
}

impl CandidateView {
    /// The routing cost: queue pressure × data-movement pressure. Both
    /// terms are `1 +` so a zero on either axis cannot mask the other.
    pub fn cost(&self) -> f64 {
        (1.0 + self.est_wait_s.max(0.0)) * (1.0 + self.est_transfer_s.max(0.0))
    }
}

/// An entry in the router's audit log, recorded at every selection. The
/// breaker state and staleness are captured *at selection time* so
/// invariants ("never routed to an open or stale facility") are
/// checkable after the fact.
#[derive(Debug, Clone, Copy)]
pub struct RouteDecision {
    pub at: SimInstant,
    pub home: Facility,
    pub chosen: Facility,
    pub breaker_state: BreakerState,
    pub heartbeat_stale: bool,
    /// How many facilities the branch had already abandoned.
    pub hop: usize,
}

impl RouteDecision {
    /// Render the decision as a span-note value, so the audit log entry
    /// travels with the scan's trace (`key = "router"`).
    pub fn note_value(&self) -> String {
        format!(
            "home={} chosen={} breaker={:?} heartbeat_stale={} hop={}",
            self.home.name(),
            self.chosen.name(),
            self.breaker_state,
            self.heartbeat_stale,
            self.hop
        )
    }
}

/// Interned registry handles for the routing hot path.
#[derive(Debug, Clone)]
struct RouterMetrics {
    decisions: Counter,
    redirects: Counter,
    no_route: Counter,
    hops: Histogram,
    /// Selections per chosen facility, keyed by `Facility::key()`.
    chosen: [Counter; 3],
    /// Candidates rejected as inadmissible per facility (open breaker,
    /// stale heartbeat, unroutable, or epoch-blocked).
    inadmissible: [Counter; 3],
}

#[derive(Debug)]
struct FacEntry {
    breaker: CircuitBreaker,
    /// Bumped every time the breaker transitions back to Closed; the
    /// branch redirect history stores `(facility, recoveries)` pairs, so
    /// "already tried there" expires when the facility recovers.
    recoveries: u32,
    probe_attempts: u32,
    probe_inflight: bool,
    /// Earliest time the next probe may be issued (backoff pacing).
    next_probe_at: Option<SimInstant>,
}

/// Routing + breaker + probe state for the whole fleet.
#[derive(Debug)]
pub struct Router {
    cfg: RouterConfig,
    facs: BTreeMap<Facility, FacEntry>,
    decisions: Vec<RouteDecision>,
    metrics: Option<RouterMetrics>,
}

impl Router {
    pub fn new(cfg: RouterConfig, enabled: &[Facility]) -> Self {
        let facs = enabled
            .iter()
            .map(|&f| {
                (
                    f,
                    FacEntry {
                        breaker: CircuitBreaker::new(cfg.breaker),
                        recoveries: 0,
                        probe_attempts: 0,
                        probe_inflight: false,
                        next_probe_at: None,
                    },
                )
            })
            .collect();
        Router {
            cfg,
            facs,
            decisions: Vec::new(),
            metrics: None,
        }
    }

    /// Attach registry handles: decision/redirect/no-route counters, the
    /// hop-depth histogram, and per-facility chosen/inadmissible
    /// counters. Pre-attach decisions back-fill the audit counters.
    pub fn instrument(&mut self, registry: &Registry) {
        let fac = |name: &str, f: Facility| registry.counter(name, &[("facility", f.name())]);
        let m = RouterMetrics {
            decisions: registry.counter("router_decisions_total", &[]),
            redirects: registry.counter("router_redirects_total", &[]),
            no_route: registry.counter("router_no_route_total", &[]),
            hops: registry.histogram("router_hops", &[]),
            chosen: Facility::ALL.map(|f| fac("router_chosen_total", f)),
            inadmissible: Facility::ALL.map(|f| fac("router_inadmissible_total", f)),
        };
        for d in &self.decisions {
            m.decisions.inc();
            m.hops.record(d.hop as u64);
            if d.hop > 0 {
                m.redirects.inc();
            }
            m.chosen[d.chosen.key() as usize].inc();
        }
        self.metrics = Some(m);
    }

    fn note_inadmissible(&self, f: Facility) {
        if let Some(m) = &self.metrics {
            m.inadmissible[f.key() as usize].inc();
        }
    }

    pub fn mode(&self) -> RouterMode {
        self.cfg.mode
    }

    pub fn max_hops(&self) -> usize {
        self.cfg.max_hops
    }

    pub fn is_enabled(&self, f: Facility) -> bool {
        self.facs.contains_key(&f)
    }

    pub fn enabled_facilities(&self) -> Vec<Facility> {
        self.facs.keys().copied().collect()
    }

    /// The facility's breaker (panics on a facility the router does not
    /// manage — enable it at construction).
    pub fn breaker(&self, f: Facility) -> &CircuitBreaker {
        &self.facs[&f].breaker
    }

    pub fn breaker_mut(&mut self, f: Facility) -> &mut CircuitBreaker {
        &mut self.facs.get_mut(&f).expect("facility not enabled").breaker
    }

    /// How many times this facility's breaker has re-closed.
    pub fn recoveries(&self, f: Facility) -> u32 {
        self.facs[&f].recoveries
    }

    pub fn probe_inflight(&self, f: Facility) -> bool {
        self.facs[&f].probe_inflight
    }

    /// Record an operational success at `f`; a non-Closed breaker
    /// closing counts as a recovery (advances the re-route epoch).
    pub fn record_success(&mut self, f: Facility) {
        if let Some(e) = self.facs.get_mut(&f) {
            let was = e.breaker.state();
            e.breaker.record_success();
            if was != BreakerState::Closed {
                e.recoveries += 1;
            }
            e.probe_attempts = 0;
            e.next_probe_at = None;
        }
    }

    pub fn record_failure(&mut self, f: Facility, now: SimInstant) {
        if let Some(e) = self.facs.get_mut(&f) {
            e.breaker.record_failure(now);
        }
    }

    /// Trip the breaker (stale heartbeat). Returns `true` when this call
    /// transitioned it into Open (callers sweep stranded work once per
    /// transition, not once per health tick).
    pub fn force_open(&mut self, f: Facility, now: SimInstant) -> bool {
        match self.facs.get_mut(&f) {
            Some(e) => {
                let was_open = e.breaker.state() == BreakerState::Open;
                e.breaker.force_open(now);
                !was_open
            }
            None => false,
        }
    }

    /// Every routing decision ever made, in order.
    pub fn decisions(&self) -> &[RouteDecision] {
        &self.decisions
    }

    /// Pick an execution site for a branch.
    ///
    /// `visited` is the branch's redirect history as `(facility,
    /// recoveries-at-abandonment)` pairs; `candidates` must carry a view
    /// for every facility the caller wants considered (including the
    /// home). Returns `None` when no facility is admissible — the branch
    /// fails rather than being routed somewhere unhealthy.
    pub fn select(
        &mut self,
        home: Facility,
        visited: &[(Facility, u32)],
        candidates: &[CandidateView],
        now: SimInstant,
    ) -> Option<Facility> {
        for e in self.facs.values_mut() {
            e.breaker.tick(now);
        }
        let hop = visited.len();
        let chosen = match self.cfg.mode {
            RouterMode::OneShot => self.select_one_shot(home, hop, candidates, now),
            RouterMode::CostAware => self.select_cost_aware(home, visited, candidates),
        };
        let Some(chosen) = chosen else {
            if let Some(m) = &self.metrics {
                m.no_route.inc();
            }
            return None;
        };
        if let Some(m) = &self.metrics {
            m.decisions.inc();
            m.hops.record(hop as u64);
            if hop > 0 {
                m.redirects.inc();
            }
            m.chosen[chosen.key() as usize].inc();
        }
        let view = candidates
            .iter()
            .find(|c| c.facility == chosen)
            .copied()
            .unwrap_or(CandidateView {
                facility: chosen,
                est_wait_s: 0.0,
                est_transfer_s: 0.0,
                heartbeat_stale: false,
            });
        self.decisions.push(RouteDecision {
            at: now,
            home,
            chosen,
            breaker_state: self.facs[&chosen].breaker.state(),
            heartbeat_stale: view.heartbeat_stale,
            hop,
        });
        Some(chosen)
    }

    fn select_one_shot(
        &mut self,
        home: Facility,
        hop: usize,
        candidates: &[CandidateView],
        now: SimInstant,
    ) -> Option<Facility> {
        // legacy semantics: one redirect ever, gated by allow_request
        // (which admits one trial request through a half-open breaker)
        if hop >= 2 {
            return None;
        }
        if hop == 0 {
            if let Some(e) = self.facs.get_mut(&home) {
                if e.breaker.allow_request(now) {
                    return Some(home);
                }
            }
        }
        candidates
            .iter()
            .filter(|c| c.facility != home)
            .find(|c| {
                self.facs
                    .get_mut(&c.facility)
                    .is_some_and(|e| e.breaker.allow_request(now))
            })
            .map(|c| c.facility)
    }

    fn select_cost_aware(
        &mut self,
        home: Facility,
        visited: &[(Facility, u32)],
        candidates: &[CandidateView],
    ) -> Option<Facility> {
        if visited.len() >= self.cfg.max_hops {
            return None;
        }
        let admissible = |router: &Self, c: &CandidateView| {
            let Some(e) = router.facs.get(&c.facility) else {
                return false;
            };
            e.breaker.state() == BreakerState::Closed
                && !c.heartbeat_stale
                && c.est_transfer_s.is_finite()
                && !visited.contains(&(c.facility, e.recoveries))
        };
        // the home site wins outright while healthy: no data movement
        // beyond the normal ingest path, no provenance churn
        if let Some(c) = candidates.iter().find(|c| c.facility == home) {
            if admissible(self, c) {
                return Some(home);
            }
            self.note_inadmissible(home);
        }
        let mut best: Option<(f64, Facility)> = None;
        for c in candidates.iter().filter(|c| c.facility != home) {
            if !admissible(self, c) {
                self.note_inadmissible(c.facility);
                continue;
            }
            let cost = c.cost();
            if best.is_none_or(|(b, _)| cost < b) {
                best = Some((cost, c.facility));
            }
        }
        best.map(|(_, f)| f)
    }

    /// Should the caller launch a health-probe job at `f` now? True at
    /// most once per half-open window: the breaker's single trial slot
    /// is consumed by the probe, so campaign branches stay excluded
    /// until the probe succeeds.
    pub fn maybe_probe(&mut self, f: Facility, now: SimInstant, heartbeat_fresh: bool) -> bool {
        if self.cfg.mode == RouterMode::OneShot {
            return false;
        }
        let Some(e) = self.facs.get_mut(&f) else {
            return false;
        };
        e.breaker.tick(now);
        if e.probe_inflight || !heartbeat_fresh || e.breaker.state() != BreakerState::HalfOpen {
            return false;
        }
        if e.next_probe_at.is_some_and(|t| now < t) {
            return false;
        }
        if e.breaker.allow_request(now) {
            e.probe_inflight = true;
            true
        } else {
            false
        }
    }

    /// Resolve an outstanding probe. Success closes the breaker (and
    /// advances the recovery epoch); failure re-trips it and paces the
    /// next probe with jittered backoff so a flapping facility is not
    /// hammered.
    pub fn probe_resolved(&mut self, f: Facility, ok: bool, now: SimInstant, seed: u64) {
        if ok {
            if let Some(e) = self.facs.get_mut(&f) {
                e.probe_inflight = false;
            }
            self.record_success(f);
            return;
        }
        let cooldown = self.cfg.breaker.cooldown;
        if let Some(e) = self.facs.get_mut(&f) {
            e.probe_inflight = false;
            e.probe_attempts += 1;
            e.breaker.record_failure(now);
            let deadline = now + cooldown * 4;
            match self.cfg.probe_retry.delay_before_deadline(
                e.probe_attempts,
                seed ^ (f.key() as u64),
                now,
                deadline,
            ) {
                Some(d) => e.next_probe_at = Some(now + d),
                // schedule exhausted: reset so probing resumes on the
                // next half-open window rather than never
                None => {
                    e.probe_attempts = 0;
                    e.next_probe_at = None;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(f: Facility, wait: f64, xfer: f64) -> CandidateView {
        CandidateView {
            facility: f,
            est_wait_s: wait,
            est_transfer_s: xfer,
            heartbeat_stale: false,
        }
    }

    fn small_cfg(mode: RouterMode) -> RouterConfig {
        RouterConfig {
            mode,
            breaker: BreakerConfig {
                failure_threshold: 3,
                cooldown: SimDuration::from_secs(600),
            },
            ..RouterConfig::default()
        }
    }

    fn trip(r: &mut Router, f: Facility, now: SimInstant) {
        for _ in 0..3 {
            r.record_failure(f, now);
        }
        assert_eq!(r.breaker(f).state(), BreakerState::Open);
    }

    #[test]
    fn healthy_home_always_wins() {
        let mut r = Router::new(small_cfg(RouterMode::CostAware), &Facility::ALL);
        let cands = [
            view(Facility::Nersc, 5000.0, 10.0),
            view(Facility::Alcf, 60.0, 30.0),
            view(Facility::Olcf, 900.0, 33.0),
        ];
        // even with a deep queue, a healthy home is not abandoned
        assert_eq!(
            r.select(Facility::Nersc, &[], &cands, SimInstant::ZERO),
            Some(Facility::Nersc)
        );
    }

    #[test]
    fn cost_picks_cheapest_healthy_alternative() {
        let mut r = Router::new(small_cfg(RouterMode::CostAware), &Facility::ALL);
        let now = SimInstant::ZERO;
        trip(&mut r, Facility::Nersc, now);
        let cands = [
            view(Facility::Nersc, 60.0, 10.0),
            view(Facility::Alcf, 60.0, 30.0),
            view(Facility::Olcf, 900.0, 33.0),
        ];
        assert_eq!(
            r.select(Facility::Nersc, &[(Facility::Nersc, 0)], &cands, now),
            Some(Facility::Alcf)
        );
        // flip the economics: ALCF backed up far past OLCF's batch hold
        let cands = [
            view(Facility::Nersc, 60.0, 10.0),
            view(Facility::Alcf, 4000.0, 30.0),
            view(Facility::Olcf, 900.0, 33.0),
        ];
        assert_eq!(
            r.select(Facility::Nersc, &[(Facility::Nersc, 0)], &cands, now),
            Some(Facility::Olcf)
        );
    }

    #[test]
    fn never_selects_open_stale_or_unroutable_facilities() {
        let mut r = Router::new(small_cfg(RouterMode::CostAware), &Facility::ALL);
        let now = SimInstant::ZERO;
        trip(&mut r, Facility::Nersc, now);
        trip(&mut r, Facility::Alcf, now);
        let mut olcf = view(Facility::Olcf, 900.0, 33.0);
        olcf.heartbeat_stale = true;
        let cands = [
            view(Facility::Nersc, 0.0, 0.0),
            view(Facility::Alcf, 0.0, 0.0),
            olcf,
        ];
        assert_eq!(
            r.select(Facility::Nersc, &[(Facility::Nersc, 0)], &cands, now),
            None
        );
        // fresh heartbeat but unreachable over the network: still out
        let mut olcf = view(Facility::Olcf, 900.0, f64::INFINITY);
        olcf.heartbeat_stale = false;
        let cands = [
            view(Facility::Nersc, 0.0, 0.0),
            view(Facility::Alcf, 0.0, 0.0),
            olcf,
        ];
        assert_eq!(
            r.select(Facility::Nersc, &[(Facility::Nersc, 0)], &cands, now),
            None
        );
        for d in r.decisions() {
            assert_eq!(d.breaker_state, BreakerState::Closed);
            assert!(!d.heartbeat_stale);
        }
    }

    #[test]
    fn ping_pong_is_blocked_within_an_epoch_but_failback_works() {
        let mut r = Router::new(small_cfg(RouterMode::CostAware), &Facility::ALL);
        let now = SimInstant::ZERO;
        let cands = [
            view(Facility::Nersc, 60.0, 10.0),
            view(Facility::Alcf, 60.0, 30.0),
            view(Facility::Olcf, 900.0, 33.0),
        ];
        // branch abandoned NERSC (epoch 0) and then ALCF (epoch 0):
        // NERSC's breaker may have closed again via transient successes,
        // but within the same recovery epoch the branch must not bounce
        // back — it should degrade to OLCF instead.
        let visited = [(Facility::Nersc, 0), (Facility::Alcf, 0)];
        assert_eq!(
            r.select(Facility::Nersc, &visited, &cands, now),
            Some(Facility::Olcf)
        );
        // a real recovery advances the epoch and re-admits the facility
        trip(&mut r, Facility::Nersc, now);
        let later = now + SimDuration::from_secs(601);
        assert!(r.maybe_probe(Facility::Nersc, later, true));
        r.probe_resolved(Facility::Nersc, true, later, 7);
        assert_eq!(r.recoveries(Facility::Nersc), 1);
        assert_eq!(
            r.select(Facility::Nersc, &visited, &cands, later),
            Some(Facility::Nersc)
        );
    }

    #[test]
    fn hop_budget_bounds_rerouting() {
        let cfg = RouterConfig {
            max_hops: 2,
            ..small_cfg(RouterMode::CostAware)
        };
        let mut r = Router::new(cfg, &Facility::ALL);
        let cands = [
            view(Facility::Nersc, 0.0, 0.0),
            view(Facility::Alcf, 0.0, 0.0),
            view(Facility::Olcf, 0.0, 0.0),
        ];
        let visited = [(Facility::Nersc, 0), (Facility::Alcf, 0)];
        assert_eq!(
            r.select(Facility::Nersc, &visited, &cands, SimInstant::ZERO),
            None
        );
    }

    #[test]
    fn flap_sequence_readmits_via_single_probe_not_a_branch() {
        let mut r = Router::new(small_cfg(RouterMode::CostAware), &Facility::ALL);
        let t0 = SimInstant::ZERO;
        let cands = [
            view(Facility::Nersc, 60.0, 10.0),
            view(Facility::Alcf, 60.0, 30.0),
            view(Facility::Olcf, 900.0, 33.0),
        ];
        trip(&mut r, Facility::Nersc, t0);
        // open: branches route elsewhere, no probe yet
        assert!(!r.maybe_probe(Facility::Nersc, t0 + SimDuration::from_secs(30), true));
        assert_eq!(
            r.select(Facility::Nersc, &[(Facility::Nersc, 0)], &cands, t0),
            Some(Facility::Alcf)
        );
        // cooldown elapses → half-open. Campaign branches are STILL
        // excluded; only a probe may pass, and only one.
        let t1 = t0 + SimDuration::from_secs(601);
        // a stale heartbeat blocks probing even once half-open
        assert!(!r.maybe_probe(Facility::Nersc, t1, false));
        assert_eq!(r.breaker(Facility::Nersc).state(), BreakerState::HalfOpen);
        assert_eq!(
            r.select(Facility::Alcf, &[], &cands, t1),
            Some(Facility::Alcf),
            "half-open NERSC must not attract traffic"
        );
        assert!(r.maybe_probe(Facility::Nersc, t1, true));
        assert!(
            !r.maybe_probe(Facility::Nersc, t1, true),
            "one probe per window"
        );
        // the facility flaps: probe fails, breaker re-trips
        r.probe_resolved(Facility::Nersc, false, t1, 42);
        assert_eq!(r.breaker(Facility::Nersc).state(), BreakerState::Open);
        assert_eq!(r.recoveries(Facility::Nersc), 0);
        // next window: probe succeeds → closed, epoch advances, and the
        // fleet routes home again
        let t2 = t1 + SimDuration::from_secs(601);
        assert!(r.maybe_probe(Facility::Nersc, t2, true));
        r.probe_resolved(Facility::Nersc, true, t2, 42);
        assert_eq!(r.breaker(Facility::Nersc).state(), BreakerState::Closed);
        assert_eq!(r.recoveries(Facility::Nersc), 1);
        assert_eq!(
            r.select(Facility::Nersc, &[], &cands, t2),
            Some(Facility::Nersc)
        );
    }

    #[test]
    fn router_metrics_count_decisions_redirects_and_rejections() {
        let registry = als_telemetry::Registry::new();
        let mut r = Router::new(small_cfg(RouterMode::CostAware), &Facility::ALL);
        let now = SimInstant::ZERO;
        let cands = [
            view(Facility::Nersc, 60.0, 10.0),
            view(Facility::Alcf, 60.0, 30.0),
            view(Facility::Olcf, 900.0, 33.0),
        ];
        // one pre-attach decision back-fills the counters
        assert_eq!(
            r.select(Facility::Nersc, &[], &cands, now),
            Some(Facility::Nersc)
        );
        r.instrument(&registry);
        // redirect: NERSC down, branch hops to ALCF
        trip(&mut r, Facility::Nersc, now);
        assert_eq!(
            r.select(Facility::Nersc, &[(Facility::Nersc, 0)], &cands, now),
            Some(Facility::Alcf)
        );
        // every facility down or visited: no route
        trip(&mut r, Facility::Alcf, now);
        trip(&mut r, Facility::Olcf, now);
        assert_eq!(
            r.select(Facility::Nersc, &[(Facility::Nersc, 0)], &cands, now),
            None
        );
        let snap = registry.snapshot();
        assert_eq!(snap.counters["router_decisions_total"], 2);
        assert_eq!(snap.counters["router_redirects_total"], 1);
        assert_eq!(snap.counters["router_no_route_total"], 1);
        assert_eq!(snap.counters["router_chosen_total{facility=\"nersc\"}"], 1);
        assert_eq!(snap.counters["router_chosen_total{facility=\"alcf\"}"], 1);
        assert!(snap.counters["router_inadmissible_total{facility=\"nersc\"}"] >= 1);
        assert_eq!(snap.histograms["router_hops"].count, 2);
        assert_eq!(snap.histograms["router_hops"].max, Some(1));
        // the audit entry renders as a span note
        let d = r.decisions().last().unwrap();
        assert!(d.note_value().contains("chosen=alcf"));
        assert!(d.note_value().contains("hop=1"));
    }

    #[test]
    fn one_shot_mode_reproduces_legacy_failover() {
        let mut r = Router::new(
            small_cfg(RouterMode::OneShot),
            &[Facility::Nersc, Facility::Alcf],
        );
        let now = SimInstant::ZERO;
        let cands = [
            view(Facility::Nersc, 0.0, 0.0),
            view(Facility::Alcf, 0.0, 0.0),
        ];
        assert_eq!(
            r.select(Facility::Nersc, &[], &cands, now),
            Some(Facility::Nersc)
        );
        trip(&mut r, Facility::Nersc, now);
        // first failure redirects to the other facility...
        assert_eq!(
            r.select(Facility::Nersc, &[(Facility::Nersc, 0)], &cands, now),
            Some(Facility::Alcf)
        );
        // ...but a second redirect is never granted, even with a healthy
        // target available (the legacy single-failover contract)
        assert_eq!(
            r.select(
                Facility::Nersc,
                &[(Facility::Nersc, 0), (Facility::Alcf, 0)],
                &cands,
                now
            ),
            None
        );
        // and one-shot mode never runs probe jobs
        let t1 = now + SimDuration::from_secs(601);
        assert!(!r.maybe_probe(Facility::Nersc, t1, true));
    }
}
