//! Concrete facility backends: NERSC (SFAPI/Slurm, realtime-friendly),
//! OLCF (batch Slurm with long queue holds), ALCF (Globus Compute).

use crate::{
    Facility, FacilityController, FacilityError, FacilityFault, FacilityStatus, FacilityTask,
    OpEvent, Submission, SubmitSpec, RECON_PREFIX,
};
use als_globus::compute::AcquisitionMode;
use als_globus::{ComputeEndpoint, ComputeEvent, ComputeTaskId, ComputeTaskState};
use als_hpc::{JobEvent, JobId, JobRequest, JobState, Qos, SfApiClient, SfApiServer};
use als_orchestrator::{compute_fate, job_fate, ExternalKind, OpFate};
use als_simcore::{SimDuration, SimInstant};
use std::collections::BTreeSet;

/// Grace added to a Slurm walltime before the orchestrator declares the
/// op stranded and remote-cancels it.
const SLURM_DEADLINE_SLACK: SimDuration = SimDuration::from_secs(600);

/// OLCF batch-queue hold: Frontier's batch partition sits jobs in the
/// queue for on the order of fifteen minutes before dispatch even when
/// nodes are free (no realtime QOS across the fence).
pub const OLCF_BATCH_HOLD: SimDuration = SimDuration::from_secs(900);

/// Shared Slurm-over-SFAPI machinery for the two batch facilities.
#[derive(Debug)]
struct SlurmBackend {
    server: SfApiServer,
    client: SfApiClient,
    fac: Facility,
}

impl SlurmBackend {
    fn new(fac: Facility, nodes: usize, account: &str) -> Self {
        SlurmBackend {
            server: SfApiServer::new(nodes),
            client: SfApiClient::new(account),
            fac,
        }
    }

    fn submit(&mut self, req: JobRequest, now: SimInstant) -> Result<Submission, FacilityError> {
        let deadline = now + req.walltime_limit + SLURM_DEADLINE_SLACK;
        match self.client.submit(&mut self.server, req, now) {
            Ok((id, _events)) => Ok(Submission {
                op: self.fac.encode_op(id.0),
                deadline,
            }),
            Err(e) => Err(FacilityError::Rejected(format!("{e:?}"))),
        }
    }

    fn cancel(&mut self, op: u64, now: SimInstant) -> bool {
        let Some((fac, raw)) = Facility::decode_op(op) else {
            return false;
        };
        if fac != self.fac {
            return false;
        }
        self.client
            .cancel(&mut self.server, JobId(raw), now)
            .is_ok()
    }

    fn health(&self, base_wait_s: f64, per_pending_s: f64) -> FacilityStatus {
        let sched = self.server.scheduler();
        FacilityStatus {
            accepting: self.server.auth_available() && sched.offline_nodes() < sched.total_nodes(),
            queue_depth: sched.pending_count(),
            running: sched.running_count(),
            free_nodes: sched.free_nodes(),
            est_wait_s: base_wait_s + per_pending_s * sched.pending_count() as f64,
        }
    }

    fn poll(&mut self, now: SimInstant) -> Vec<OpEvent> {
        self.server
            .scheduler_mut()
            .advance_to(now)
            .into_iter()
            .filter_map(|e| match e {
                JobEvent::Finished { id, at, state } => Some(OpEvent {
                    op: self.fac.encode_op(id.0),
                    at,
                    ok: state == JobState::Completed,
                }),
                JobEvent::Started { .. } => None,
            })
            .collect()
    }

    fn op_fate(&self, op: u64) -> OpFate {
        match Facility::decode_op(op) {
            Some((fac, raw)) if fac == self.fac => job_fate(self.server.scheduler(), JobId(raw)),
            _ => OpFate::Lost,
        }
    }

    fn labeled_ops(&self) -> Vec<(u64, String)> {
        self.server
            .scheduler()
            .jobs_with_prefix(RECON_PREFIX)
            .into_iter()
            .map(|(id, name)| (self.fac.encode_op(id.0), name.to_string()))
            .collect()
    }

    fn cancel_orphans(&mut self, known: &BTreeSet<u64>, now: SimInstant) -> usize {
        let raw_known: BTreeSet<u64> = known
            .iter()
            .filter_map(|&op| Facility::decode_op(op))
            .filter(|(fac, _)| *fac == self.fac)
            .map(|(_, raw)| raw)
            .collect();
        als_orchestrator::cancel_orphan_jobs(
            self.server.scheduler_mut(),
            &raw_known,
            RECON_PREFIX,
            now,
        )
        .len()
    }

    fn inject(&mut self, fault: FacilityFault, now: SimInstant) -> Vec<OpEvent> {
        match fault {
            FacilityFault::OutageStart => {
                let total = self.server.scheduler().total_nodes();
                // drain the partition (running jobs keep nodes but the
                // outage kills reconstruction work below)
                let _ = self.server.scheduler_mut().set_offline(total, now);
                let doomed: Vec<JobId> = self
                    .server
                    .scheduler()
                    .live_jobs()
                    .into_iter()
                    .filter(|&id| {
                        self.server.scheduler().state(id) == Some(JobState::Running)
                            && self
                                .server
                                .scheduler()
                                .job_name(id)
                                .is_some_and(|n| n.starts_with(RECON_PREFIX))
                    })
                    .collect();
                let mut out = Vec::new();
                for id in doomed {
                    for e in self.server.scheduler_mut().fail(id, now) {
                        if let JobEvent::Finished { id, at, state } = e {
                            out.push(OpEvent {
                                op: self.fac.encode_op(id.0),
                                at,
                                ok: state == JobState::Completed,
                            });
                        }
                    }
                }
                out
            }
            FacilityFault::OutageEnd => {
                let _ = self.server.scheduler_mut().set_offline(0, now);
                Vec::new()
            }
            FacilityFault::AuthExpire => {
                self.server.set_auth_available(false);
                self.server.revoke_all_tokens();
                Vec::new()
            }
            FacilityFault::AuthRestore => {
                self.server.set_auth_available(true);
                Vec::new()
            }
        }
    }
}

/// NERSC Perlmutter behind the Superfacility API. Realtime QOS passes
/// through untouched; this is the fast, interactive home facility.
#[derive(Debug)]
pub struct NerscController {
    slurm: SlurmBackend,
}

impl NerscController {
    pub fn new(nodes: usize) -> Self {
        NerscController {
            slurm: SlurmBackend::new(Facility::Nersc, nodes, "als"),
        }
    }

    pub fn server(&self) -> &SfApiServer {
        &self.slurm.server
    }

    pub fn server_mut(&mut self) -> &mut SfApiServer {
        &mut self.slurm.server
    }
}

impl FacilityController for NerscController {
    fn facility(&self) -> Facility {
        Facility::Nersc
    }

    fn external_kind(&self) -> ExternalKind {
        ExternalKind::Job
    }

    fn exec_task_name(&self) -> &'static str {
        "sfapi_slurm_job"
    }

    fn submit(&mut self, spec: &SubmitSpec, now: SimInstant) -> Result<Submission, FacilityError> {
        self.slurm.submit(
            JobRequest {
                name: spec.name.clone(),
                qos: spec.qos,
                nodes: spec.nodes,
                runtime: spec.runtime,
                walltime_limit: spec.walltime,
            },
            now,
        )
    }

    fn cancel(&mut self, op: u64, now: SimInstant) -> bool {
        self.slurm.cancel(op, now)
    }

    fn health(&self, _now: SimInstant) -> FacilityStatus {
        // realtime QOS: short dispatch, modest per-job queue penalty
        self.slurm.health(60.0, 60.0)
    }

    fn poll(&mut self, now: SimInstant) -> Vec<OpEvent> {
        self.slurm.poll(now)
    }

    fn next_event_time(&self) -> Option<SimInstant> {
        self.slurm.server.scheduler().next_event_time()
    }

    fn op_fate(&self, op: u64) -> OpFate {
        self.slurm.op_fate(op)
    }

    fn labeled_ops(&self) -> Vec<(u64, String)> {
        self.slurm.labeled_ops()
    }

    fn cancel_orphans(&mut self, known: &BTreeSet<u64>, now: SimInstant) -> usize {
        self.slurm.cancel_orphans(known, now)
    }

    fn inject(&mut self, fault: FacilityFault, now: SimInstant) -> Vec<OpEvent> {
        self.slurm.inject(fault, now)
    }

    fn submit_background(&mut self, runtime: SimDuration, nodes: usize, now: SimInstant) {
        let req = JobRequest {
            name: "background".into(),
            qos: Qos::Regular,
            nodes,
            runtime,
            walltime_limit: runtime * 2.0,
        };
        let _ = self.slurm.server.scheduler_mut().submit(req, now);
    }
}

/// OLCF Frontier: a big batch partition with no realtime QOS. Capacity
/// is plentiful; what you pay is the queue hold. Every submission is
/// downgraded to batch QOS and carries [`OLCF_BATCH_HOLD`] of extra
/// latency before the payload runs.
#[derive(Debug)]
pub struct OlcfController {
    slurm: SlurmBackend,
}

impl OlcfController {
    pub fn new(nodes: usize) -> Self {
        OlcfController {
            slurm: SlurmBackend::new(Facility::Olcf, nodes, "als"),
        }
    }

    pub fn server(&self) -> &SfApiServer {
        &self.slurm.server
    }

    pub fn server_mut(&mut self) -> &mut SfApiServer {
        &mut self.slurm.server
    }
}

impl FacilityController for OlcfController {
    fn facility(&self) -> Facility {
        Facility::Olcf
    }

    fn external_kind(&self) -> ExternalKind {
        ExternalKind::Job
    }

    fn exec_task_name(&self) -> &'static str {
        "olcf_batch_job"
    }

    fn submit(&mut self, spec: &SubmitSpec, now: SimInstant) -> Result<Submission, FacilityError> {
        // batch personality: QOS downgrade plus the queue hold folded
        // into service time (and covered by the walltime)
        self.slurm.submit(
            JobRequest {
                name: spec.name.clone(),
                qos: Qos::Regular,
                nodes: spec.nodes,
                runtime: spec.runtime + OLCF_BATCH_HOLD,
                walltime_limit: spec.walltime + OLCF_BATCH_HOLD,
            },
            now,
        )
    }

    fn cancel(&mut self, op: u64, now: SimInstant) -> bool {
        self.slurm.cancel(op, now)
    }

    fn health(&self, _now: SimInstant) -> FacilityStatus {
        // batch bias: the hold dominates, and each queued job is another
        // long wait in front of you
        self.slurm.health(OLCF_BATCH_HOLD.as_secs_f64(), 120.0)
    }

    fn poll(&mut self, now: SimInstant) -> Vec<OpEvent> {
        self.slurm.poll(now)
    }

    fn next_event_time(&self) -> Option<SimInstant> {
        self.slurm.server.scheduler().next_event_time()
    }

    fn op_fate(&self, op: u64) -> OpFate {
        self.slurm.op_fate(op)
    }

    fn labeled_ops(&self) -> Vec<(u64, String)> {
        self.slurm.labeled_ops()
    }

    fn cancel_orphans(&mut self, known: &BTreeSet<u64>, now: SimInstant) -> usize {
        self.slurm.cancel_orphans(known, now)
    }

    fn inject(&mut self, fault: FacilityFault, now: SimInstant) -> Vec<OpEvent> {
        self.slurm.inject(fault, now)
    }
}

/// ALCF Polaris behind Globus Compute: serverless invocations on warm
/// pilot nodes with a demand queue — no batch hold, but a small pool.
#[derive(Debug)]
pub struct AlcfController {
    ep: ComputeEndpoint,
    max_nodes: usize,
}

impl AlcfController {
    pub fn new(mode: AcquisitionMode, max_nodes: usize) -> Self {
        AlcfController {
            ep: ComputeEndpoint::new(mode, max_nodes),
            max_nodes,
        }
    }

    pub fn endpoint(&self) -> &ComputeEndpoint {
        &self.ep
    }

    pub fn endpoint_mut(&mut self) -> &mut ComputeEndpoint {
        &mut self.ep
    }

    fn pending_count(&self) -> usize {
        self.ep
            .live_tasks()
            .iter()
            .filter(|&&id| self.ep.state(id) == Some(ComputeTaskState::Pending))
            .count()
    }
}

impl FacilityController for AlcfController {
    fn facility(&self) -> Facility {
        Facility::Alcf
    }

    fn external_kind(&self) -> ExternalKind {
        ExternalKind::Compute
    }

    fn exec_task_name(&self) -> &'static str {
        "globus_compute_recon"
    }

    fn submit(&mut self, spec: &SubmitSpec, now: SimInstant) -> Result<Submission, FacilityError> {
        let id = self
            .ep
            .invoke_labeled(spec.runtime, now, Some(spec.name.clone()));
        if self.ep.state(id) == Some(ComputeTaskState::Failed) {
            return Err(FacilityError::Rejected("endpoint is down".into()));
        }
        // no walltime on serverless invocations: strand detection allows
        // double the service time plus an hour of node-acquisition slack
        Ok(Submission {
            op: Facility::Alcf.encode_op(id.0),
            deadline: now + spec.runtime * 2 + SimDuration::from_secs(3600),
        })
    }

    fn cancel(&mut self, op: u64, now: SimInstant) -> bool {
        match Facility::decode_op(op) {
            Some((Facility::Alcf, raw)) => {
                self.ep.cancel(ComputeTaskId(raw), now);
                true
            }
            _ => false,
        }
    }

    fn health(&self, _now: SimInstant) -> FacilityStatus {
        let pending = self.pending_count();
        let running = self.ep.live_tasks().len() - pending;
        FacilityStatus {
            accepting: !self.ep.is_down(),
            queue_depth: pending,
            running,
            free_nodes: self.max_nodes.saturating_sub(running),
            // demand queue: ~a minute to a node, light per-task penalty
            est_wait_s: self.ep.mode().acquisition_latency().as_secs_f64() + 15.0 * pending as f64,
        }
    }

    fn poll(&mut self, now: SimInstant) -> Vec<OpEvent> {
        self.ep
            .advance_to(now)
            .into_iter()
            .filter_map(|e| match e {
                // only successful completions resolve here; failures are
                // surfaced by outage injection or strand deadlines (the
                // historical Globus Compute adapter behaviour)
                ComputeEvent::Finished { task, at } => Some(OpEvent {
                    op: Facility::Alcf.encode_op(task.0),
                    at,
                    ok: true,
                }),
                ComputeEvent::Started { .. } | ComputeEvent::Failed { .. } => None,
            })
            .collect()
    }

    fn next_event_time(&self) -> Option<SimInstant> {
        self.ep.next_event_time()
    }

    fn op_fate(&self, op: u64) -> OpFate {
        match Facility::decode_op(op) {
            Some((Facility::Alcf, raw)) => compute_fate(&self.ep, ComputeTaskId(raw)),
            _ => OpFate::Lost,
        }
    }

    fn labeled_ops(&self) -> Vec<(u64, String)> {
        self.ep
            .tasks_labeled()
            .into_iter()
            .filter(|(_, label, state)| {
                label.starts_with(RECON_PREFIX)
                    && matches!(state, ComputeTaskState::Pending | ComputeTaskState::Running)
            })
            .map(|(id, label, _)| (Facility::Alcf.encode_op(id.0), label.to_string()))
            .collect()
    }

    fn cancel_orphans(&mut self, known: &BTreeSet<u64>, now: SimInstant) -> usize {
        let orphans: Vec<ComputeTaskId> = self
            .ep
            .tasks_labeled()
            .into_iter()
            .filter(|(id, label, state)| {
                label.starts_with(RECON_PREFIX)
                    && matches!(state, ComputeTaskState::Pending | ComputeTaskState::Running)
                    && !known.contains(&Facility::Alcf.encode_op(id.0))
            })
            .map(|(id, _, _)| id)
            .collect();
        let n = orphans.len();
        for id in orphans {
            self.ep.cancel(id, now);
        }
        n
    }

    fn inject(&mut self, fault: FacilityFault, now: SimInstant) -> Vec<OpEvent> {
        match fault {
            FacilityFault::OutageStart => self
                .ep
                .set_down(true, now)
                .into_iter()
                .filter_map(|e| match e {
                    ComputeEvent::Failed { task, at } => Some(OpEvent {
                        op: Facility::Alcf.encode_op(task.0),
                        at,
                        ok: false,
                    }),
                    _ => None,
                })
                .collect(),
            FacilityFault::OutageEnd => {
                let _ = self.ep.set_down(false, now);
                Vec::new()
            }
            // Globus Compute has no token-expiry control plane here
            FacilityFault::AuthExpire | FacilityFault::AuthRestore => Vec::new(),
        }
    }
}

/// Convenience: is this spec a probe? Probes never count as
/// reconstruction work for adoption/orphan purposes.
pub fn is_probe(spec: &SubmitSpec) -> bool {
    spec.task == FacilityTask::Probe
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(name: &str, secs: u64) -> SubmitSpec {
        SubmitSpec {
            name: name.into(),
            task: FacilityTask::Reconstruct,
            runtime: SimDuration::from_secs(secs),
            walltime: SimDuration::from_secs(secs * 2 + 900),
            qos: Qos::Realtime,
            nodes: 2,
        }
    }

    #[test]
    fn nersc_submits_and_completes_through_the_trait() {
        let mut fac = NerscController::new(8);
        let now = SimInstant::ZERO;
        let sub = fac.reconstruct(&spec("recon_1|x", 100), now).unwrap();
        let (f, _) = Facility::decode_op(sub.op).unwrap();
        assert_eq!(f, Facility::Nersc);
        assert_eq!(fac.op_fate(sub.op), OpFate::Live);
        let evs = fac.poll(SimInstant::ZERO + SimDuration::from_secs(200));
        assert_eq!(evs.len(), 1);
        assert!(evs[0].ok);
        assert_eq!(evs[0].op, sub.op);
        assert_eq!(fac.op_fate(sub.op), OpFate::Completed);
    }

    #[test]
    fn olcf_personality_adds_batch_hold_and_downgrades_qos() {
        let mut nersc = NerscController::new(8);
        let mut olcf = OlcfController::new(8);
        let now = SimInstant::ZERO;
        let s = spec("recon_2|x", 100);
        let n = nersc.reconstruct(&s, now).unwrap();
        let o = olcf.reconstruct(&s, now).unwrap();
        // same work takes the batch hold longer at OLCF
        let n_done = {
            let evs = nersc.poll(now + SimDuration::from_secs(20_000));
            evs[0].at
        };
        let o_done = {
            let evs = olcf.poll(now + SimDuration::from_secs(20_000));
            evs[0].at
        };
        let delta = o_done.duration_since(n_done);
        assert_eq!(delta, OLCF_BATCH_HOLD);
        assert!(o.deadline > n.deadline);
        // and the advertised wait is batch-biased even when idle
        let idle_olcf = OlcfController::new(8);
        let idle_nersc = NerscController::new(8);
        assert!(idle_olcf.health(now).est_wait_s > idle_nersc.health(now).est_wait_s + 600.0);
    }

    #[test]
    fn outage_injection_kills_running_recon_but_not_probes() {
        let mut fac = OlcfController::new(8);
        let now = SimInstant::ZERO;
        let r = fac.reconstruct(&spec("recon_3|x", 5000), now).unwrap();
        let probe = fac
            .submit(
                &SubmitSpec {
                    name: "probe_olcf_1".into(),
                    task: FacilityTask::Probe,
                    runtime: SimDuration::from_secs(60),
                    walltime: SimDuration::from_secs(600),
                    qos: Qos::Debug,
                    nodes: 1,
                },
                now,
            )
            .unwrap();
        let t1 = now + SimDuration::from_secs(100);
        let _ = fac.poll(t1);
        let evs = fac.inject(FacilityFault::OutageStart, t1);
        assert_eq!(evs.len(), 1, "only the recon job dies");
        assert_eq!(evs[0].op, r.op);
        assert!(!evs[0].ok);
        // probe survives the injection sweep (it is already running and
        // keeps its node through the drain)
        assert_eq!(fac.op_fate(probe.op), OpFate::Live);
        assert!(!fac.health(t1).accepting);
        let _ = fac.inject(FacilityFault::OutageEnd, t1 + SimDuration::from_secs(60));
        assert!(fac.health(t1).accepting);
    }

    #[test]
    fn alcf_rejects_while_down_and_orphan_cancel_spares_known_ops() {
        let mut fac = AlcfController::new(AcquisitionMode::DemandQueue, 4);
        let now = SimInstant::ZERO;
        let a = fac.reconstruct(&spec("recon_4|x", 300), now).unwrap();
        let b = fac.reconstruct(&spec("recon_5|x", 300), now).unwrap();
        let known: BTreeSet<u64> = [a.op].into_iter().collect();
        assert_eq!(fac.cancel_orphans(&known, now), 1);
        assert_eq!(fac.op_fate(a.op), OpFate::Live);
        assert_eq!(fac.op_fate(b.op), OpFate::Failed);
        let _ = fac.inject(FacilityFault::OutageStart, now + SimDuration::from_secs(10));
        let err = fac.reconstruct(&spec("recon_6|x", 300), now + SimDuration::from_secs(20));
        assert!(err.is_err());
    }
}
