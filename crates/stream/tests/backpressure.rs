//! Property tests for the channel's drop accounting: however the bounded
//! queues are sized, however the publishes and drains interleave, every
//! published update is *exactly* accounted for at every subscriber —
//! `published = received + still-queued + dropped`. Nothing is silently
//! lost, nothing is double-counted.

use als_phantom::FrameMeta;
use als_stream::channel::{DeliveryMode, PvaServer, StreamMessage};
use als_stream::slab::FrameSlab;
use proptest::prelude::*;
use std::time::Duration;

fn frame(id: usize) -> StreamMessage {
    StreamMessage::Frame(FrameSlab::detached(
        FrameMeta {
            frame_id: id,
            angle_rad: 0.0,
            n_angles: 1 << 16,
            rows: 1,
            cols: 1,
        },
        vec![0; 1],
    ))
}

proptest! {
    /// Arbitrary lossy-subscriber capacities, arbitrary interleavings of
    /// publish and drain operations: the accounting identity holds for
    /// every subscriber at every point where we stop and check.
    #[test]
    fn drop_accounting_is_exact_for_lossy_subscribers(
        capacities in prop::collection::vec(1usize..20, 1..6),
        // op = (is_publish, subscriber_index, drain_count)
        ops in prop::collection::vec((0u8..4, 0usize..6, 1usize..8), 1..120),
    ) {
        let server = PvaServer::new();
        let subs: Vec<_> = capacities
            .iter()
            .map(|&c| server.subscribe_named("s", c, DeliveryMode::Lossy))
            .collect();
        let mut received = vec![0u64; subs.len()];
        let mut published = 0u64;
        for &(kind, sub_sel, drains) in &ops {
            if kind < 3 {
                // publish dominates: three publishes per drain op on
                // average, so queues actually overflow
                server.publish(frame(published as usize));
                published += 1;
            } else {
                let i = sub_sel % subs.len();
                for _ in 0..drains {
                    if subs[i].try_recv().is_some() {
                        received[i] += 1;
                    }
                }
            }
        }
        let mut total_dropped = 0;
        for (i, sub) in subs.iter().enumerate() {
            let queued = sub.len() as u64;
            let dropped = sub.dropped_count();
            prop_assert_eq!(
                published,
                received[i] + queued + dropped,
                "subscriber {} with capacity {}: {} published != {} received + {} queued + {} dropped",
                i, capacities[i], published, received[i], queued, dropped
            );
            total_dropped += dropped;
        }
        prop_assert_eq!(server.dropped_count(), total_dropped);
        prop_assert_eq!(server.published_count(), published);
    }

    /// A reliable subscriber with a concurrent drainer never drops,
    /// whatever the queue capacity: the publisher blocks instead. The
    /// accounting identity degenerates to `published = received`.
    #[test]
    fn reliable_delivery_never_drops_under_any_capacity(
        capacity in 1usize..16,
        n_publish in 1usize..64,
    ) {
        let mut server = PvaServer::new();
        server.set_reliable_wait(Duration::from_secs(30));
        let sub = server.subscribe_named("writer", capacity, DeliveryMode::Reliable);
        let publisher = {
            let server = std::sync::Arc::clone(&server);
            std::thread::spawn(move || {
                for i in 0..n_publish {
                    server.publish(frame(i));
                }
            })
        };
        let mut got = 0u64;
        while got < n_publish as u64 {
            if sub.recv_timeout(Duration::from_secs(10)).is_ok() {
                got += 1;
            } else {
                break;
            }
        }
        publisher.join().unwrap();
        prop_assert_eq!(got, n_publish as u64);
        prop_assert_eq!(sub.dropped_count(), 0);
        prop_assert_eq!(server.dropped_count(), 0);
    }
}
