//! The PVA channel mirror server (§4.2.1).
//!
//! The beamline's local storage server runs a mirror that subscribes to
//! the detector IOC's channel and republishes every update on its own
//! server, decoupling the IOC from downstream consumers (the file writer
//! and the optional NERSC streaming service). The mirror runs on its own
//! thread and forwards until the upstream goes quiet or it is stopped.

use crate::channel::{PvaServer, StreamMessage, Subscription};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A running channel mirror.
pub struct ChannelMirror {
    output: Arc<PvaServer>,
    forwarded: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl ChannelMirror {
    /// Spawn a mirror forwarding from `upstream` onto a new output server.
    /// `idle_timeout` bounds how long the mirror waits for the next
    /// upstream update before checking its stop flag again.
    pub fn spawn(upstream: Subscription, idle_timeout: Duration) -> ChannelMirror {
        Self::spawn_onto(upstream, PvaServer::new(), idle_timeout)
    }

    /// Spawn a mirror republishing onto a caller-built output server —
    /// e.g. one created with [`PvaServer::with_registry`] so the mirrored
    /// channel's fanout metrics export under its own channel label.
    pub fn spawn_onto(
        upstream: Subscription,
        output: Arc<PvaServer>,
        idle_timeout: Duration,
    ) -> ChannelMirror {
        let forwarded = Arc::new(AtomicU64::new(0));
        let stop = Arc::new(AtomicBool::new(false));
        let out2 = Arc::clone(&output);
        let fwd2 = Arc::clone(&forwarded);
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            while !stop2.load(Ordering::Relaxed) {
                match upstream.recv_timeout(idle_timeout) {
                    Ok(msg) => {
                        out2.publish(msg);
                        fwd2.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(crossbeam::channel::RecvTimeoutError::Timeout) => continue,
                    Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break,
                }
            }
        });
        ChannelMirror {
            output,
            forwarded,
            stop,
            handle: Some(handle),
        }
    }

    /// The republished channel downstream services subscribe to.
    pub fn output(&self) -> &Arc<PvaServer> {
        &self.output
    }

    /// Updates forwarded so far.
    pub fn forwarded_count(&self) -> u64 {
        self.forwarded.load(Ordering::Relaxed)
    }

    /// Stop the mirror and join its thread.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ChannelMirror {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Convenience: forward a scan message unchanged (identity transform the
/// mirror applies; exists so republishing policy changes have one place).
pub fn forward(msg: StreamMessage) -> StreamMessage {
    msg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slab::FrameSlab;
    use als_phantom::FrameMeta;

    fn frame(id: usize) -> StreamMessage {
        StreamMessage::Frame(FrameSlab::detached(
            FrameMeta {
                frame_id: id,
                angle_rad: 0.1,
                n_angles: 64,
                rows: 2,
                cols: 2,
            },
            vec![7; 4],
        ))
    }

    #[test]
    fn mirror_republishes_everything_in_order() {
        let ioc = PvaServer::new();
        let mirror = ChannelMirror::spawn(ioc.subscribe(256), Duration::from_millis(10));
        let downstream = mirror.output().subscribe(256);
        for i in 0..50 {
            ioc.publish(frame(i));
        }
        // wait for forwarding to finish
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while mirror.forwarded_count() < 50 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(mirror.forwarded_count(), 50);
        for i in 0..50 {
            match downstream.recv_timeout(Duration::from_millis(200)).unwrap() {
                StreamMessage::Frame(f) => assert_eq!(f.meta.frame_id, i),
                other => panic!("unexpected {other:?}"),
            }
        }
        mirror.stop();
    }

    #[test]
    fn mirror_fans_out_to_multiple_consumers() {
        let ioc = PvaServer::new();
        let mirror = ChannelMirror::spawn(ioc.subscribe(64), Duration::from_millis(10));
        let file_writer = mirror.output().subscribe(64);
        let streaming_svc = mirror.output().subscribe(64);
        ioc.publish(frame(0));
        let a = file_writer.recv_timeout(Duration::from_secs(1));
        let b = streaming_svc.recv_timeout(Duration::from_secs(1));
        assert!(a.is_ok() && b.is_ok());
        mirror.stop();
    }

    #[test]
    fn mirror_forwards_the_same_slab_zero_copy() {
        let ioc = PvaServer::new();
        let mirror = ChannelMirror::spawn(ioc.subscribe(8), Duration::from_millis(10));
        let downstream = mirror.output().subscribe(8);
        let original = FrameSlab::detached(
            FrameMeta {
                frame_id: 0,
                angle_rad: 0.1,
                n_angles: 64,
                rows: 2,
                cols: 2,
            },
            vec![7; 4],
        );
        ioc.publish(StreamMessage::Frame(Arc::clone(&original)));
        match downstream.recv_timeout(Duration::from_secs(1)).unwrap() {
            StreamMessage::Frame(f) => assert!(
                Arc::ptr_eq(&f, &original),
                "the mirror must forward the very same slab"
            ),
            other => panic!("unexpected {other:?}"),
        }
        mirror.stop();
    }

    #[test]
    fn stop_terminates_the_thread() {
        let ioc = PvaServer::new();
        let mirror = ChannelMirror::spawn(ioc.subscribe(8), Duration::from_millis(5));
        mirror.stop(); // must not hang
    }

    #[test]
    fn mirror_survives_upstream_disconnect() {
        let ioc = PvaServer::new();
        let sub = ioc.subscribe(8);
        drop(ioc); // upstream gone
        let mirror = ChannelMirror::spawn(sub, Duration::from_millis(5));
        std::thread::sleep(Duration::from_millis(30));
        mirror.stop(); // thread exited on disconnect; stop still clean
    }
}
