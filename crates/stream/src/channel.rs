//! PVA-style pub/sub channel with zero-copy handoff.
//!
//! One publisher, many monitor subscribers. Every message variant is a
//! cheap handle — frames are [`SlabFrame`]s, announcements and scan ids
//! are `Arc`s — so fanning a frame out to N subscribers bumps refcounts
//! and never copies pixels.
//!
//! Each subscriber owns a bounded queue and a [`DeliveryMode`]:
//!
//! * [`DeliveryMode::Lossy`] — PVA monitor semantics: when the queue is
//!   full the update is dropped *for that subscriber only* and counted.
//! * [`DeliveryMode::Reliable`] — must-deliver consumers (the file
//!   writer): the publisher blocks up to the channel's reliable-wait
//!   budget, propagating backpressure to the source; a frame abandoned
//!   after the budget is still counted, never silently lost.
//!
//! Per-subscriber drop counters and queue-depth gauges export through an
//! optional `als-telemetry` registry.

use crate::slab::SlabFrame;
use crate::ScanAnnounce;
use als_telemetry::{Counter, Gauge, Registry};
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Messages carried by the channel. `Clone` is refcount-only on every
/// variant: cloning a message never copies pixel data.
#[derive(Debug, Clone)]
pub enum StreamMessage {
    /// A scan is starting; payload describes the acquisition.
    ScanStart(Arc<ScanAnnounce>),
    /// One detector frame, backed by a pooled slab.
    Frame(SlabFrame),
    /// The acquisition finished.
    ScanEnd { scan_id: Arc<str> },
}

/// How the publisher treats a subscriber whose queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryMode {
    /// Drop the update for this subscriber and count it (PVA monitors).
    Lossy,
    /// Block the publisher up to the reliable-wait budget — backpressure
    /// into the source — before counting a drop.
    Reliable,
}

struct SubEntry {
    tx: Sender<StreamMessage>,
    mode: DeliveryMode,
    dropped: Arc<AtomicU64>,
    dropped_metric: Option<Counter>,
    depth_metric: Option<Gauge>,
}

/// The publisher side.
pub struct PvaServer {
    subs: Mutex<Vec<SubEntry>>,
    published: AtomicU64,
    dropped: AtomicU64,
    /// How long a publish may stall on one Reliable subscriber before the
    /// frame is abandoned (and counted) for it.
    reliable_wait: Duration,
    telemetry: Option<(Arc<Registry>, String)>,
    published_metric: Option<Counter>,
}

impl std::fmt::Debug for PvaServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PvaServer")
            .field("subscribers", &self.subs.lock().len())
            .field("published", &self.published_count())
            .field("dropped", &self.dropped_count())
            .finish()
    }
}

impl Default for PvaServer {
    fn default() -> Self {
        PvaServer {
            subs: Mutex::new(Vec::new()),
            published: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            reliable_wait: Duration::from_secs(30),
            telemetry: None,
            published_metric: None,
        }
    }
}

impl PvaServer {
    pub fn new() -> Arc<PvaServer> {
        Arc::new(PvaServer::default())
    }

    /// A server whose publish/drop/occupancy counters export through
    /// `registry` under the `channel` label.
    pub fn with_registry(channel: &str, registry: Arc<Registry>) -> Arc<PvaServer> {
        let published_metric =
            registry.counter("stream_frames_published_total", &[("channel", channel)]);
        Arc::new(PvaServer {
            telemetry: Some((registry, channel.to_string())),
            published_metric: Some(published_metric),
            ..PvaServer::default()
        })
    }

    /// Override the backpressure budget for Reliable subscribers.
    pub fn set_reliable_wait(self: &mut Arc<PvaServer>, wait: Duration) {
        Arc::get_mut(self)
            .expect("set_reliable_wait before sharing the server")
            .reliable_wait = wait;
    }

    /// Attach an anonymous lossy monitor with a queue of `capacity`
    /// updates (PVA monitor semantics, the historical default).
    pub fn subscribe(&self, capacity: usize) -> Subscription {
        self.subscribe_named("monitor", capacity, DeliveryMode::Lossy)
    }

    /// Attach a named subscriber with an explicit delivery mode. The name
    /// labels this subscriber's drop counter and queue-depth gauge.
    pub fn subscribe_named(&self, name: &str, capacity: usize, mode: DeliveryMode) -> Subscription {
        let (tx, rx) = bounded(capacity.max(1));
        let dropped = Arc::new(AtomicU64::new(0));
        let (dropped_metric, depth_metric) = match &self.telemetry {
            Some((registry, channel)) => (
                Some(registry.counter(
                    "stream_frames_dropped_total",
                    &[("channel", channel), ("subscriber", name)],
                )),
                Some(registry.gauge(
                    "stream_queue_depth",
                    &[("channel", channel), ("subscriber", name)],
                )),
            ),
            None => (None, None),
        };
        self.subs.lock().push(SubEntry {
            tx,
            mode,
            dropped: Arc::clone(&dropped),
            dropped_metric,
            depth_metric,
        });
        Subscription {
            rx,
            dropped,
            name: name.to_string(),
        }
    }

    /// Publish to every live subscriber. Lossy subscribers behind on
    /// their queue drop this update (counted per subscriber); Reliable
    /// subscribers stall the publisher — backpressure — up to the
    /// reliable-wait budget. Disconnected subscribers are pruned.
    pub fn publish(&self, msg: StreamMessage) {
        self.published.fetch_add(1, Ordering::Relaxed);
        if let Some(c) = &self.published_metric {
            c.inc();
        }
        let mut subs = self.subs.lock();
        let reliable_wait = self.reliable_wait;
        let server_dropped = &self.dropped;
        subs.retain(|entry| {
            let delivered = match entry.mode {
                DeliveryMode::Lossy => match entry.tx.try_send(msg.clone()) {
                    Ok(()) => Ok(true),
                    Err(crossbeam::channel::TrySendError::Full(_)) => Ok(false),
                    Err(crossbeam::channel::TrySendError::Disconnected(_)) => Err(()),
                },
                DeliveryMode::Reliable => match entry.tx.send_timeout(msg.clone(), reliable_wait) {
                    Ok(()) => Ok(true),
                    Err(crossbeam::channel::SendTimeoutError::Timeout(_)) => Ok(false),
                    Err(crossbeam::channel::SendTimeoutError::Disconnected(_)) => Err(()),
                },
            };
            match delivered {
                Ok(sent) => {
                    if !sent {
                        entry.dropped.fetch_add(1, Ordering::Relaxed);
                        server_dropped.fetch_add(1, Ordering::Relaxed);
                        if let Some(c) = &entry.dropped_metric {
                            c.inc();
                        }
                    }
                    if let Some(g) = &entry.depth_metric {
                        g.set(entry.tx.len() as i64);
                    }
                    true
                }
                Err(()) => false,
            }
        });
    }

    /// Updates published so far.
    pub fn published_count(&self) -> u64 {
        self.published.load(Ordering::Relaxed)
    }

    /// Updates dropped across all subscribers.
    pub fn dropped_count(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    pub fn subscriber_count(&self) -> usize {
        self.subs.lock().len()
    }
}

/// The monitor side.
#[derive(Debug)]
pub struct Subscription {
    rx: Receiver<StreamMessage>,
    dropped: Arc<AtomicU64>,
    name: String,
}

impl Subscription {
    /// Blocking receive with timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<StreamMessage, RecvTimeoutError> {
        self.rx.recv_timeout(timeout)
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<StreamMessage> {
        self.rx.try_recv().ok()
    }

    pub fn len(&self) -> usize {
        self.rx.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rx.is_empty()
    }

    /// Updates the publisher dropped for this subscriber because its
    /// queue was full (exact: published = received + queued + dropped).
    pub fn dropped_count(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// The name this subscriber registered under.
    pub fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slab::FrameSlab;
    use als_phantom::FrameMeta;

    fn frame(id: usize) -> StreamMessage {
        StreamMessage::Frame(FrameSlab::detached(
            FrameMeta {
                frame_id: id,
                angle_rad: 0.0,
                n_angles: 100,
                rows: 2,
                cols: 2,
            },
            vec![0; 4],
        ))
    }

    #[test]
    fn messages_arrive_in_order() {
        let server = PvaServer::new();
        let sub = server.subscribe(16);
        for i in 0..10 {
            server.publish(frame(i));
        }
        for i in 0..10 {
            match sub.try_recv().unwrap() {
                StreamMessage::Frame(f) => assert_eq!(f.meta.frame_id, i),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(sub.try_recv().is_none());
    }

    #[test]
    fn every_subscriber_shares_the_same_slab() {
        let server = PvaServer::new();
        let a = server.subscribe(8);
        let b = server.subscribe(8);
        server.publish(frame(0));
        let fa = match a.try_recv().unwrap() {
            StreamMessage::Frame(f) => f,
            other => panic!("unexpected {other:?}"),
        };
        let fb = match b.try_recv().unwrap() {
            StreamMessage::Frame(f) => f,
            other => panic!("unexpected {other:?}"),
        };
        assert!(
            Arc::ptr_eq(&fa, &fb),
            "fanout must hand every subscriber the same buffer"
        );
        assert_eq!(server.subscriber_count(), 2);
    }

    #[test]
    fn slow_subscriber_drops_but_does_not_block() {
        let server = PvaServer::new();
        let slow = server.subscribe(2);
        let fast = server.subscribe(100);
        for i in 0..10 {
            server.publish(frame(i));
        }
        // slow kept only the first two, fast all ten
        assert_eq!(slow.len(), 2);
        assert_eq!(fast.len(), 10);
        assert_eq!(slow.dropped_count(), 8);
        assert_eq!(fast.dropped_count(), 0);
        assert_eq!(server.dropped_count(), 8);
        assert_eq!(server.published_count(), 10);
    }

    #[test]
    fn reliable_subscriber_backpressures_the_publisher() {
        let mut server = PvaServer::new();
        server.set_reliable_wait(Duration::from_secs(10));
        let sub = server.subscribe_named("filewriter", 2, DeliveryMode::Reliable);
        let s2 = Arc::clone(&server);
        let publisher = std::thread::spawn(move || {
            for i in 0..8 {
                s2.publish(frame(i));
            }
        });
        // drain slowly: the publisher must wait, not drop
        let mut got = 0;
        while got < 8 {
            if let Ok(StreamMessage::Frame(f)) = sub.recv_timeout(Duration::from_secs(5)) {
                assert_eq!(f.meta.frame_id, got);
                got += 1;
            }
        }
        publisher.join().unwrap();
        assert_eq!(sub.dropped_count(), 0, "reliable consumer loses nothing");
        assert_eq!(server.dropped_count(), 0);
    }

    #[test]
    fn reliable_drop_after_budget_is_counted() {
        let mut server = PvaServer::new();
        server.set_reliable_wait(Duration::from_millis(10));
        let sub = server.subscribe_named("stuck", 1, DeliveryMode::Reliable);
        server.publish(frame(0));
        server.publish(frame(1)); // nobody drains: abandoned after 10 ms
        assert_eq!(sub.dropped_count(), 1);
        assert_eq!(server.dropped_count(), 1);
        assert_eq!(sub.len(), 1);
    }

    #[test]
    fn disconnected_subscribers_are_pruned() {
        let server = PvaServer::new();
        let sub = server.subscribe(4);
        drop(sub);
        server.publish(frame(0));
        assert_eq!(server.subscriber_count(), 0);
    }

    #[test]
    fn recv_timeout_expires_on_silence() {
        let server = PvaServer::new();
        let sub = server.subscribe(4);
        let r = sub.recv_timeout(Duration::from_millis(20));
        assert!(r.is_err());
    }

    #[test]
    fn publish_from_thread_reaches_subscriber() {
        let server = PvaServer::new();
        let sub = server.subscribe(64);
        let s2 = Arc::clone(&server);
        let h = std::thread::spawn(move || {
            for i in 0..32 {
                s2.publish(frame(i));
            }
        });
        h.join().unwrap();
        let mut got = 0;
        while sub.try_recv().is_some() {
            got += 1;
        }
        assert_eq!(got, 32);
    }

    #[test]
    fn registry_sees_publishes_drops_and_depth() {
        let registry = Arc::new(Registry::new());
        let server = PvaServer::with_registry("ioc0", Arc::clone(&registry));
        let _slow = server.subscribe_named("preview", 2, DeliveryMode::Lossy);
        for i in 0..5 {
            server.publish(frame(i));
        }
        let snap = registry.snapshot();
        assert_eq!(
            snap.counters["stream_frames_published_total{channel=\"ioc0\"}"],
            5
        );
        assert_eq!(
            snap.counters["stream_frames_dropped_total{channel=\"ioc0\",subscriber=\"preview\"}"],
            3
        );
        assert_eq!(
            snap.gauges["stream_queue_depth{channel=\"ioc0\",subscriber=\"preview\"}"],
            2
        );
    }
}
