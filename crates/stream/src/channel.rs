//! PVA-style pub/sub channel.
//!
//! One publisher, many monitor subscribers. Each subscriber owns a bounded
//! queue; when a slow subscriber's queue is full the update is dropped for
//! that subscriber only (PVA monitor semantics) and counted, so tests can
//! assert on backpressure behaviour.

use crate::ScanAnnounce;
use als_phantom::Frame;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Messages carried by the channel.
#[derive(Debug, Clone)]
pub enum StreamMessage {
    /// A scan is starting; payload describes the acquisition.
    ScanStart(Arc<ScanAnnounce>),
    /// One detector frame.
    Frame(Arc<Frame>),
    /// The acquisition finished.
    ScanEnd { scan_id: String },
}

/// The publisher side.
#[derive(Debug, Default)]
pub struct PvaServer {
    subs: Mutex<Vec<Sender<StreamMessage>>>,
    published: AtomicU64,
    dropped: AtomicU64,
}

impl PvaServer {
    pub fn new() -> Arc<PvaServer> {
        Arc::new(PvaServer::default())
    }

    /// Attach a monitor with a queue of `capacity` updates.
    pub fn subscribe(&self, capacity: usize) -> Subscription {
        let (tx, rx) = bounded(capacity.max(1));
        self.subs.lock().push(tx);
        Subscription { rx }
    }

    /// Publish to every live subscriber; slow subscribers drop this
    /// update. Disconnected subscribers are pruned.
    pub fn publish(&self, msg: StreamMessage) {
        self.published.fetch_add(1, Ordering::Relaxed);
        let mut subs = self.subs.lock();
        subs.retain(|tx| match tx.try_send(msg.clone()) {
            Ok(()) => true,
            Err(crossbeam::channel::TrySendError::Full(_)) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                true
            }
            Err(crossbeam::channel::TrySendError::Disconnected(_)) => false,
        });
    }

    /// Updates published so far.
    pub fn published_count(&self) -> u64 {
        self.published.load(Ordering::Relaxed)
    }

    /// Updates dropped across all subscribers.
    pub fn dropped_count(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    pub fn subscriber_count(&self) -> usize {
        self.subs.lock().len()
    }
}

/// The monitor side.
#[derive(Debug)]
pub struct Subscription {
    rx: Receiver<StreamMessage>,
}

impl Subscription {
    /// Blocking receive with timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<StreamMessage, RecvTimeoutError> {
        self.rx.recv_timeout(timeout)
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<StreamMessage> {
        self.rx.try_recv().ok()
    }

    pub fn len(&self) -> usize {
        self.rx.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rx.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use als_phantom::FrameMeta;

    fn frame(id: usize) -> StreamMessage {
        StreamMessage::Frame(Arc::new(Frame {
            meta: FrameMeta {
                frame_id: id,
                angle_rad: 0.0,
                n_angles: 100,
                rows: 2,
                cols: 2,
            },
            data: vec![0; 4],
        }))
    }

    #[test]
    fn messages_arrive_in_order() {
        let server = PvaServer::new();
        let sub = server.subscribe(16);
        for i in 0..10 {
            server.publish(frame(i));
        }
        for i in 0..10 {
            match sub.try_recv().unwrap() {
                StreamMessage::Frame(f) => assert_eq!(f.meta.frame_id, i),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(sub.try_recv().is_none());
    }

    #[test]
    fn every_subscriber_gets_a_copy() {
        let server = PvaServer::new();
        let a = server.subscribe(8);
        let b = server.subscribe(8);
        server.publish(frame(0));
        assert!(a.try_recv().is_some());
        assert!(b.try_recv().is_some());
        assert_eq!(server.subscriber_count(), 2);
    }

    #[test]
    fn slow_subscriber_drops_but_does_not_block() {
        let server = PvaServer::new();
        let slow = server.subscribe(2);
        let fast = server.subscribe(100);
        for i in 0..10 {
            server.publish(frame(i));
        }
        // slow kept only the first two, fast all ten
        assert_eq!(slow.len(), 2);
        assert_eq!(fast.len(), 10);
        assert_eq!(server.dropped_count(), 8);
        assert_eq!(server.published_count(), 10);
    }

    #[test]
    fn disconnected_subscribers_are_pruned() {
        let server = PvaServer::new();
        let sub = server.subscribe(4);
        drop(sub);
        server.publish(frame(0));
        assert_eq!(server.subscriber_count(), 0);
    }

    #[test]
    fn recv_timeout_expires_on_silence() {
        let server = PvaServer::new();
        let sub = server.subscribe(4);
        let r = sub.recv_timeout(Duration::from_millis(20));
        assert!(r.is_err());
    }

    #[test]
    fn publish_from_thread_reaches_subscriber() {
        let server = PvaServer::new();
        let sub = server.subscribe(64);
        let s2 = Arc::clone(&server);
        let h = std::thread::spawn(move || {
            for i in 0..32 {
                s2.publish(frame(i));
            }
        });
        h.join().unwrap();
        let mut got = 0;
        while sub.try_recv().is_some() {
            got += 1;
        }
        assert_eq!(got, 32);
    }
}
