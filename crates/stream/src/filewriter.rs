//! The file-writing service (§4.2.1).
//!
//! Subscribes to the mirror, validates each frame's metadata, and — once
//! the acquisition completes — writes the scan container to the beamline
//! data directory and reports the finished file (the hook that triggers
//! the Prefect `new_file_832` flow in production).

use crate::channel::{StreamMessage, Subscription};
use crate::ScanAnnounce;
use als_phantom::Frame;
use als_scidata::ScanFile;
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Report for one completed acquisition.
#[derive(Debug, Clone)]
pub struct WrittenScan {
    pub scan_id: String,
    pub path: PathBuf,
    pub n_frames: usize,
    pub bytes: u64,
    /// Frames rejected by metadata validation.
    pub rejected_frames: usize,
}

/// Handle to a running file writer.
pub struct FileWriterHandle {
    completions: Receiver<WrittenScan>,
    rejected: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl FileWriterHandle {
    /// Wait for the next completed scan file.
    pub fn wait_completion(&self, timeout: Duration) -> Option<WrittenScan> {
        self.completions.recv_timeout(timeout).ok()
    }

    /// Total frames rejected by validation so far.
    pub fn rejected_count(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Stop the service and join its thread.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for FileWriterHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// The service itself.
pub struct FileWriterService;

impl FileWriterService {
    /// Spawn the writer consuming `sub`, writing finished scans into
    /// `out_dir`.
    pub fn spawn(sub: Subscription, out_dir: &Path) -> FileWriterHandle {
        let out_dir = out_dir.to_path_buf();
        let (tx, rx): (Sender<WrittenScan>, Receiver<WrittenScan>) = unbounded();
        let rejected = Arc::new(AtomicU64::new(0));
        let rejected2 = Arc::clone(&rejected);
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let mut current: Option<(Arc<ScanAnnounce>, Vec<Frame>, usize)> = None;
            while !stop2.load(Ordering::Relaxed) {
                let msg = match sub.recv_timeout(Duration::from_millis(20)) {
                    Ok(m) => m,
                    Err(crossbeam::channel::RecvTimeoutError::Timeout) => continue,
                    Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break,
                };
                match msg {
                    StreamMessage::ScanStart(announce) => {
                        current = Some((announce, Vec::new(), 0));
                    }
                    StreamMessage::Frame(frame) => {
                        if let Some((announce, frames, rejected_here)) = current.as_mut() {
                            // validate metadata before writing, as the
                            // production service does
                            let valid = frame.meta.validate().is_ok()
                                && frame.meta.rows == announce.rows
                                && frame.meta.cols == announce.cols
                                && frame.data.len() == announce.rows * announce.cols;
                            if valid {
                                frames.push((*frame).clone());
                            } else {
                                *rejected_here += 1;
                                rejected2.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                    StreamMessage::ScanEnd { scan_id } => {
                        if let Some((announce, frames, rejected_here)) = current.take() {
                            if frames.is_empty() {
                                continue;
                            }
                            let angles: Vec<f64> =
                                frames.iter().map(|f| f.meta.angle_rad).collect();
                            if let Ok(scan) = ScanFile::from_frames(
                                &scan_id,
                                &frames,
                                &announce.dark,
                                &announce.flat,
                                &angles,
                            ) {
                                std::fs::create_dir_all(&out_dir).ok();
                                let path = out_dir.join(format!("{scan_id}.sdf"));
                                if scan.save(&path).is_ok() {
                                    let _ = tx.send(WrittenScan {
                                        scan_id,
                                        path,
                                        n_frames: frames.len(),
                                        bytes: scan.nbytes(),
                                        rejected_frames: rejected_here,
                                    });
                                }
                            }
                        }
                    }
                }
            }
        });
        FileWriterHandle {
            completions: rx,
            rejected,
            stop,
            handle: Some(handle),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::PvaServer;
    use crate::publish_scan;
    use als_phantom::{shepp_logan_volume, DetectorConfig, FrameMeta, ScanSimulator};
    use als_tomo::Geometry;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("filewriter_{name}"));
        std::fs::remove_dir_all(&d).ok();
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn complete_scan_is_written_and_loadable() {
        let dir = tmpdir("write");
        let server = PvaServer::new();
        let writer = FileWriterService::spawn(server.subscribe(4096), &dir);
        let vol = shepp_logan_volume(32, 3);
        let geom = Geometry::parallel_180(16, 32);
        let mut sim = ScanSimulator::new(&vol, geom, DetectorConfig::default(), 3);
        publish_scan(
            &server,
            &mut sim,
            "scan_0001",
            DetectorConfig::default().mu_scale,
        );
        let written = writer
            .wait_completion(Duration::from_secs(5))
            .expect("scan written");
        assert_eq!(written.scan_id, "scan_0001");
        assert_eq!(written.n_frames, 16);
        assert_eq!(written.rejected_frames, 0);
        let loaded = ScanFile::load(&written.path).unwrap();
        assert_eq!(loaded.shape(), (16, 3, 32));
        writer.stop();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn malformed_frames_are_rejected_not_written() {
        let dir = tmpdir("reject");
        let server = PvaServer::new();
        let writer = FileWriterService::spawn(server.subscribe(1024), &dir);
        let announce = crate::ScanAnnounce {
            scan_id: "bad".into(),
            n_angles: 3,
            rows: 2,
            cols: 2,
            angles: vec![0.0, 0.1, 0.2],
            dark: vec![0; 4],
            flat: vec![100; 4],
            mu_scale: 0.04,
        };
        server.publish(StreamMessage::ScanStart(Arc::new(announce)));
        // one good frame, one with a NaN angle, one with wrong shape
        let good = Frame {
            meta: FrameMeta {
                frame_id: 0,
                angle_rad: 0.0,
                n_angles: 3,
                rows: 2,
                cols: 2,
            },
            data: vec![1; 4],
        };
        let nan_angle = Frame {
            meta: FrameMeta {
                frame_id: 1,
                angle_rad: f64::NAN,
                n_angles: 3,
                rows: 2,
                cols: 2,
            },
            data: vec![1; 4],
        };
        let wrong_shape = Frame {
            meta: FrameMeta {
                frame_id: 2,
                angle_rad: 0.2,
                n_angles: 3,
                rows: 4,
                cols: 4,
            },
            data: vec![1; 16],
        };
        for f in [good, nan_angle, wrong_shape] {
            server.publish(StreamMessage::Frame(Arc::new(f)));
        }
        server.publish(StreamMessage::ScanEnd {
            scan_id: "bad".into(),
        });
        let written = writer
            .wait_completion(Duration::from_secs(5))
            .expect("written");
        assert_eq!(written.n_frames, 1);
        assert_eq!(written.rejected_frames, 2);
        assert_eq!(writer.rejected_count(), 2);
        writer.stop();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn frames_without_scan_start_are_ignored() {
        let dir = tmpdir("orphan");
        let server = PvaServer::new();
        let writer = FileWriterService::spawn(server.subscribe(64), &dir);
        let f = Frame {
            meta: FrameMeta {
                frame_id: 0,
                angle_rad: 0.0,
                n_angles: 1,
                rows: 2,
                cols: 2,
            },
            data: vec![1; 4],
        };
        server.publish(StreamMessage::Frame(Arc::new(f)));
        server.publish(StreamMessage::ScanEnd {
            scan_id: "orphan".into(),
        });
        assert!(writer.wait_completion(Duration::from_millis(300)).is_none());
        writer.stop();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn consecutive_scans_produce_separate_files() {
        let dir = tmpdir("multi");
        let server = PvaServer::new();
        let writer = FileWriterService::spawn(server.subscribe(8192), &dir);
        let vol = shepp_logan_volume(32, 2);
        let geom = Geometry::parallel_180(8, 32);
        for i in 0..2 {
            let mut sim = ScanSimulator::new(&vol, geom.clone(), DetectorConfig::default(), i);
            publish_scan(&server, &mut sim, &format!("scan_{i:04}"), 0.04);
        }
        let w1 = writer.wait_completion(Duration::from_secs(5)).unwrap();
        let w2 = writer.wait_completion(Duration::from_secs(5)).unwrap();
        assert_ne!(w1.path, w2.path);
        writer.stop();
        std::fs::remove_dir_all(&dir).ok();
    }
}
