//! The file-writing service (§4.2.1).
//!
//! Subscribes to the mirror, validates each frame's metadata, and — once
//! the acquisition completes — writes the scan container to the beamline
//! data directory and reports the finished file (the hook that triggers
//! the Prefect `new_file_832` flow in production).
//!
//! The writer is zero-copy on the hot path: each validated frame's
//! pixels are appended straight out of the shared slab into the one
//! contiguous projection stack that becomes `/exchange/data`, and the
//! slab handle is released immediately (the buffer returns to its pool
//! mid-scan instead of being pinned until scan end). At completion the
//! stack is handed to [`ScanFile::from_raw_parts`] by value — no
//! per-frame `Frame` clone and no second whole-scan copy.

use crate::channel::{StreamMessage, Subscription};
use crate::ScanAnnounce;
use als_scidata::ScanFile;
use als_telemetry::Registry;
use crossbeam::channel::{bounded, Receiver, Sender};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Report for one completed acquisition.
#[derive(Debug, Clone)]
pub struct WrittenScan {
    pub scan_id: String,
    pub path: PathBuf,
    pub n_frames: usize,
    pub bytes: u64,
    /// Frames rejected by metadata validation.
    pub rejected_frames: usize,
}

/// Configuration for the writer service.
#[derive(Debug, Clone)]
pub struct FileWriterConfig {
    /// Bound of the completion-report queue (scans, not frames).
    pub completion_queue: usize,
    /// Label for this writer's metrics.
    pub stream: String,
    /// Metrics registry; `None` disables telemetry.
    pub registry: Option<Arc<Registry>>,
}

impl Default for FileWriterConfig {
    fn default() -> Self {
        FileWriterConfig {
            completion_queue: 64,
            stream: "stream0".to_string(),
            registry: None,
        }
    }
}

/// Handle to a running file writer.
pub struct FileWriterHandle {
    completions: Receiver<WrittenScan>,
    rejected: Arc<AtomicU64>,
    completions_dropped: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl FileWriterHandle {
    /// Wait for the next completed scan file.
    pub fn wait_completion(&self, timeout: Duration) -> Option<WrittenScan> {
        self.completions.recv_timeout(timeout).ok()
    }

    /// Total frames rejected by validation so far.
    pub fn rejected_count(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Completion reports abandoned because the bounded queue was full.
    pub fn completions_dropped(&self) -> u64 {
        self.completions_dropped.load(Ordering::Relaxed)
    }

    /// Stop the service and join its thread.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for FileWriterHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Pixels accumulated for the scan currently being received.
struct ScanInProgress {
    announce: Arc<ScanAnnounce>,
    /// The growing `/exchange/data` stack, appended frame by frame.
    stack: Vec<u16>,
    angles: Vec<f64>,
    rejected: usize,
}

/// The service itself.
pub struct FileWriterService;

impl FileWriterService {
    /// Spawn the writer consuming `sub`, writing finished scans into
    /// `out_dir`.
    pub fn spawn(sub: Subscription, out_dir: &Path) -> FileWriterHandle {
        Self::spawn_with(sub, out_dir, FileWriterConfig::default())
    }

    /// Spawn with an explicit completion-queue bound and telemetry.
    pub fn spawn_with(
        sub: Subscription,
        out_dir: &Path,
        cfg: FileWriterConfig,
    ) -> FileWriterHandle {
        let out_dir = out_dir.to_path_buf();
        let (tx, rx): (Sender<WrittenScan>, Receiver<WrittenScan>) =
            bounded(cfg.completion_queue.max(1));
        let rejected = Arc::new(AtomicU64::new(0));
        let rejected2 = Arc::clone(&rejected);
        let completions_dropped = Arc::new(AtomicU64::new(0));
        let completions_dropped2 = Arc::clone(&completions_dropped);
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let metrics = cfg.registry.as_ref().map(|r| {
            let l = &[("stream", cfg.stream.as_str())][..];
            (
                r.counter("stream_writer_rejected_total", l),
                r.counter("stream_scans_written_total", l),
                r.counter("stream_writer_completions_dropped_total", l),
            )
        });
        let handle = std::thread::spawn(move || {
            let mut current: Option<ScanInProgress> = None;
            while !stop2.load(Ordering::Relaxed) {
                let msg = match sub.recv_timeout(Duration::from_millis(20)) {
                    Ok(m) => m,
                    Err(crossbeam::channel::RecvTimeoutError::Timeout) => continue,
                    Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break,
                };
                match msg {
                    StreamMessage::ScanStart(announce) => {
                        let capacity = announce.n_angles * announce.rows * announce.cols;
                        current = Some(ScanInProgress {
                            stack: Vec::with_capacity(capacity),
                            angles: Vec::with_capacity(announce.n_angles),
                            announce,
                            rejected: 0,
                        });
                    }
                    StreamMessage::Frame(frame) => {
                        if let Some(scan) = current.as_mut() {
                            // validate metadata before writing, as the
                            // production service does
                            let a = &scan.announce;
                            let valid = frame.meta.validate().is_ok()
                                && frame.meta.rows == a.rows
                                && frame.meta.cols == a.cols
                                && frame.data().len() == a.rows * a.cols;
                            if valid {
                                scan.stack.extend_from_slice(frame.data());
                                scan.angles.push(frame.meta.angle_rad);
                            } else {
                                scan.rejected += 1;
                                rejected2.fetch_add(1, Ordering::Relaxed);
                                if let Some((rej, _, _)) = &metrics {
                                    rej.inc();
                                }
                            }
                        }
                        // `frame` drops here: the slab recycles mid-scan
                    }
                    StreamMessage::ScanEnd { scan_id } => {
                        let Some(scan) = current.take() else {
                            continue;
                        };
                        if scan.angles.is_empty() {
                            continue;
                        }
                        let n_frames = scan.angles.len();
                        if let Ok(file) = ScanFile::from_raw_parts(
                            &scan_id,
                            n_frames,
                            scan.announce.rows,
                            scan.announce.cols,
                            scan.stack,
                            &scan.announce.dark,
                            &scan.announce.flat,
                            &scan.angles,
                        ) {
                            std::fs::create_dir_all(&out_dir).ok();
                            let path = out_dir.join(format!("{scan_id}.sdf"));
                            if file.save(&path).is_ok() {
                                if let Some((_, written, _)) = &metrics {
                                    written.inc();
                                }
                                let report = WrittenScan {
                                    scan_id: scan_id.to_string(),
                                    path,
                                    n_frames,
                                    bytes: file.nbytes(),
                                    rejected_frames: scan.rejected,
                                };
                                if tx.try_send(report).is_err() {
                                    completions_dropped2.fetch_add(1, Ordering::Relaxed);
                                    if let Some((_, _, cd)) = &metrics {
                                        cd.inc();
                                    }
                                }
                            }
                        }
                    }
                }
            }
        });
        FileWriterHandle {
            completions: rx,
            rejected,
            completions_dropped,
            stop,
            handle: Some(handle),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::PvaServer;
    use crate::publish_scan;
    use crate::slab::FrameSlab;
    use als_phantom::{shepp_logan_volume, DetectorConfig, FrameMeta, ScanSimulator};
    use als_tomo::Geometry;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("filewriter_{name}"));
        std::fs::remove_dir_all(&d).ok();
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn complete_scan_is_written_and_loadable() {
        let dir = tmpdir("write");
        let server = PvaServer::new();
        let writer = FileWriterService::spawn(server.subscribe(4096), &dir);
        let vol = shepp_logan_volume(32, 3);
        let geom = Geometry::parallel_180(16, 32);
        let mut sim = ScanSimulator::new(&vol, geom, DetectorConfig::default(), 3);
        publish_scan(
            &server,
            &mut sim,
            "scan_0001",
            DetectorConfig::default().mu_scale,
        );
        let written = writer
            .wait_completion(Duration::from_secs(5))
            .expect("scan written");
        assert_eq!(written.scan_id, "scan_0001");
        assert_eq!(written.n_frames, 16);
        assert_eq!(written.rejected_frames, 0);
        let loaded = ScanFile::load(&written.path).unwrap();
        assert_eq!(loaded.shape(), (16, 3, 32));
        writer.stop();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn written_file_matches_simulator_frames_exactly() {
        let dir = tmpdir("exact");
        let server = PvaServer::new();
        let writer = FileWriterService::spawn(server.subscribe(4096), &dir);
        let vol = shepp_logan_volume(32, 2);
        let geom = Geometry::parallel_180(6, 32);
        let cfg = DetectorConfig {
            noise: false,
            ..Default::default()
        };
        let mut sim = ScanSimulator::new(&vol, geom.clone(), cfg, 9);
        let reference = ScanSimulator::new(&vol, geom, cfg, 9).all_frames();
        publish_scan(&server, &mut sim, "exact", cfg.mu_scale);
        let written = writer.wait_completion(Duration::from_secs(5)).unwrap();
        let loaded = ScanFile::load(&written.path).unwrap();
        for (a, f) in reference.iter().enumerate() {
            assert_eq!(
                loaded.frame_data(a),
                &f.data[..],
                "incremental append must be byte-identical at frame {a}"
            );
        }
        writer.stop();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn malformed_frames_are_rejected_not_written() {
        let dir = tmpdir("reject");
        let server = PvaServer::new();
        let writer = FileWriterService::spawn(server.subscribe(1024), &dir);
        let announce = crate::ScanAnnounce {
            scan_id: "bad".into(),
            n_angles: 3,
            rows: 2,
            cols: 2,
            angles: vec![0.0, 0.1, 0.2],
            dark: vec![0; 4],
            flat: vec![100; 4],
            mu_scale: 0.04,
        };
        server.publish(StreamMessage::ScanStart(Arc::new(announce)));
        // one good frame, one with a NaN angle, one with wrong shape
        let good = FrameSlab::detached(
            FrameMeta {
                frame_id: 0,
                angle_rad: 0.0,
                n_angles: 3,
                rows: 2,
                cols: 2,
            },
            vec![1; 4],
        );
        let nan_angle = FrameSlab::detached(
            FrameMeta {
                frame_id: 1,
                angle_rad: f64::NAN,
                n_angles: 3,
                rows: 2,
                cols: 2,
            },
            vec![1; 4],
        );
        let wrong_shape = FrameSlab::detached(
            FrameMeta {
                frame_id: 2,
                angle_rad: 0.2,
                n_angles: 3,
                rows: 4,
                cols: 4,
            },
            vec![1; 16],
        );
        for f in [good, nan_angle, wrong_shape] {
            server.publish(StreamMessage::Frame(f));
        }
        server.publish(StreamMessage::ScanEnd {
            scan_id: Arc::from("bad"),
        });
        let written = writer
            .wait_completion(Duration::from_secs(5))
            .expect("written");
        assert_eq!(written.n_frames, 1);
        assert_eq!(written.rejected_frames, 2);
        assert_eq!(writer.rejected_count(), 2);
        writer.stop();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn frames_without_scan_start_are_ignored() {
        let dir = tmpdir("orphan");
        let server = PvaServer::new();
        let writer = FileWriterService::spawn(server.subscribe(64), &dir);
        let f = FrameSlab::detached(
            FrameMeta {
                frame_id: 0,
                angle_rad: 0.0,
                n_angles: 1,
                rows: 2,
                cols: 2,
            },
            vec![1; 4],
        );
        server.publish(StreamMessage::Frame(f));
        server.publish(StreamMessage::ScanEnd {
            scan_id: Arc::from("orphan"),
        });
        assert!(writer.wait_completion(Duration::from_millis(300)).is_none());
        writer.stop();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn consecutive_scans_produce_separate_files() {
        let dir = tmpdir("multi");
        let server = PvaServer::new();
        let writer = FileWriterService::spawn(server.subscribe(8192), &dir);
        let vol = shepp_logan_volume(32, 2);
        let geom = Geometry::parallel_180(8, 32);
        for i in 0..2 {
            let mut sim = ScanSimulator::new(&vol, geom.clone(), DetectorConfig::default(), i);
            publish_scan(&server, &mut sim, &format!("scan_{i:04}"), 0.04);
        }
        let w1 = writer.wait_completion(Duration::from_secs(5)).unwrap();
        let w2 = writer.wait_completion(Duration::from_secs(5)).unwrap();
        assert_ne!(w1.path, w2.path);
        writer.stop();
        std::fs::remove_dir_all(&dir).ok();
    }
}
