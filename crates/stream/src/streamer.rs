//! The NERSC streaming reconstruction service (§4.2.3, the <10 s path).
//!
//! Connects to the beamline's PVA mirror, caches incoming frames in
//! memory (no filesystem hop — the whole point of the streaming branch),
//! and when the acquisition ends performs a back projection of the full
//! dataset and sends a three-slice preview back to the beamline over a
//! ZeroMQ-style reply channel. The measured wall times feed the S1
//! experiment (paper: 7–8 s reconstruction, <1 s preview return, <10 s
//! total at 1969×2160×2560 scale on 4 GPUs; here: laptop scale, same
//! code path, plus the calibrated model for paper-scale numbers).

use crate::channel::{StreamMessage, Subscription};
use crate::ScanAnnounce;
use als_phantom::Frame;
use als_tomo::{FbpConfig, Geometry, Image, RawPrepPlan, ReconPlan, Sinogram};
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration for the streaming service.
#[derive(Debug, Clone, Default)]
pub struct StreamerConfig {
    /// Reconstruction settings for the preview pass.
    pub fbp: FbpConfig,
}

/// The three orthogonal preview slices sent back to the beamline, plus
/// timing telemetry.
#[derive(Debug, Clone)]
pub struct Preview {
    pub scan_id: String,
    /// XY (axial), XZ and YZ slices through the volume center.
    pub slices: [Image; 3],
    /// Frames that were cached when the scan ended.
    pub cached_frames: usize,
    /// Wall-clock reconstruction time.
    pub recon_wall: Duration,
    /// Wall-clock preview serialization + send time.
    pub send_wall: Duration,
}

/// Receiving side of the ZeroMQ-style reply channel at the beamline.
pub struct PreviewChannel {
    rx: Receiver<Preview>,
}

impl PreviewChannel {
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Preview> {
        self.rx.recv_timeout(timeout).ok()
    }
}

/// Handle to the running service.
pub struct StreamingReconService {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl StreamingReconService {
    /// Launch the service consuming `sub`. Returns the service handle and
    /// the beamline-side preview channel.
    pub fn spawn(
        sub: Subscription,
        cfg: StreamerConfig,
    ) -> (StreamingReconService, PreviewChannel) {
        let (tx, rx): (Sender<Preview>, Receiver<Preview>) = unbounded();
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let mut current: Option<(Arc<ScanAnnounce>, Vec<Arc<Frame>>)> = None;
            while !stop2.load(Ordering::Relaxed) {
                let msg = match sub.recv_timeout(Duration::from_millis(20)) {
                    Ok(m) => m,
                    Err(crossbeam::channel::RecvTimeoutError::Timeout) => continue,
                    Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break,
                };
                match msg {
                    StreamMessage::ScanStart(announce) => {
                        // in-memory frame cache for this acquisition
                        current = Some((announce, Vec::new()));
                    }
                    StreamMessage::Frame(frame) => {
                        if let Some((_, cache)) = current.as_mut() {
                            cache.push(frame);
                        }
                    }
                    StreamMessage::ScanEnd { scan_id } => {
                        let Some((announce, cache)) = current.take() else {
                            continue;
                        };
                        if cache.is_empty() {
                            continue;
                        }
                        if let Some(preview) =
                            reconstruct_preview(&announce, &cache, &cfg, &scan_id)
                        {
                            let _ = tx.send(preview);
                        }
                    }
                }
            }
        });
        (
            StreamingReconService {
                stop,
                handle: Some(handle),
            },
            PreviewChannel { rx },
        )
    }

    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for StreamingReconService {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Reconstruct the cached acquisition and assemble the preview. Public so
/// benches can measure the same code path the service thread runs.
pub fn reconstruct_preview(
    announce: &ScanAnnounce,
    cache: &[Arc<Frame>],
    cfg: &StreamerConfig,
    scan_id: &str,
) -> Option<Preview> {
    let t_recon = Instant::now();
    let angles: Vec<f64> = cache.iter().map(|f| f.meta.angle_rad).collect();
    let geom = Geometry {
        angles,
        n_det: announce.cols,
        center: (announce.cols as f64 - 1.0) / 2.0,
    };
    // gather sinograms straight from the cached frames (no whole-scan
    // clone) with the fused prep plan: per-pixel dark levels and
    // denominators are hoisted once for all rows, and each row is one
    // contiguous read per frame
    let cols = announce.cols;
    let prep = RawPrepPlan::new(
        &announce.dark,
        &announce.flat,
        announce.rows,
        cols,
        announce.mu_scale,
        None,
    );
    let sinos: Vec<Sinogram> = (0..announce.rows)
        .map(|r| {
            let mut sino = Sinogram::zeros(cache.len(), cols);
            for (a, frame) in cache.iter().enumerate() {
                prep.prep_angle_row(r, &frame.data[r * cols..(r + 1) * cols], sino.row_mut(a));
            }
            sino
        })
        .collect();
    // one plan for the whole stack: the filter response, FFT tables and
    // trig tables are shared by every slice worker
    let plan = ReconPlan::new(&geom, &cfg.fbp).ok()?;
    let vol = plan.fbp_volume(&sinos).ok()?;
    let recon_wall = t_recon.elapsed();

    let t_send = Instant::now();
    let slices = [
        vol.slice_xy(vol.nz / 2),
        vol.slice_xz(vol.ny / 2),
        vol.slice_yz(vol.nx / 2),
    ];
    let send_wall = t_send.elapsed();
    Some(Preview {
        scan_id: scan_id.to_string(),
        slices,
        cached_frames: cache.len(),
        recon_wall,
        send_wall,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::PvaServer;
    use crate::publish_scan;
    use als_phantom::{shepp_logan_volume, DetectorConfig, ScanSimulator};
    use als_tomo::Geometry as TomoGeometry;

    #[test]
    fn preview_arrives_after_scan_end() {
        let server = PvaServer::new();
        let (svc, previews) =
            StreamingReconService::spawn(server.subscribe(8192), StreamerConfig::default());
        let vol = shepp_logan_volume(48, 4);
        let geom = TomoGeometry::parallel_180(40, 48);
        let cfg = DetectorConfig {
            noise: false,
            ..Default::default()
        };
        let mut sim = ScanSimulator::new(&vol, geom, cfg, 7);
        publish_scan(&server, &mut sim, "stream_scan", cfg.mu_scale);
        let p = previews
            .recv_timeout(Duration::from_secs(20))
            .expect("preview");
        assert_eq!(p.scan_id, "stream_scan");
        assert_eq!(p.cached_frames, 40);
        assert_eq!(p.slices[0].width, 48); // XY slice
        assert_eq!(p.slices[1].height, 4); // XZ slice spans nz
        assert!(p.recon_wall > Duration::ZERO);
        svc.stop();
    }

    #[test]
    fn preview_reconstruction_resembles_phantom() {
        let server = PvaServer::new();
        let (svc, previews) =
            StreamingReconService::spawn(server.subscribe(8192), StreamerConfig::default());
        let n = 48;
        let vol = shepp_logan_volume(n, 3);
        let geom = TomoGeometry::parallel_180(96, n);
        let cfg = DetectorConfig {
            noise: false,
            ..Default::default()
        };
        let mut sim = ScanSimulator::new(&vol, geom, cfg, 9);
        publish_scan(&server, &mut sim, "q", cfg.mu_scale);
        let p = previews
            .recv_timeout(Duration::from_secs(30))
            .expect("preview");
        // middle slice should correlate with the phantom's middle slice
        let truth = vol.slice_xy(1);
        let rec = &p.slices[0];
        let err = als_tomo::quality::mse_in_disk(&truth, rec).sqrt();
        assert!(err < 0.15, "preview rmse {err}");
        svc.stop();
    }

    #[test]
    fn scan_end_without_frames_sends_nothing() {
        let server = PvaServer::new();
        let (svc, previews) =
            StreamingReconService::spawn(server.subscribe(64), StreamerConfig::default());
        server.publish(StreamMessage::ScanEnd {
            scan_id: "ghost".into(),
        });
        assert!(previews.recv_timeout(Duration::from_millis(300)).is_none());
        svc.stop();
    }

    #[test]
    fn service_handles_back_to_back_scans() {
        let server = PvaServer::new();
        let (svc, previews) =
            StreamingReconService::spawn(server.subscribe(16384), StreamerConfig::default());
        let vol = shepp_logan_volume(32, 2);
        let geom = TomoGeometry::parallel_180(16, 32);
        for i in 0..3 {
            let cfg = DetectorConfig::default();
            let mut sim = ScanSimulator::new(&vol, geom.clone(), cfg, i);
            publish_scan(&server, &mut sim, &format!("s{i}"), cfg.mu_scale);
        }
        for i in 0..3 {
            let p = previews
                .recv_timeout(Duration::from_secs(20))
                .expect("preview");
            assert_eq!(p.scan_id, format!("s{i}"));
        }
        svc.stop();
    }
}
