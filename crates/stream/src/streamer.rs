//! The NERSC streaming reconstruction service (§4.2.3, the <10 s path).
//!
//! Connects to the beamline's PVA mirror and assembles sinograms
//! **incrementally**: every arriving frame's rows are dark/flat
//! normalized and −log converted straight out of the shared slab into the
//! per-row sinogram buffers, then the slab handle is released back to the
//! pool. When the acquisition ends the sinograms are already prepped, so
//! preview latency after scan end is reconstruction only — no re-reading
//! of a whole-acquisition frame cache.
//!
//! Reconstruction plans are shared through a [`PlanCache`]: N concurrent
//! detector streams with the same geometry multiplex onto one
//! [`ReconPlan`] (filter response, FFT tables, trig, clip intervals built
//! once), each stream keeping only its own scratch/sinogram state.
//!
//! Previews return over a *bounded* reply channel; a preview abandoned
//! because the beamline side is behind is counted, never silently lost.
//! Per-stream ingest/drop/latency metrics export through `als-telemetry`.

use crate::channel::{StreamMessage, Subscription};
use crate::slab::{FrameSlab, SlabFrame};
use crate::ScanAnnounce;
use als_telemetry::{Counter, Histogram, Registry};
use als_tomo::{FbpConfig, Geometry, Image, RawPrepPlan, ReconPlan, Sinogram, TomoError};
use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration for the streaming service.
#[derive(Debug, Clone)]
pub struct StreamerConfig {
    /// Reconstruction settings for the preview pass.
    pub fbp: FbpConfig,
    /// Bound of the preview reply queue (previews, not frames).
    pub preview_queue: usize,
    /// Label for this stream's metrics.
    pub stream: String,
    /// Metrics registry; `None` disables telemetry.
    pub registry: Option<Arc<Registry>>,
}

impl Default for StreamerConfig {
    fn default() -> Self {
        StreamerConfig {
            fbp: FbpConfig::default(),
            preview_queue: 8,
            stream: "stream0".to_string(),
            registry: None,
        }
    }
}

/// Cache of [`ReconPlan`]s keyed by exact geometry + FBP settings, shared
/// by every stream of a hub so N concurrent detectors reuse one plan.
#[derive(Debug, Default)]
pub struct PlanCache {
    plans: Mutex<HashMap<PlanKey, Arc<ReconPlan>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

#[derive(Debug, PartialEq, Eq, Hash)]
struct PlanKey {
    n_det: usize,
    center: u64,
    filter: u8,
    mask_disk: bool,
    /// Exact angle set (bit patterns): plans are only shared between
    /// streams whose acquisitions are bit-identical in geometry.
    angles: Vec<u64>,
}

impl PlanKey {
    fn new(geom: &Geometry, cfg: &FbpConfig) -> PlanKey {
        use als_tomo::FilterKind::*;
        PlanKey {
            n_det: geom.n_det,
            center: geom.center.to_bits(),
            filter: match cfg.filter {
                RamLak => 0,
                SheppLogan => 1,
                Cosine => 2,
                Hamming => 3,
                Hann => 4,
                Butterworth => 5,
                None => 6,
            },
            mask_disk: cfg.mask_disk,
            angles: geom.angles.iter().map(|a| a.to_bits()).collect(),
        }
    }
}

impl PlanCache {
    pub fn new() -> Arc<PlanCache> {
        Arc::new(PlanCache::default())
    }

    /// Fetch (or build and install) the plan for this exact geometry.
    pub fn get(&self, geom: &Geometry, cfg: &FbpConfig) -> Result<Arc<ReconPlan>, TomoError> {
        let key = PlanKey::new(geom, cfg);
        if let Some(plan) = self.plans.lock().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(plan));
        }
        // build outside the lock: plan construction is the expensive part
        let plan = Arc::new(ReconPlan::new(geom, cfg)?);
        let mut plans = self.plans.lock();
        let entry = plans.entry(key).or_insert_with(|| Arc::clone(&plan));
        if Arc::ptr_eq(entry, &plan) {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        Ok(Arc::clone(entry))
    }

    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    pub fn len(&self) -> usize {
        self.plans.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Incremental sinogram assembly for one in-flight acquisition: each
/// frame is prepped into the per-row sinograms on arrival and its slab
/// released, so scan end leaves nothing to do but reconstruct.
pub struct IncrementalScan {
    announce: Arc<ScanAnnounce>,
    prep: RawPrepPlan,
    /// One sinogram per detector row, rows filled in arrival order.
    sinos: Vec<Sinogram>,
    /// Projection angles in arrival order.
    angles: Vec<f64>,
    received: usize,
    rejected: usize,
}

impl IncrementalScan {
    pub fn new(announce: Arc<ScanAnnounce>) -> IncrementalScan {
        let capacity = announce.n_angles.max(1);
        let prep = RawPrepPlan::new(
            &announce.dark,
            &announce.flat,
            announce.rows,
            announce.cols,
            announce.mu_scale,
            None,
        );
        let sinos = (0..announce.rows)
            .map(|_| Sinogram::zeros(capacity, announce.cols))
            .collect();
        IncrementalScan {
            announce,
            prep,
            sinos,
            angles: Vec::with_capacity(capacity),
            received: 0,
            rejected: 0,
        }
    }

    /// Prep one frame's rows into the sinograms. Returns `false` (and
    /// counts a rejection) when the frame's shape disagrees with the
    /// announcement — a corrupted frame never poisons the assembly.
    pub fn ingest(&mut self, frame: &FrameSlab) -> bool {
        let a = &self.announce;
        let ok = frame.meta.validate().is_ok()
            && frame.meta.rows == a.rows
            && frame.meta.cols == a.cols
            && frame.data().len() == a.rows * a.cols;
        if !ok {
            self.rejected += 1;
            return false;
        }
        let cols = a.cols;
        let slot = self.received;
        if slot >= self.sinos.first().map_or(0, |s| s.n_angles) {
            // more frames than announced: grow every row buffer by one
            for sino in &mut self.sinos {
                sino.data.extend(std::iter::repeat_n(0.0, cols));
                sino.n_angles += 1;
            }
        }
        let data = frame.data();
        for (r, sino) in self.sinos.iter_mut().enumerate() {
            self.prep
                .prep_angle_row(r, &data[r * cols..(r + 1) * cols], sino.row_mut(slot));
        }
        self.angles.push(frame.meta.angle_rad);
        self.received += 1;
        true
    }

    /// Frames prepped so far.
    pub fn received(&self) -> usize {
        self.received
    }

    /// Frames rejected by shape/metadata validation so far.
    pub fn rejected(&self) -> usize {
        self.rejected
    }

    /// Finish the acquisition: truncate to the frames that arrived,
    /// reconstruct through the (shared) plan, and assemble the preview.
    pub fn finish(mut self, plans: &PlanCache, cfg: &FbpConfig, scan_id: &str) -> Option<Preview> {
        if self.received == 0 {
            return None;
        }
        let t_recon = Instant::now();
        let cols = self.announce.cols;
        for sino in &mut self.sinos {
            sino.data.truncate(self.received * cols);
            sino.n_angles = self.received;
        }
        let geom = Geometry {
            angles: self.angles,
            n_det: cols,
            center: (cols as f64 - 1.0) / 2.0,
        };
        let plan = plans.get(&geom, cfg).ok()?;
        let vol = plan.fbp_volume(&self.sinos).ok()?;
        let recon_wall = t_recon.elapsed();

        let t_send = Instant::now();
        let slices = [
            vol.slice_xy(vol.nz / 2),
            vol.slice_xz(vol.ny / 2),
            vol.slice_yz(vol.nx / 2),
        ];
        let send_wall = t_send.elapsed();
        Some(Preview {
            scan_id: scan_id.to_string(),
            slices,
            cached_frames: self.received,
            dropped_frames: self.announce.n_angles.saturating_sub(self.received),
            rejected_frames: self.rejected,
            recon_wall,
            send_wall,
            feedback_wall: recon_wall + send_wall,
        })
    }
}

/// The three orthogonal preview slices sent back to the beamline, plus
/// timing telemetry.
#[derive(Debug, Clone)]
pub struct Preview {
    pub scan_id: String,
    /// XY (axial), XZ and YZ slices through the volume center.
    pub slices: [Image; 3],
    /// Frames that were assembled when the scan ended.
    pub cached_frames: usize,
    /// Frames the announcement promised but that never arrived (dropped
    /// upstream or rejected).
    pub dropped_frames: usize,
    /// Frames rejected by shape/metadata validation.
    pub rejected_frames: usize,
    /// Wall-clock reconstruction time.
    pub recon_wall: Duration,
    /// Wall-clock preview serialization + send time.
    pub send_wall: Duration,
    /// Wall clock from scan end to preview ready — the paper's <10 s
    /// feedback figure. Recon-only because assembly happened in-stream.
    pub feedback_wall: Duration,
}

/// Receiving side of the ZeroMQ-style reply channel at the beamline.
pub struct PreviewChannel {
    rx: Receiver<Preview>,
    dropped: Arc<AtomicU64>,
}

impl PreviewChannel {
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Preview> {
        self.rx.recv_timeout(timeout).ok()
    }

    /// Previews abandoned because this channel's bounded queue was full.
    pub fn dropped_count(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

struct StreamMetrics {
    ingested: Counter,
    rejected: Counter,
    previews: Counter,
    previews_dropped: Counter,
    feedback_us: Histogram,
    recon_us: Histogram,
}

impl StreamMetrics {
    fn new(registry: &Registry, stream: &str) -> StreamMetrics {
        let l = &[("stream", stream)][..];
        StreamMetrics {
            ingested: registry.counter("stream_frames_ingested_total", l),
            rejected: registry.counter("stream_frames_rejected_total", l),
            previews: registry.counter("stream_previews_total", l),
            previews_dropped: registry.counter("stream_previews_dropped_total", l),
            feedback_us: registry.histogram("stream_preview_feedback_us", l),
            recon_us: registry.histogram("stream_preview_recon_us", l),
        }
    }
}

/// Handle to the running service.
pub struct StreamingReconService {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl StreamingReconService {
    /// Launch the service consuming `sub` with a private plan cache.
    pub fn spawn(
        sub: Subscription,
        cfg: StreamerConfig,
    ) -> (StreamingReconService, PreviewChannel) {
        Self::spawn_shared(sub, cfg, PlanCache::new())
    }

    /// Launch the service consuming `sub`, sharing `plans` with other
    /// streams (the multi-detector multiplexing path). Returns the
    /// service handle and the beamline-side preview channel.
    pub fn spawn_shared(
        sub: Subscription,
        cfg: StreamerConfig,
        plans: Arc<PlanCache>,
    ) -> (StreamingReconService, PreviewChannel) {
        let (tx, rx): (Sender<Preview>, Receiver<Preview>) = bounded(cfg.preview_queue.max(1));
        let dropped = Arc::new(AtomicU64::new(0));
        let dropped2 = Arc::clone(&dropped);
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let metrics = cfg
            .registry
            .as_ref()
            .map(|r| StreamMetrics::new(r, &cfg.stream));
        let handle = std::thread::spawn(move || {
            let mut current: Option<IncrementalScan> = None;
            while !stop2.load(Ordering::Relaxed) {
                let msg = match sub.recv_timeout(Duration::from_millis(20)) {
                    Ok(m) => m,
                    Err(crossbeam::channel::RecvTimeoutError::Timeout) => continue,
                    Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break,
                };
                match msg {
                    StreamMessage::ScanStart(announce) => {
                        current = Some(IncrementalScan::new(announce));
                    }
                    StreamMessage::Frame(frame) => {
                        if let Some(scan) = current.as_mut() {
                            let ok = scan.ingest(&frame);
                            if let Some(m) = &metrics {
                                if ok {
                                    m.ingested.inc();
                                } else {
                                    m.rejected.inc();
                                }
                            }
                        }
                        // `frame` drops here: slab returns to its pool
                    }
                    StreamMessage::ScanEnd { scan_id } => {
                        let Some(scan) = current.take() else {
                            continue;
                        };
                        let t_end = Instant::now();
                        if let Some(preview) = scan.finish(&plans, &cfg.fbp, &scan_id) {
                            if let Some(m) = &metrics {
                                m.previews.inc();
                                m.recon_us.record(preview.recon_wall.as_micros() as u64);
                                m.feedback_us.record(t_end.elapsed().as_micros() as u64);
                            }
                            if tx.try_send(preview).is_err() {
                                dropped2.fetch_add(1, Ordering::Relaxed);
                                if let Some(m) = &metrics {
                                    m.previews_dropped.inc();
                                }
                            }
                        }
                    }
                }
            }
        });
        (
            StreamingReconService {
                stop,
                handle: Some(handle),
            },
            PreviewChannel { rx, dropped },
        )
    }

    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for StreamingReconService {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// From-scratch preview reconstruction over a cached frame list: gathers
/// and preps every sinogram row from the cache at scan end, the way the
/// pre-incremental service worked. Retained as the equivalence baseline
/// (the incremental path must match it bit for bit) and as the "before"
/// arm of the streaming bench.
pub fn reconstruct_preview(
    announce: &ScanAnnounce,
    cache: &[SlabFrame],
    cfg: &StreamerConfig,
    scan_id: &str,
) -> Option<Preview> {
    let t_recon = Instant::now();
    let angles: Vec<f64> = cache.iter().map(|f| f.meta.angle_rad).collect();
    let geom = Geometry {
        angles,
        n_det: announce.cols,
        center: (announce.cols as f64 - 1.0) / 2.0,
    };
    let cols = announce.cols;
    let prep = RawPrepPlan::new(
        &announce.dark,
        &announce.flat,
        announce.rows,
        cols,
        announce.mu_scale,
        None,
    );
    let sinos: Vec<Sinogram> = (0..announce.rows)
        .map(|r| {
            let mut sino = Sinogram::zeros(cache.len(), cols);
            for (a, frame) in cache.iter().enumerate() {
                prep.prep_angle_row(r, &frame.data()[r * cols..(r + 1) * cols], sino.row_mut(a));
            }
            sino
        })
        .collect();
    let plan = ReconPlan::new(&geom, &cfg.fbp).ok()?;
    let vol = plan.fbp_volume(&sinos).ok()?;
    let recon_wall = t_recon.elapsed();

    let t_send = Instant::now();
    let slices = [
        vol.slice_xy(vol.nz / 2),
        vol.slice_xz(vol.ny / 2),
        vol.slice_yz(vol.nx / 2),
    ];
    let send_wall = t_send.elapsed();
    Some(Preview {
        scan_id: scan_id.to_string(),
        slices,
        cached_frames: cache.len(),
        dropped_frames: announce.n_angles.saturating_sub(cache.len()),
        rejected_frames: 0,
        recon_wall,
        send_wall,
        feedback_wall: recon_wall + send_wall,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::PvaServer;
    use crate::publish_scan;
    use als_phantom::{shepp_logan_volume, DetectorConfig, ScanSimulator};
    use als_tomo::Geometry as TomoGeometry;

    #[test]
    fn preview_arrives_after_scan_end() {
        let server = PvaServer::new();
        let (svc, previews) =
            StreamingReconService::spawn(server.subscribe(8192), StreamerConfig::default());
        let vol = shepp_logan_volume(48, 4);
        let geom = TomoGeometry::parallel_180(40, 48);
        let cfg = DetectorConfig {
            noise: false,
            ..Default::default()
        };
        let mut sim = ScanSimulator::new(&vol, geom, cfg, 7);
        publish_scan(&server, &mut sim, "stream_scan", cfg.mu_scale);
        let p = previews
            .recv_timeout(Duration::from_secs(20))
            .expect("preview");
        assert_eq!(p.scan_id, "stream_scan");
        assert_eq!(p.cached_frames, 40);
        assert_eq!(p.dropped_frames, 0);
        assert_eq!(p.slices[0].width, 48); // XY slice
        assert_eq!(p.slices[1].height, 4); // XZ slice spans nz
        assert!(p.recon_wall > Duration::ZERO);
        assert!(p.feedback_wall >= p.recon_wall);
        svc.stop();
    }

    #[test]
    fn preview_reconstruction_resembles_phantom() {
        let server = PvaServer::new();
        let (svc, previews) =
            StreamingReconService::spawn(server.subscribe(8192), StreamerConfig::default());
        let n = 48;
        let vol = shepp_logan_volume(n, 3);
        let geom = TomoGeometry::parallel_180(96, n);
        let cfg = DetectorConfig {
            noise: false,
            ..Default::default()
        };
        let mut sim = ScanSimulator::new(&vol, geom, cfg, 9);
        publish_scan(&server, &mut sim, "q", cfg.mu_scale);
        let p = previews
            .recv_timeout(Duration::from_secs(30))
            .expect("preview");
        // middle slice should correlate with the phantom's middle slice
        let truth = vol.slice_xy(1);
        let rec = &p.slices[0];
        let err = als_tomo::quality::mse_in_disk(&truth, rec).sqrt();
        assert!(err < 0.15, "preview rmse {err}");
        svc.stop();
    }

    #[test]
    fn scan_end_without_frames_sends_nothing() {
        let server = PvaServer::new();
        let (svc, previews) =
            StreamingReconService::spawn(server.subscribe(64), StreamerConfig::default());
        server.publish(StreamMessage::ScanEnd {
            scan_id: Arc::from("ghost"),
        });
        assert!(previews.recv_timeout(Duration::from_millis(300)).is_none());
        svc.stop();
    }

    #[test]
    fn service_handles_back_to_back_scans() {
        let server = PvaServer::new();
        let (svc, previews) =
            StreamingReconService::spawn(server.subscribe(16384), StreamerConfig::default());
        let vol = shepp_logan_volume(32, 2);
        let geom = TomoGeometry::parallel_180(16, 32);
        for i in 0..3 {
            let cfg = DetectorConfig::default();
            let mut sim = ScanSimulator::new(&vol, geom.clone(), cfg, i);
            publish_scan(&server, &mut sim, &format!("s{i}"), cfg.mu_scale);
        }
        for i in 0..3 {
            let p = previews
                .recv_timeout(Duration::from_secs(20))
                .expect("preview");
            assert_eq!(p.scan_id, format!("s{i}"));
        }
        svc.stop();
    }

    #[test]
    fn plan_cache_shares_one_plan_across_identical_geometries() {
        let plans = PlanCache::new();
        let geom = TomoGeometry::parallel_180(24, 32);
        let cfg = FbpConfig::default();
        let a = plans.get(&geom, &cfg).unwrap();
        let b = plans.get(&geom, &cfg).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "identical geometry shares the plan");
        assert_eq!((plans.misses(), plans.hits()), (1, 1));
        // different geometry builds a second plan
        let geom2 = TomoGeometry::parallel_180(25, 32);
        let c = plans.get(&geom2, &cfg).unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(plans.len(), 2);
    }

    #[test]
    fn incremental_assembly_rejects_malformed_frames() {
        use als_phantom::FrameMeta;
        let announce = Arc::new(crate::ScanAnnounce {
            scan_id: "reject".into(),
            n_angles: 3,
            rows: 2,
            cols: 2,
            angles: vec![0.0, 0.1, 0.2],
            dark: vec![0; 4],
            flat: vec![100; 4],
            mu_scale: 0.04,
        });
        let mut scan = IncrementalScan::new(Arc::clone(&announce));
        let good = crate::slab::FrameSlab::detached(
            FrameMeta {
                frame_id: 0,
                angle_rad: 0.0,
                n_angles: 3,
                rows: 2,
                cols: 2,
            },
            vec![50; 4],
        );
        let bad_shape = crate::slab::FrameSlab::detached(
            FrameMeta {
                frame_id: 1,
                angle_rad: 0.1,
                n_angles: 3,
                rows: 4,
                cols: 4,
            },
            vec![50; 16],
        );
        assert!(scan.ingest(&good));
        assert!(!scan.ingest(&bad_shape));
        assert_eq!(scan.received(), 1);
        assert_eq!(scan.rejected(), 1);
        let plans = PlanCache::new();
        let p = scan
            .finish(&plans, &FbpConfig::default(), "reject")
            .expect("preview from the surviving frame");
        assert_eq!(p.cached_frames, 1);
        assert_eq!(p.dropped_frames, 2);
        assert_eq!(p.rejected_frames, 1);
    }

    #[test]
    fn bounded_preview_queue_counts_overflow() {
        let server = PvaServer::new();
        let cfg = StreamerConfig {
            preview_queue: 1,
            ..Default::default()
        };
        let (svc, previews) = StreamingReconService::spawn(server.subscribe(16384), cfg);
        let vol = shepp_logan_volume(24, 2);
        let geom = TomoGeometry::parallel_180(8, 24);
        for i in 0..3 {
            let det = DetectorConfig::default();
            let mut sim = ScanSimulator::new(&vol, geom.clone(), det, i);
            publish_scan(&server, &mut sim, &format!("s{i}"), det.mu_scale);
        }
        // nobody drained while three scans completed: queue of 1 keeps the
        // first preview, the other two are counted drops
        let deadline = Instant::now() + Duration::from_secs(20);
        while previews.dropped_count() < 2 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(previews.dropped_count(), 2);
        let kept = previews.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(kept.scan_id, "s0");
        svc.stop();
    }
}
