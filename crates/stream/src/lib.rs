//! # als-stream
//!
//! The streaming branch of the paper's infrastructure, implemented with
//! real threads and channels (not the discrete-event model):
//!
//! * [`slab`] — Arc-backed slab buffers: frames are written once into a
//!   pooled buffer and shared zero-copy by every consumer;
//! * [`channel`] — a PVA-style pub/sub channel: one publisher (the
//!   detector IOC), many monitor subscribers with bounded queues, lossy
//!   or reliable (backpressuring) delivery, and exact drop accounting;
//! * [`mirror`] — the channel mirror server that republishes the
//!   detector stream for the file writer *and* the optional remote
//!   streaming service (§4.2.1);
//! * [`filewriter`] — the file-writing systemd-service substitute: it
//!   validates each frame's metadata and appends pixels straight into
//!   the scan container's projection stack as they arrive;
//! * [`streamer`] — the NERSC streaming reconstruction service: preps
//!   sinogram rows incrementally as frames arrive, reconstructs on scan
//!   end through a shared plan cache, and sends a three-slice preview
//!   back over a bounded ZeroMQ-style reply channel — the paper's
//!   sub-10-second feedback path;
//! * [`multiplex`] — N concurrent detector streams sharing one plan
//!   cache and one telemetry registry.

pub mod channel;
pub mod filewriter;
pub mod mirror;
pub mod multiplex;
pub mod slab;
pub mod streamer;

pub use channel::{DeliveryMode, PvaServer, StreamMessage, Subscription};
pub use filewriter::{FileWriterConfig, FileWriterHandle, FileWriterService};
pub use mirror::ChannelMirror;
pub use multiplex::{StreamHub, StreamLane};
pub use slab::{deep_copy_count, FrameSlab, SlabFrame, SlabPool};
pub use streamer::{
    IncrementalScan, PlanCache, Preview, PreviewChannel, StreamerConfig, StreamingReconService,
};

use als_phantom::ScanSimulator;
use std::sync::Arc;

/// Announcement published at the start of a scan: everything downstream
/// services need to interpret the frames that follow.
#[derive(Debug, Clone)]
pub struct ScanAnnounce {
    pub scan_id: String,
    pub n_angles: usize,
    pub rows: usize,
    pub cols: usize,
    pub angles: Vec<f64>,
    pub dark: Vec<u16>,
    pub flat: Vec<u16>,
    /// Detector μ scaling, needed to invert counts to line integrals.
    pub mu_scale: f64,
}

/// Build the start-of-scan announcement for a simulator acquisition.
pub fn announce_for(sim: &ScanSimulator, scan_id: &str, mu_scale: f64) -> ScanAnnounce {
    ScanAnnounce {
        scan_id: scan_id.to_string(),
        n_angles: sim.n_frames(),
        rows: sim.rows(),
        cols: sim.cols(),
        angles: sim.geometry().angles.clone(),
        dark: sim.dark_field().to_vec(),
        flat: sim.flat_field().to_vec(),
        mu_scale,
    }
}

/// Drive a [`ScanSimulator`] through a PVA server: Start, every frame in
/// order, End. This is the detector IOC's role. Frames are rendered
/// directly into slabs leased from a pool scoped to this scan.
pub fn publish_scan(
    server: &PvaServer,
    sim: &mut ScanSimulator,
    scan_id: &str,
    mu_scale: f64,
) -> usize {
    let pool = SlabPool::new(sim.rows() * sim.cols());
    publish_scan_pooled(server, sim, scan_id, mu_scale, &pool)
}

/// [`publish_scan`] with a caller-owned slab pool, so back-to-back scans
/// (and benches asserting on allocation counts) reuse the same buffers.
pub fn publish_scan_pooled(
    server: &PvaServer,
    sim: &mut ScanSimulator,
    scan_id: &str,
    mu_scale: f64,
    pool: &SlabPool,
) -> usize {
    assert_eq!(
        pool.slab_len(),
        sim.rows() * sim.cols(),
        "pool slabs must match the detector shape"
    );
    let announce = announce_for(sim, scan_id, mu_scale);
    server.publish(StreamMessage::ScanStart(Arc::new(announce)));
    let n = sim.n_frames();
    for a in 0..n {
        // render straight into the pooled slab: the one and only write of
        // this frame's pixels anywhere in the pipeline
        let frame = pool.frame_from(|buf| sim.fill_frame(a, buf));
        server.publish(StreamMessage::Frame(frame));
    }
    server.publish(StreamMessage::ScanEnd {
        scan_id: Arc::from(scan_id),
    });
    n
}
