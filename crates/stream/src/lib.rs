//! # als-stream
//!
//! The streaming branch of the paper's infrastructure, implemented with
//! real threads and channels (not the discrete-event model):
//!
//! * [`channel`] — a PVA-style pub/sub channel: one publisher (the
//!   detector IOC), many monitor subscribers with bounded queues;
//! * [`mirror`] — the channel mirror server that republishes the
//!   detector stream for the file writer *and* the optional remote
//!   streaming service (§4.2.1);
//! * [`filewriter`] — the file-writing systemd-service substitute: it
//!   validates each frame's metadata and assembles the scan file on
//!   acquisition completion;
//! * [`streamer`] — the NERSC streaming reconstruction service: caches
//!   frames in memory, reconstructs on scan end, and sends a three-slice
//!   preview back over a ZeroMQ-style reply channel — the paper's
//!   sub-10-second feedback path.

pub mod channel;
pub mod filewriter;
pub mod mirror;
pub mod streamer;

pub use channel::{PvaServer, StreamMessage, Subscription};
pub use filewriter::{FileWriterHandle, FileWriterService};
pub use mirror::ChannelMirror;
pub use streamer::{Preview, PreviewChannel, StreamerConfig, StreamingReconService};

use als_phantom::{Frame, ScanSimulator};
use std::sync::Arc;

/// Announcement published at the start of a scan: everything downstream
/// services need to interpret the frames that follow.
#[derive(Debug, Clone)]
pub struct ScanAnnounce {
    pub scan_id: String,
    pub n_angles: usize,
    pub rows: usize,
    pub cols: usize,
    pub angles: Vec<f64>,
    pub dark: Vec<u16>,
    pub flat: Vec<u16>,
    /// Detector μ scaling, needed to invert counts to line integrals.
    pub mu_scale: f64,
}

/// Drive a [`ScanSimulator`] through a PVA server: Start, every frame in
/// order, End. This is the detector IOC's role.
pub fn publish_scan(
    server: &PvaServer,
    sim: &mut ScanSimulator,
    scan_id: &str,
    mu_scale: f64,
) -> usize {
    let announce = ScanAnnounce {
        scan_id: scan_id.to_string(),
        n_angles: sim.n_frames(),
        rows: sim.rows(),
        cols: sim.cols(),
        angles: sim.geometry().angles.clone(),
        dark: sim.dark_field().to_vec(),
        flat: sim.flat_field().to_vec(),
        mu_scale,
    };
    server.publish(StreamMessage::ScanStart(Arc::new(announce)));
    let n = sim.n_frames();
    for a in 0..n {
        let frame: Frame = sim.frame(a);
        server.publish(StreamMessage::Frame(Arc::new(frame)));
    }
    server.publish(StreamMessage::ScanEnd {
        scan_id: scan_id.to_string(),
    });
    n
}
