//! Multi-detector multiplexing: N concurrent streams, one plan cache.
//!
//! A [`StreamHub`] owns the shared [`PlanCache`] and the telemetry
//! [`Registry`]. Each [`StreamLane`] it opens is a complete detector
//! path — a PVA server whose publish/drop/occupancy counters export
//! under that lane's channel label, plus a streaming-reconstruction
//! service that shares the hub's plan cache. Streams with bit-identical
//! acquisition geometry therefore build the reconstruction plan once,
//! no matter how many detectors feed the hub concurrently.

use crate::channel::{DeliveryMode, PvaServer};
use crate::streamer::{PlanCache, PreviewChannel, StreamerConfig, StreamingReconService};
use als_telemetry::Registry;
use als_tomo::FbpConfig;
use std::sync::Arc;

/// Shared state for a set of concurrent detector streams.
pub struct StreamHub {
    registry: Arc<Registry>,
    plans: Arc<PlanCache>,
}

impl Default for StreamHub {
    fn default() -> Self {
        StreamHub::new()
    }
}

impl StreamHub {
    pub fn new() -> StreamHub {
        Self::with_registry(Arc::new(Registry::new()))
    }

    /// Build a hub whose lanes export metrics into `registry`.
    pub fn with_registry(registry: Arc<Registry>) -> StreamHub {
        StreamHub {
            registry,
            plans: PlanCache::new(),
        }
    }

    /// The telemetry registry every lane reports into.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The reconstruction-plan cache shared by every lane.
    pub fn plans(&self) -> &Arc<PlanCache> {
        &self.plans
    }

    /// Open a lane: a PVA channel named `name` with a lossy preview
    /// subscriber of `monitor_capacity` frames feeding a reconstruction
    /// service that shares the hub's plan cache.
    pub fn open_lane(&self, name: &str, fbp: FbpConfig, monitor_capacity: usize) -> StreamLane {
        let server = PvaServer::with_registry(name, Arc::clone(&self.registry));
        let sub = server.subscribe_named("preview", monitor_capacity, DeliveryMode::Lossy);
        let cfg = StreamerConfig {
            fbp,
            stream: name.to_string(),
            registry: Some(Arc::clone(&self.registry)),
            ..Default::default()
        };
        let (service, previews) =
            StreamingReconService::spawn_shared(sub, cfg, Arc::clone(&self.plans));
        StreamLane {
            name: name.to_string(),
            server,
            previews,
            service: Some(service),
        }
    }
}

/// One detector stream opened through a [`StreamHub`].
pub struct StreamLane {
    pub name: String,
    /// The lane's PVA channel; publish scans here (or hand it to a
    /// mirror). Additional subscribers — file writers, monitors — attach
    /// with [`PvaServer::subscribe_named`].
    pub server: Arc<PvaServer>,
    /// Preview replies from the lane's reconstruction service.
    pub previews: PreviewChannel,
    service: Option<StreamingReconService>,
}

impl StreamLane {
    /// Stop the lane's reconstruction service and join its thread.
    pub fn close(mut self) {
        if let Some(svc) = self.service.take() {
            svc.stop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::publish_scan;
    use als_phantom::{shepp_logan_volume, DetectorConfig, ScanSimulator};
    use als_tomo::Geometry;
    use std::time::Duration;

    #[test]
    fn lanes_share_one_plan_for_identical_geometry() {
        let hub = StreamHub::new();
        let lanes: Vec<StreamLane> = (0..3)
            .map(|i| hub.open_lane(&format!("det{i}"), FbpConfig::default(), 4096))
            .collect();
        let vol = shepp_logan_volume(32, 2);
        let geom = Geometry::parallel_180(12, 32);
        for (i, lane) in lanes.iter().enumerate() {
            let cfg = DetectorConfig {
                noise: false,
                ..Default::default()
            };
            let mut sim = ScanSimulator::new(&vol, geom.clone(), cfg, i as u64);
            publish_scan(
                &lane.server,
                &mut sim,
                &format!("scan_det{i}"),
                cfg.mu_scale,
            );
        }
        for lane in &lanes {
            let p = lane
                .previews
                .recv_timeout(Duration::from_secs(20))
                .expect("each lane previews");
            assert_eq!(p.cached_frames, 12);
        }
        assert_eq!(hub.plans().len(), 1, "identical geometry: one shared plan");
        assert_eq!(hub.plans().misses(), 1);
        assert_eq!(hub.plans().hits(), 2);
        for lane in lanes {
            lane.close();
        }
    }

    #[test]
    fn lane_metrics_are_labelled_per_channel() {
        let hub = StreamHub::new();
        let lane = hub.open_lane("det7", FbpConfig::default(), 64);
        let vol = shepp_logan_volume(24, 2);
        let geom = Geometry::parallel_180(6, 24);
        let cfg = DetectorConfig::default();
        let mut sim = ScanSimulator::new(&vol, geom, cfg, 1);
        publish_scan(&lane.server, &mut sim, "s", cfg.mu_scale);
        lane.previews.recv_timeout(Duration::from_secs(20)).unwrap();
        let snap = hub.registry().snapshot();
        // ScanStart + 6 frames + ScanEnd
        assert_eq!(
            snap.counters["stream_frames_published_total{channel=\"det7\"}"],
            8
        );
        assert_eq!(
            snap.counters["stream_frames_ingested_total{stream=\"det7\"}"],
            6
        );
        assert_eq!(snap.counters["stream_previews_total{stream=\"det7\"}"], 1);
        lane.close();
    }
}
