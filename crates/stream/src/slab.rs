//! Arc-backed slab buffers: the zero-copy frame currency of the stream.
//!
//! A detector frame is written **once** into a slab leased from a
//! [`SlabPool`], sealed into an immutable [`SlabFrame`] (`Arc<FrameSlab>`),
//! and from then on every consumer — monitor fanout, channel mirror, file
//! writer, preview assembler — shares the same pixel buffer by reference.
//! When the last holder drops its handle the buffer returns to the pool
//! and the next frame reuses it, so a steady-state acquisition runs with
//! a fixed working set of slabs (≈ the sum of the bounded queue depths)
//! and zero per-frame allocation or pixel copies.
//!
//! The only way to duplicate pixel data is the explicit
//! [`FrameSlab::to_frame`] escape hatch, and it is globally counted —
//! the streaming bench asserts the count stays zero across the hot path.

use als_phantom::{Frame, FrameMeta};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

/// Global count of explicit frame deep-copies ([`FrameSlab::to_frame`]).
/// The hot path must never bump this; benches and tests assert on it.
static DEEP_COPIES: AtomicU64 = AtomicU64::new(0);

/// Explicit pixel deep-copies performed so far, process-wide.
pub fn deep_copy_count() -> u64 {
    DEEP_COPIES.load(Ordering::Relaxed)
}

#[derive(Debug, Default)]
struct PoolInner {
    free: Mutex<Vec<Vec<u16>>>,
    slab_len: usize,
    allocated: AtomicU64,
    recycled: AtomicU64,
}

/// A pool of reusable `rows × cols` pixel buffers for one detector shape.
#[derive(Debug, Clone)]
pub struct SlabPool {
    inner: Arc<PoolInner>,
}

impl SlabPool {
    /// Pool of slabs holding `slab_len` pixels each.
    pub fn new(slab_len: usize) -> SlabPool {
        assert!(slab_len > 0, "slabs must hold at least one pixel");
        SlabPool {
            inner: Arc::new(PoolInner {
                free: Mutex::new(Vec::new()),
                slab_len,
                allocated: AtomicU64::new(0),
                recycled: AtomicU64::new(0),
            }),
        }
    }

    /// Lease a slab, let `fill` write the pixels, and seal the result
    /// into an immutable shared frame. The buffer comes from the free
    /// list when a previous frame has been fully released.
    pub fn frame(&self, meta: FrameMeta, fill: impl FnOnce(&mut [u16])) -> SlabFrame {
        self.frame_from(|buf| {
            fill(buf);
            meta
        })
    }

    /// Like [`SlabPool::frame`], but for producers that compute the
    /// metadata *while* rendering the pixels (the detector simulator):
    /// `fill` writes the buffer and returns the frame's metadata.
    pub fn frame_from(&self, fill: impl FnOnce(&mut [u16]) -> FrameMeta) -> SlabFrame {
        let mut data = match self.inner.free.lock().pop() {
            Some(v) => {
                self.inner.recycled.fetch_add(1, Ordering::Relaxed);
                v
            }
            None => {
                self.inner.allocated.fetch_add(1, Ordering::Relaxed);
                vec![0u16; self.inner.slab_len]
            }
        };
        let meta = fill(&mut data);
        Arc::new(FrameSlab {
            meta,
            data,
            pool: Arc::downgrade(&self.inner),
        })
    }

    /// Pixels per slab.
    pub fn slab_len(&self) -> usize {
        self.inner.slab_len
    }

    /// Slabs ever allocated (the peak concurrent working set).
    pub fn allocated(&self) -> u64 {
        self.inner.allocated.load(Ordering::Relaxed)
    }

    /// Leases served from the free list instead of a fresh allocation.
    pub fn recycled(&self) -> u64 {
        self.inner.recycled.load(Ordering::Relaxed)
    }

    /// Slabs currently idle in the free list.
    pub fn free_slabs(&self) -> usize {
        self.inner.free.lock().len()
    }
}

/// One immutable detector frame backed by a pooled slab. Shared as
/// [`SlabFrame`]; the pixel buffer returns to its pool when the last
/// reference drops.
#[derive(Debug)]
pub struct FrameSlab {
    pub meta: FrameMeta,
    data: Vec<u16>,
    pool: Weak<PoolInner>,
}

/// The shared handle every stream consumer holds. Cloning bumps a
/// refcount; it never copies pixels.
pub type SlabFrame = Arc<FrameSlab>;

impl FrameSlab {
    /// A frame owning its own buffer, outside any pool — corrupted-frame
    /// injection and unit tests; the hot path always goes through a pool.
    pub fn detached(meta: FrameMeta, data: Vec<u16>) -> SlabFrame {
        Arc::new(FrameSlab {
            meta,
            data,
            pool: Weak::new(),
        })
    }

    /// The row-major `rows × cols` pixel payload.
    pub fn data(&self) -> &[u16] {
        &self.data
    }

    /// Size of the pixel payload in bytes.
    pub fn nbytes(&self) -> usize {
        self.data.len() * 2
    }

    /// Explicit deep copy into an owned [`Frame`]. Counted globally so
    /// benches can prove the hot path never pays for one.
    pub fn to_frame(&self) -> Frame {
        DEEP_COPIES.fetch_add(1, Ordering::Relaxed);
        Frame {
            meta: self.meta.clone(),
            data: self.data.clone(),
        }
    }
}

impl Drop for FrameSlab {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.upgrade() {
            // only same-shape buffers go back; anything resized (never on
            // the normal path) is simply freed
            if self.data.len() == pool.slab_len {
                pool.free.lock().push(std::mem::take(&mut self.data));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(id: usize) -> FrameMeta {
        FrameMeta {
            frame_id: id,
            angle_rad: 0.0,
            n_angles: 8,
            rows: 2,
            cols: 3,
        }
    }

    #[test]
    fn slabs_recycle_once_released() {
        let pool = SlabPool::new(6);
        let f0 = pool.frame(meta(0), |d| d.fill(7));
        assert_eq!(pool.allocated(), 1);
        assert_eq!(f0.data(), &[7; 6]);
        drop(f0);
        assert_eq!(pool.free_slabs(), 1);
        let f1 = pool.frame(meta(1), |d| d.fill(9));
        assert_eq!(pool.allocated(), 1, "second frame reuses the slab");
        assert_eq!(pool.recycled(), 1);
        assert_eq!(f1.data(), &[9; 6]);
    }

    #[test]
    fn live_references_pin_the_buffer() {
        let pool = SlabPool::new(6);
        let f0 = pool.frame(meta(0), |d| d.fill(1));
        let alias = Arc::clone(&f0);
        drop(f0);
        assert_eq!(pool.free_slabs(), 0, "alias still holds the slab");
        assert_eq!(alias.data(), &[1; 6]);
        drop(alias);
        assert_eq!(pool.free_slabs(), 1);
    }

    #[test]
    fn steady_state_allocation_is_bounded_by_concurrency() {
        let pool = SlabPool::new(4);
        for i in 0..100 {
            let f = pool.frame(meta(i % 8), |d| d.fill(i as u16));
            drop(f); // consumer releases before the next frame
        }
        assert_eq!(pool.allocated(), 1);
        assert_eq!(pool.recycled(), 99);
    }

    #[test]
    fn detached_frames_skip_the_pool() {
        let f = FrameSlab::detached(meta(0), vec![3; 6]);
        assert_eq!(f.nbytes(), 12);
        drop(f); // no pool to return to; must not panic
    }

    #[test]
    fn deep_copies_are_counted() {
        let before = deep_copy_count();
        let pool = SlabPool::new(6);
        let f = pool.frame(meta(0), |d| d.fill(2));
        let owned = f.to_frame();
        assert_eq!(owned.data, vec![2; 6]);
        assert_eq!(deep_copy_count(), before + 1);
    }

    #[test]
    fn pool_death_orphans_outstanding_slabs_cleanly() {
        let pool = SlabPool::new(6);
        let f = pool.frame(meta(0), |d| d.fill(5));
        drop(pool);
        drop(f); // pool gone: buffer is simply freed
    }
}
