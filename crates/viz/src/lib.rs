//! # als-viz
//!
//! The access layer's visualization primitives — what ImageJ and the
//! itk-vtk-viewer web app consume in the paper:
//!
//! * orthogonal three-slice previews of a volume (the <10 s streaming
//!   feedback artifact);
//! * intensity windowing and histograms (how users inspect attenuation);
//! * 8-bit PGM image export so previews can be opened with any viewer.

pub mod colormap;
pub mod render;
pub mod window;

pub use colormap::{render_rgb, write_ppm, Colormap};
pub use render::{write_pgm, write_preview_pgms};
pub use window::{histogram, Window};

use als_tomo::{Image, Volume};

/// The standard three-slice preview: axial (XY), coronal (XZ), sagittal
/// (YZ) planes through the volume center — what the streaming service
/// ships back to ImageJ at the beamline.
pub fn three_slice_preview(vol: &Volume) -> [Image; 3] {
    [
        vol.slice_xy(vol.nz / 2),
        vol.slice_xz(vol.ny / 2),
        vol.slice_yz(vol.nx / 2),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preview_slices_have_expected_shapes() {
        let vol = Volume::zeros(10, 12, 14);
        let [xy, xz, yz] = three_slice_preview(&vol);
        assert_eq!((xy.width, xy.height), (10, 12));
        assert_eq!((xz.width, xz.height), (10, 14));
        assert_eq!((yz.width, yz.height), (12, 14));
    }

    #[test]
    fn preview_cuts_through_center() {
        let mut vol = Volume::zeros(9, 9, 9);
        vol.set(4, 4, 4, 1.0);
        let [xy, xz, yz] = three_slice_preview(&vol);
        assert_eq!(xy.get(4, 4), 1.0);
        assert_eq!(xz.get(4, 4), 1.0);
        assert_eq!(yz.get(4, 4), 1.0);
    }
}
