//! 8-bit image export (binary PGM) for previews and figure assets.
//!
//! PGM is trivially correct to write with no dependencies and opens in
//! ImageJ, feh, GIMP, etc. — good enough for the preview artifacts the
//! examples produce.

use crate::window::Window;
use als_tomo::Image;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Write an image as a binary PGM (P5), windowed to 8 bits.
pub fn write_pgm(path: &Path, img: &Image, window: Window) -> std::io::Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    write!(f, "P5\n{} {}\n255\n", img.width, img.height)?;
    let bytes: Vec<u8> = img
        .data
        .iter()
        .map(|&v| (window.apply(v) * 255.0).round() as u8)
        .collect();
    f.write_all(&bytes)?;
    Ok(())
}

/// Write the standard three-slice preview into `dir` as
/// `{stem}_xy.pgm`, `{stem}_xz.pgm`, `{stem}_yz.pgm`, auto-windowed per
/// slice at the 1/99 percentiles. Returns the paths.
pub fn write_preview_pgms(
    dir: &Path,
    stem: &str,
    slices: &[Image; 3],
) -> std::io::Result<[PathBuf; 3]> {
    std::fs::create_dir_all(dir)?;
    let names = ["xy", "xz", "yz"];
    let mut out: Vec<PathBuf> = Vec::with_capacity(3);
    for (img, plane) in slices.iter().zip(names.iter()) {
        let path = dir.join(format!("{stem}_{plane}.pgm"));
        write_pgm(&path, img, Window::percentile(img, 1.0, 99.0))?;
        out.push(path);
    }
    Ok([out[0].clone(), out[1].clone(), out[2].clone()])
}

/// Parse a binary PGM back (for round-trip tests).
pub fn read_pgm(path: &Path) -> std::io::Result<(usize, usize, Vec<u8>)> {
    let bytes = std::fs::read(path)?;
    let header_end = bytes
        .windows(1)
        .enumerate()
        .filter(|(_, w)| w[0] == b'\n')
        .map(|(i, _)| i)
        .nth(2)
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "short header"))?;
    let header = std::str::from_utf8(&bytes[..header_end])
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad header"))?;
    let mut parts = header.split_ascii_whitespace();
    let magic = parts.next().unwrap_or("");
    if magic != "P5" {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "not P5",
        ));
    }
    let w: usize = parts.next().and_then(|s| s.parse().ok()).unwrap_or(0);
    let h: usize = parts.next().and_then(|s| s.parse().ok()).unwrap_or(0);
    let data = bytes[header_end + 1..].to_vec();
    if data.len() != w * h {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("expected {} pixels, got {}", w * h, data.len()),
        ));
    }
    Ok((w, h, data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use als_tomo::Volume;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("viz_{name}"));
        std::fs::remove_dir_all(&d).ok();
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn pgm_roundtrip() {
        let dir = tmpdir("roundtrip");
        let mut img = Image::square(8);
        for (i, v) in img.data.iter_mut().enumerate() {
            *v = i as f32;
        }
        let path = dir.join("t.pgm");
        write_pgm(&path, &img, Window::full_range(&img)).unwrap();
        let (w, h, data) = read_pgm(&path).unwrap();
        assert_eq!((w, h), (8, 8));
        assert_eq!(data[0], 0);
        assert_eq!(data[63], 255);
        // monotone ramp stays monotone
        assert!(data.windows(2).all(|p| p[0] <= p[1]));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn preview_writes_three_files() {
        let dir = tmpdir("preview");
        let mut vol = Volume::zeros(6, 6, 6);
        vol.set(3, 3, 3, 1.0);
        let slices = crate::three_slice_preview(&vol);
        let paths = write_preview_pgms(&dir, "scan42", &slices).unwrap();
        for p in &paths {
            assert!(p.exists(), "{p:?} missing");
            read_pgm(p).unwrap();
        }
        assert!(paths[0].to_str().unwrap().contains("scan42_xy"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_pgm_is_rejected() {
        let dir = tmpdir("trunc");
        let path = dir.join("bad.pgm");
        std::fs::write(&path, b"P5\n4 4\n255\nxx").unwrap();
        assert!(read_pgm(&path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
