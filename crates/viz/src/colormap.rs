//! Colormaps and RGB export for the web-viewer side of the access layer.
//!
//! The itk-vtk-viewer app renders windowed volumes through a transfer
//! function; this module provides the standard perceptual colormaps and a
//! binary PPM writer so figure assets can be produced in color.

use crate::window::Window;
use als_tomo::Image;
use serde::{Deserialize, Serialize};
use std::io::Write;
use std::path::Path;

/// Available colormaps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Colormap {
    /// Plain grayscale.
    Gray,
    /// A viridis-like perceptually uniform map (dark blue → green →
    /// yellow), piecewise-linear approximation.
    Viridis,
    /// Classic blue-white-red diverging map (for difference images).
    Diverging,
    /// "Fire" (black → red → yellow → white), ImageJ's lookup table for
    /// attenuation maps.
    Fire,
}

impl Colormap {
    /// Map a normalized value `v ∈ [0, 1]` to RGB.
    pub fn rgb(&self, v: f32) -> [u8; 3] {
        let v = v.clamp(0.0, 1.0);
        match self {
            Colormap::Gray => {
                let g = (v * 255.0).round() as u8;
                [g, g, g]
            }
            Colormap::Viridis => lerp_stops(
                v,
                &[
                    (0.0, [68, 1, 84]),
                    (0.25, [59, 82, 139]),
                    (0.5, [33, 145, 140]),
                    (0.75, [94, 201, 98]),
                    (1.0, [253, 231, 37]),
                ],
            ),
            Colormap::Diverging => lerp_stops(
                v,
                &[
                    (0.0, [44, 61, 178]),
                    (0.5, [245, 245, 245]),
                    (1.0, [178, 24, 43]),
                ],
            ),
            Colormap::Fire => lerp_stops(
                v,
                &[
                    (0.0, [0, 0, 0]),
                    (0.35, [180, 0, 0]),
                    (0.7, [255, 180, 0]),
                    (1.0, [255, 255, 255]),
                ],
            ),
        }
    }
}

/// Piecewise-linear interpolation through color stops (positions sorted).
fn lerp_stops(v: f32, stops: &[(f32, [u8; 3])]) -> [u8; 3] {
    debug_assert!(stops.len() >= 2);
    if v <= stops[0].0 {
        return stops[0].1;
    }
    for pair in stops.windows(2) {
        let (p0, c0) = pair[0];
        let (p1, c1) = pair[1];
        if v <= p1 {
            let f = (v - p0) / (p1 - p0).max(1e-9);
            return [
                (c0[0] as f32 + f * (c1[0] as f32 - c0[0] as f32)).round() as u8,
                (c0[1] as f32 + f * (c1[1] as f32 - c0[1] as f32)).round() as u8,
                (c0[2] as f32 + f * (c1[2] as f32 - c0[2] as f32)).round() as u8,
            ];
        }
    }
    stops.last().unwrap().1
}

/// Render an image to RGB bytes through a window and colormap.
pub fn render_rgb(img: &Image, window: Window, cmap: Colormap) -> Vec<u8> {
    let mut out = Vec::with_capacity(img.data.len() * 3);
    for &v in &img.data {
        out.extend_from_slice(&cmap.rgb(window.apply(v)));
    }
    out
}

/// Write an image as a binary PPM (P6) through a window and colormap.
pub fn write_ppm(path: &Path, img: &Image, window: Window, cmap: Colormap) -> std::io::Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    write!(f, "P6\n{} {}\n255\n", img.width, img.height)?;
    f.write_all(&render_rgb(img, window, cmap))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_match_stops() {
        assert_eq!(Colormap::Viridis.rgb(0.0), [68, 1, 84]);
        assert_eq!(Colormap::Viridis.rgb(1.0), [253, 231, 37]);
        assert_eq!(Colormap::Gray.rgb(0.0), [0, 0, 0]);
        assert_eq!(Colormap::Gray.rgb(1.0), [255, 255, 255]);
        assert_eq!(Colormap::Fire.rgb(0.0), [0, 0, 0]);
    }

    #[test]
    fn out_of_range_clamps() {
        assert_eq!(Colormap::Viridis.rgb(-3.0), Colormap::Viridis.rgb(0.0));
        assert_eq!(Colormap::Viridis.rgb(7.0), Colormap::Viridis.rgb(1.0));
    }

    #[test]
    fn diverging_midpoint_is_neutral() {
        let [r, g, b] = Colormap::Diverging.rgb(0.5);
        assert!(r > 230 && g > 230 && b > 230, "{r},{g},{b}");
    }

    #[test]
    fn viridis_luminance_is_monotone() {
        // perceptual maps brighten monotonically with value
        let luma = |c: [u8; 3]| 0.299 * c[0] as f32 + 0.587 * c[1] as f32 + 0.114 * c[2] as f32;
        let mut prev = -1.0;
        for i in 0..=20 {
            let l = luma(Colormap::Viridis.rgb(i as f32 / 20.0));
            assert!(l >= prev - 1.0, "luminance dipped at {i}");
            prev = l;
        }
    }

    #[test]
    fn render_rgb_has_three_bytes_per_pixel() {
        let mut img = Image::square(4);
        for (i, v) in img.data.iter_mut().enumerate() {
            *v = i as f32;
        }
        let w = Window::full_range(&img);
        let rgb = render_rgb(&img, w, Colormap::Fire);
        assert_eq!(rgb.len(), 16 * 3);
    }

    #[test]
    fn ppm_writes_valid_header() {
        let dir = std::env::temp_dir().join("viz_ppm_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.ppm");
        let img = Image::square(5);
        write_ppm(&path, &img, Window { lo: 0.0, hi: 1.0 }, Colormap::Viridis).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert!(bytes.starts_with(b"P6\n5 5\n255\n"));
        assert_eq!(bytes.len(), 11 + 75);
        std::fs::remove_dir_all(&dir).ok();
    }
}
