//! Intensity windowing and histograms.

use als_tomo::Image;
use serde::{Deserialize, Serialize};

/// A linear intensity window mapping `[lo, hi]` to `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Window {
    pub lo: f32,
    pub hi: f32,
}

impl Window {
    /// Window covering the image's full range.
    pub fn full_range(img: &Image) -> Window {
        let (lo, hi) = img.min_max();
        if lo == hi {
            Window { lo, hi: lo + 1.0 }
        } else {
            Window { lo, hi }
        }
    }

    /// Robust window at the given percentiles (e.g. 1/99) — what viewers
    /// use so a single hot pixel doesn't flatten the display.
    pub fn percentile(img: &Image, p_lo: f64, p_hi: f64) -> Window {
        if img.data.is_empty() {
            return Window { lo: 0.0, hi: 1.0 };
        }
        let mut sorted: Vec<f32> = img.data.clone();
        sorted.sort_by(f32::total_cmp);
        let pick = |p: f64| -> f32 {
            let idx = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
            sorted[idx.min(sorted.len() - 1)]
        };
        let lo = pick(p_lo);
        let hi = pick(p_hi);
        if lo == hi {
            Window { lo, hi: lo + 1.0 }
        } else {
            Window { lo, hi }
        }
    }

    /// Apply to one value, clamped to `[0, 1]`.
    pub fn apply(&self, v: f32) -> f32 {
        ((v - self.lo) / (self.hi - self.lo)).clamp(0.0, 1.0)
    }

    /// Apply to a whole image.
    pub fn apply_image(&self, img: &Image) -> Image {
        let mut out = img.clone();
        for v in out.data.iter_mut() {
            *v = self.apply(*v);
        }
        out
    }
}

/// Intensity histogram with `bins` equal-width bins over `[lo, hi]`.
/// Out-of-range values clamp to the end bins.
pub fn histogram(img: &Image, lo: f32, hi: f32, bins: usize) -> Vec<u64> {
    assert!(bins > 0, "histogram needs at least one bin");
    assert!(hi > lo, "histogram range must be non-empty");
    let mut out = vec![0u64; bins];
    let scale = bins as f32 / (hi - lo);
    for &v in &img.data {
        let idx = (((v - lo) * scale) as isize).clamp(0, bins as isize - 1) as usize;
        out[idx] += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize) -> Image {
        let mut img = Image::square(n);
        for (i, v) in img.data.iter_mut().enumerate() {
            *v = i as f32;
        }
        img
    }

    #[test]
    fn full_range_window_maps_extremes() {
        let img = ramp(4);
        let w = Window::full_range(&img);
        assert_eq!(w.apply(0.0), 0.0);
        assert_eq!(w.apply(15.0), 1.0);
        assert!((w.apply(7.5) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn window_clamps_out_of_range() {
        let w = Window { lo: 0.0, hi: 1.0 };
        assert_eq!(w.apply(-5.0), 0.0);
        assert_eq!(w.apply(5.0), 1.0);
    }

    #[test]
    fn percentile_window_ignores_outliers() {
        let mut img = ramp(10);
        img.data[0] = -1e9;
        img.data[1] = 1e9;
        let w = Window::percentile(&img, 5.0, 95.0);
        assert!(
            w.lo > -1e8 && w.hi < 1e8,
            "window {w:?} should exclude outliers"
        );
    }

    #[test]
    fn constant_image_gets_nonzero_window() {
        let img = Image::square(4); // all zeros
        let w = Window::full_range(&img);
        assert!(w.hi > w.lo);
        let p = Window::percentile(&img, 1.0, 99.0);
        assert!(p.hi > p.lo);
    }

    #[test]
    fn histogram_counts_everything_once() {
        let img = ramp(8); // values 0..63
        let h = histogram(&img, 0.0, 64.0, 8);
        assert_eq!(h.iter().sum::<u64>(), 64);
        assert!(h.iter().all(|&c| c == 8), "{h:?}");
    }

    #[test]
    fn histogram_clamps_outliers_to_edge_bins() {
        let mut img = Image::square(2);
        img.data = vec![-100.0, 0.5, 0.5, 100.0];
        let h = histogram(&img, 0.0, 1.0, 2);
        // -100 clamps into bin 0; 0.5 sits on the boundary and lands in
        // bin 1; +100 clamps into bin 1
        assert_eq!(h, vec![1, 3]);
    }

    #[test]
    fn histogram_boundary_behaviour_is_defined() {
        let mut img = Image::square(2);
        img.data = vec![-100.0, 0.25, 0.75, 100.0];
        let h = histogram(&img, 0.0, 1.0, 2);
        assert_eq!(h, vec![2, 2]);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        histogram(&ramp(2), 0.0, 1.0, 0);
    }
}
