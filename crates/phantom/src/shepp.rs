//! The Shepp-Logan head phantom, 2D and volumetric.
//!
//! Uses the "modified" (Toft) contrast values so features are visible
//! without windowing. Coordinates are normalized to `[-1, 1]`.

use als_tomo::{Image, Volume};

/// One ellipse: additive intensity, center, semi-axes, rotation (degrees).
#[derive(Debug, Clone, Copy)]
struct Ellipse {
    value: f32,
    x0: f64,
    y0: f64,
    a: f64,
    b: f64,
    phi_deg: f64,
}

/// The ten ellipses of the modified Shepp-Logan phantom.
const SHEPP_LOGAN: [Ellipse; 10] = [
    Ellipse {
        value: 1.0,
        x0: 0.0,
        y0: 0.0,
        a: 0.69,
        b: 0.92,
        phi_deg: 0.0,
    },
    Ellipse {
        value: -0.8,
        x0: 0.0,
        y0: -0.0184,
        a: 0.6624,
        b: 0.874,
        phi_deg: 0.0,
    },
    Ellipse {
        value: -0.2,
        x0: 0.22,
        y0: 0.0,
        a: 0.11,
        b: 0.31,
        phi_deg: -18.0,
    },
    Ellipse {
        value: -0.2,
        x0: -0.22,
        y0: 0.0,
        a: 0.16,
        b: 0.41,
        phi_deg: 18.0,
    },
    Ellipse {
        value: 0.1,
        x0: 0.0,
        y0: 0.35,
        a: 0.21,
        b: 0.25,
        phi_deg: 0.0,
    },
    Ellipse {
        value: 0.1,
        x0: 0.0,
        y0: 0.1,
        a: 0.046,
        b: 0.046,
        phi_deg: 0.0,
    },
    Ellipse {
        value: 0.1,
        x0: 0.0,
        y0: -0.1,
        a: 0.046,
        b: 0.046,
        phi_deg: 0.0,
    },
    Ellipse {
        value: 0.1,
        x0: -0.08,
        y0: -0.605,
        a: 0.046,
        b: 0.023,
        phi_deg: 0.0,
    },
    Ellipse {
        value: 0.1,
        x0: 0.0,
        y0: -0.606,
        a: 0.023,
        b: 0.023,
        phi_deg: 0.0,
    },
    Ellipse {
        value: 0.1,
        x0: 0.06,
        y0: -0.605,
        a: 0.023,
        b: 0.046,
        phi_deg: 0.0,
    },
];

/// Render the 2D Shepp-Logan phantom at `n × n`.
pub fn shepp_logan_2d(n: usize) -> Image {
    let mut img = Image::square(n);
    let scale = 2.0 / n as f64;
    for y in 0..n {
        let yn = (y as f64 + 0.5) * scale - 1.0;
        for x in 0..n {
            let xn = (x as f64 + 0.5) * scale - 1.0;
            let mut v = 0.0f32;
            for e in SHEPP_LOGAN.iter() {
                let phi = e.phi_deg.to_radians();
                let (s, c) = phi.sin_cos();
                let dx = xn - e.x0;
                let dy = yn - e.y0;
                let xr = dx * c + dy * s;
                let yr = -dx * s + dy * c;
                if (xr / e.a).powi(2) + (yr / e.b).powi(2) <= 1.0 {
                    v += e.value;
                }
            }
            img.set(x, y, v);
        }
    }
    img
}

/// A volumetric phantom: the 2D Shepp-Logan swept along z with a slowly
/// varying scale factor, producing distinct but correlated slices. `nz`
/// slices at `n × n` each.
pub fn shepp_logan_volume(n: usize, nz: usize) -> Volume {
    let mut vol = Volume::zeros(n, n, nz);
    for z in 0..nz {
        // scale shrinks toward the poles like a sphere cross-section
        let zn = if nz > 1 {
            2.0 * z as f64 / (nz - 1) as f64 - 1.0
        } else {
            0.0
        };
        let shrink = (1.0 - 0.6 * zn * zn).max(0.2);
        let img = scaled_shepp(n, shrink);
        vol.set_slice_xy(z, &img);
    }
    vol
}

fn scaled_shepp(n: usize, shrink: f64) -> Image {
    let mut img = Image::square(n);
    let scale = 2.0 / n as f64;
    for y in 0..n {
        let yn = ((y as f64 + 0.5) * scale - 1.0) / shrink;
        for x in 0..n {
            let xn = ((x as f64 + 0.5) * scale - 1.0) / shrink;
            let mut v = 0.0f32;
            for e in SHEPP_LOGAN.iter() {
                let phi = e.phi_deg.to_radians();
                let (s, c) = phi.sin_cos();
                let dx = xn - e.x0;
                let dy = yn - e.y0;
                let xr = dx * c + dy * s;
                let yr = -dx * s + dy * c;
                if (xr / e.a).powi(2) + (yr / e.b).powi(2) <= 1.0 {
                    v += e.value;
                }
            }
            img.set(x, y, v);
        }
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phantom_has_expected_value_range() {
        let img = shepp_logan_2d(128);
        let (mn, mx) = img.min_max();
        assert!(mn >= -0.02, "min {mn}");
        assert!((0.95..=1.05).contains(&mx), "max {mx}");
    }

    #[test]
    fn skull_value_is_one_interior_is_dimmer() {
        let n = 128;
        let img = shepp_logan_2d(n);
        // point just inside the outer skull (top of the big ellipse)
        let skull = img.get(n / 2, (0.045 * n as f64) as usize);
        assert!((skull - 1.0).abs() < 1e-6, "skull {skull}");
        // brain interior = 1.0 - 0.8 = 0.2
        let interior = img.get(n / 2, n / 2 - 10);
        assert!((interior - 0.2).abs() < 0.11, "interior {interior}");
    }

    #[test]
    fn corners_are_empty() {
        let img = shepp_logan_2d(64);
        assert_eq!(img.get(0, 0), 0.0);
        assert_eq!(img.get(63, 63), 0.0);
    }

    #[test]
    fn phantom_is_left_right_symmetric_in_outline() {
        let n = 128;
        let img = shepp_logan_2d(n);
        // the outer ellipses are centered: columns i and n-1-i match in
        // occupancy (nonzero-ness) along the vertical midline band
        for y in (0..n).step_by(7) {
            for x in 0..n / 2 {
                let l = img.get(x, y) != 0.0;
                let r = img.get(n - 1 - x, y) != 0.0;
                if l != r {
                    // small ellipses break exact symmetry; allow only near
                    // the bottom features
                    let yn = (y as f64 + 0.5) * 2.0 / n as f64 - 1.0;
                    assert!(
                        !(-0.4..=0.4).contains(&yn) || (0.0..0.5).contains(&yn.abs()),
                        "asymmetry at ({x},{y})"
                    );
                }
            }
        }
    }

    #[test]
    fn volume_slices_vary_smoothly() {
        let vol = shepp_logan_volume(64, 16);
        assert_eq!((vol.nx, vol.ny, vol.nz), (64, 64, 16));
        // middle slice has the largest cross-section
        let mass = |z: usize| -> f64 { vol.slice_xy(z).data.iter().map(|&v| v as f64).sum() };
        let mid = mass(8);
        assert!(mid > mass(0), "middle {mid} vs pole {}", mass(0));
        assert!(mid > mass(15));
    }
}
