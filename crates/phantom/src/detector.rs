//! Area-detector and scan simulation.
//!
//! Models the beamline 8.3.2 acquisition chain: for each projection angle
//! the X-ray transmission through the sample is converted to 16-bit
//! detector counts with incident flux `I0`, dark current, and Poisson
//! photon noise — the same raw material the EPICS IOC publishes frame by
//! frame. The streaming and file-writer services downstream consume these
//! [`Frame`]s exactly as they would PVA monitor updates.

use als_simcore::SimRng;
use als_tomo::{forward_project, Geometry, Sinogram, Volume};
use serde::{Deserialize, Serialize};

/// Detector and illumination parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// Incident photons per pixel per frame.
    pub i0: f64,
    /// Mean dark-current counts.
    pub dark_counts: f64,
    /// Apply Poisson photon noise.
    pub noise: bool,
    /// Scale from phantom line integrals to optical depth (controls
    /// contrast; keep `max(line integral) · mu_scale ≲ 4` to avoid
    /// photon starvation).
    pub mu_scale: f64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            i0: 20_000.0,
            dark_counts: 100.0,
            noise: true,
            mu_scale: 0.04,
        }
    }
}

/// Metadata attached to every frame, mirroring the embedded HDF5 metadata
/// the paper's file writer validates before writing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrameMeta {
    /// Scan-unique frame index (0-based).
    pub frame_id: usize,
    /// Projection angle in radians.
    pub angle_rad: f64,
    /// Total frames expected in this scan.
    pub n_angles: usize,
    /// Detector rows in this frame.
    pub rows: usize,
    /// Detector columns in this frame.
    pub cols: usize,
}

impl FrameMeta {
    /// Validate internal consistency (the file-writing service rejects
    /// frames whose metadata is malformed before writing them).
    pub fn validate(&self) -> Result<(), String> {
        if self.rows == 0 || self.cols == 0 {
            return Err("empty frame shape".into());
        }
        if self.frame_id >= self.n_angles {
            return Err(format!(
                "frame_id {} out of range (n_angles {})",
                self.frame_id, self.n_angles
            ));
        }
        if !self.angle_rad.is_finite() {
            return Err("non-finite angle".into());
        }
        Ok(())
    }
}

/// A single 16-bit detector frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Frame {
    pub meta: FrameMeta,
    /// Row-major `rows × cols` counts.
    pub data: Vec<u16>,
}

impl Frame {
    /// Size of the pixel payload in bytes.
    pub fn nbytes(&self) -> usize {
        self.data.len() * 2
    }
}

/// Simulates a complete 180° scan of a phantom volume.
///
/// Projections are precomputed per slice (the geometry's sinogram), then
/// re-sliced into per-angle frames: `frame[r][c]` is detector row `r`
/// (slice `r` of the volume) and column `c`.
pub struct ScanSimulator {
    geom: Geometry,
    cfg: DetectorConfig,
    /// One sinogram per volume slice.
    sinos: Vec<Sinogram>,
    dark: Vec<u16>,
    flat: Vec<u16>,
    rng: SimRng,
    rows: usize,
}

impl ScanSimulator {
    /// Prepare a scan of `vol` with the given geometry.
    pub fn new(vol: &Volume, geom: Geometry, cfg: DetectorConfig, seed: u64) -> Self {
        assert_eq!(
            geom.n_det, vol.nx,
            "detector width must match the phantom side"
        );
        assert_eq!(vol.nx, vol.ny, "phantom slices must be square");
        let sinos: Vec<Sinogram> = (0..vol.nz)
            .map(|z| forward_project(&vol.slice_xy(z), &geom))
            .collect();
        let mut rng = SimRng::seeded(seed);
        let rows = vol.nz;
        let cols = geom.n_det;
        // reference fields captured before the scan, like the real beamline
        let mut dark = Vec::with_capacity(rows * cols);
        let mut flat = Vec::with_capacity(rows * cols);
        for _ in 0..rows * cols {
            dark.push(sample_counts(cfg.dark_counts, cfg.noise, &mut rng));
            flat.push(sample_counts(cfg.dark_counts + cfg.i0, cfg.noise, &mut rng));
        }
        ScanSimulator {
            geom,
            cfg,
            sinos,
            dark,
            flat,
            rng,
            rows,
        }
    }

    pub fn n_frames(&self) -> usize {
        self.geom.n_angles()
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.geom.n_det
    }

    pub fn geometry(&self) -> &Geometry {
        &self.geom
    }

    /// The dark-field reference frame (detector with shutter closed).
    pub fn dark_field(&self) -> &[u16] {
        &self.dark
    }

    /// The flat-field reference frame (beam on, no sample).
    pub fn flat_field(&self) -> &[u16] {
        &self.flat
    }

    /// Generate frame `a` (projection at the `a`-th angle).
    pub fn frame(&mut self, a: usize) -> Frame {
        let cols = self.geom.n_det;
        let mut data = vec![0u16; self.rows * cols];
        let meta = self.fill_frame(a, &mut data);
        Frame { meta, data }
    }

    /// Generate frame `a` directly into a caller-provided buffer (a
    /// recycled slab), avoiding the per-frame allocation of [`frame`].
    /// `out` must hold exactly `rows × cols` pixels.
    pub fn fill_frame(&mut self, a: usize, out: &mut [u16]) -> FrameMeta {
        assert!(a < self.geom.n_angles(), "frame index out of range");
        let cols = self.geom.n_det;
        assert_eq!(out.len(), self.rows * cols, "slab size mismatch");
        for r in 0..self.rows {
            let row = self.sinos[r].row(a);
            let dst = &mut out[r * cols..(r + 1) * cols];
            for (d, &p) in dst.iter_mut().zip(row.iter()) {
                let transmission = (-(p as f64) * self.cfg.mu_scale).exp();
                let expected = self.cfg.dark_counts + self.cfg.i0 * transmission;
                *d = sample_counts(expected, self.cfg.noise, &mut self.rng);
            }
        }
        FrameMeta {
            frame_id: a,
            angle_rad: self.geom.angles[a],
            n_angles: self.geom.n_angles(),
            rows: self.rows,
            cols,
        }
    }

    /// Generate all frames in acquisition order.
    pub fn all_frames(&mut self) -> Vec<Frame> {
        (0..self.n_frames()).map(|a| self.frame(a)).collect()
    }
}

/// Convert raw counts back to attenuation line integrals using the dark
/// and flat references — the inverse of the detector model, used by both
/// reconstruction branches.
pub fn frames_to_sinogram(
    frames: &[Frame],
    dark: &[u16],
    flat: &[u16],
    slice_row: usize,
    mu_scale: f64,
) -> Sinogram {
    assert!(!frames.is_empty(), "no frames");
    let cols = frames[0].meta.cols;
    let n_angles = frames.len();
    let mut sino = Sinogram::zeros(n_angles, cols);
    for (a, frame) in frames.iter().enumerate() {
        let base = slice_row * cols;
        for c in 0..cols {
            let raw = frame.data[base + c] as f64;
            let d = dark[base + c] as f64;
            let f = flat[base + c] as f64;
            let t = ((raw - d) / (f - d).max(1.0)).clamp(1e-6, 1.0);
            sino.set(a, c, (-(t.ln()) / mu_scale) as f32);
        }
    }
    sino
}

fn sample_counts(expected: f64, noise: bool, rng: &mut SimRng) -> u16 {
    let v = if noise {
        sample_poisson(expected, rng)
    } else {
        expected
    };
    v.round().clamp(0.0, u16::MAX as f64) as u16
}

/// Poisson sample: Knuth's method for small λ, normal approximation above.
fn sample_poisson(lambda: f64, rng: &mut SimRng) -> f64 {
    if lambda <= 0.0 {
        return 0.0;
    }
    if lambda > 30.0 {
        return rng.normal_pos(lambda, lambda.sqrt());
    }
    let l = (-lambda).exp();
    let mut k = 0u32;
    let mut p = 1.0;
    loop {
        p *= rng.unit();
        if p <= l {
            return k as f64;
        }
        k += 1;
        if k > 10_000 {
            return lambda;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shepp::shepp_logan_volume;

    fn small_scan(noise: bool) -> ScanSimulator {
        let vol = shepp_logan_volume(32, 4);
        let geom = Geometry::parallel_180(24, 32);
        let cfg = DetectorConfig {
            noise,
            ..Default::default()
        };
        ScanSimulator::new(&vol, geom, cfg, 77)
    }

    #[test]
    fn frames_have_consistent_metadata() {
        let mut sim = small_scan(false);
        for a in 0..sim.n_frames() {
            let f = sim.frame(a);
            assert_eq!(f.meta.frame_id, a);
            assert_eq!(f.meta.rows, 4);
            assert_eq!(f.meta.cols, 32);
            assert_eq!(f.data.len(), 4 * 32);
            f.meta.validate().unwrap();
        }
    }

    #[test]
    fn attenuation_reduces_counts() {
        let mut sim = small_scan(false);
        let f = sim.frame(0);
        // the phantom's center casts a shadow: center column counts are
        // below the flat level, edge columns near it
        let flat_level = 20_000.0 + 100.0;
        let center = f.data[2 * 32 + 16] as f64;
        let edge = f.data[2 * 32] as f64;
        assert!(center < flat_level * 0.9, "center {center}");
        assert!(edge > flat_level * 0.95, "edge {edge}");
    }

    #[test]
    fn roundtrip_recovers_line_integrals() {
        let vol = shepp_logan_volume(32, 3);
        let geom = Geometry::parallel_180(24, 32);
        let cfg = DetectorConfig {
            noise: false,
            ..Default::default()
        };
        let truth = forward_project(&vol.slice_xy(1), &geom);
        let mut sim = ScanSimulator::new(&vol, geom, cfg, 1);
        let frames = sim.all_frames();
        let rec = frames_to_sinogram(&frames, sim.dark_field(), sim.flat_field(), 1, cfg.mu_scale);
        for i in 0..truth.data.len() {
            assert!(
                (rec.data[i] - truth.data[i]).abs() < 1.0,
                "bin {i}: {} vs {}",
                rec.data[i],
                truth.data[i]
            );
        }
    }

    #[test]
    fn noise_perturbs_but_preserves_mean() {
        let mut noisy = small_scan(true);
        let mut clean = small_scan(false);
        let fa = noisy.frame(0);
        let fb = clean.frame(0);
        assert_ne!(fa.data, fb.data);
        let mean_a: f64 = fa.data.iter().map(|&v| v as f64).sum::<f64>() / fa.data.len() as f64;
        let mean_b: f64 = fb.data.iter().map(|&v| v as f64).sum::<f64>() / fb.data.len() as f64;
        assert!((mean_a - mean_b).abs() / mean_b < 0.02);
    }

    #[test]
    fn poisson_small_lambda_matches_mean() {
        let mut rng = SimRng::seeded(4);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| sample_poisson(3.0, &mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn meta_validation_catches_garbage() {
        let mut m = FrameMeta {
            frame_id: 0,
            angle_rad: 0.0,
            n_angles: 10,
            rows: 4,
            cols: 8,
        };
        assert!(m.validate().is_ok());
        m.frame_id = 10;
        assert!(m.validate().is_err());
        m.frame_id = 0;
        m.angle_rad = f64::NAN;
        assert!(m.validate().is_err());
        m.angle_rad = 0.0;
        m.rows = 0;
        assert!(m.validate().is_err());
    }

    #[test]
    fn frame_nbytes_is_two_per_pixel() {
        let mut sim = small_scan(false);
        assert_eq!(sim.frame(0).nbytes(), 4 * 32 * 2);
    }
}
