//! # als-phantom
//!
//! Synthetic samples and a detector model for the microtomography beamline
//! simulation. The paper's experiments run on real specimens (feathers,
//! fracking proppant); since no beamline is attached, this crate generates
//! phantoms with the same *analysis-relevant* structure:
//!
//! * [`shepp`] — the classic Shepp-Logan head phantom (2D and volumetric),
//!   the standard reconstruction-quality reference;
//! * [`feather`] — chicken-like (straight barbules) vs sandgrouse-like
//!   (coiled, water-holding barbules) feather phantoms for Case Study 1;
//! * [`proppant`] — proppant grains propping a fracture between shale
//!   walls, for Case Study 2's retrospective;
//! * [`detector`] — a 16-bit area-detector model: flat/dark fields,
//!   photon (Poisson) noise, and per-frame metadata, producing the same
//!   frame stream the beamline's EPICS IOC publishes;
//! * [`morphology`] — quantitative descriptors (porosity, in-plane
//!   anisotropy, coil index) used to *measure* the Figure 1 comparison
//!   instead of eyeballing it.

pub mod detector;
pub mod feather;
pub mod morphology;
pub mod proppant;
pub mod shepp;

pub use detector::{frames_to_sinogram, DetectorConfig, Frame, FrameMeta, ScanSimulator};
pub use feather::{feather_volume, FeatherSpecies};
pub use morphology::MorphologyReport;
pub use proppant::proppant_volume;
pub use shepp::{shepp_logan_2d, shepp_logan_volume};
