//! Proppant-pack phantom for Case Study 2.
//!
//! The paper reanalyzes a 2020 micro-CT dataset of fracking proppant —
//! sand-like grains injected to keep a hydraulic fracture in shale open
//! (Voltolini & Ajo-Franklin 2020). The phantom models a planar fracture
//! between two shale half-spaces, propped by a random packing of spherical
//! grains, with optional compaction (creep) to emulate the 4D time-series
//! of the follow-up study.

use als_simcore::SimRng;
use als_tomo::Volume;
use serde::{Deserialize, Serialize};

/// Attenuation values (arbitrary units, shale > proppant > pore space).
pub const SHALE: f32 = 0.8;
pub const GRAIN: f32 = 1.0;
pub const PORE: f32 = 0.0;

/// Parameters of the proppant phantom.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ProppantConfig {
    /// Fracture aperture as a fraction of the volume height (0..1).
    pub aperture_frac: f64,
    /// Number of proppant grains to place.
    pub n_grains: usize,
    /// Grain radius as a fraction of the volume side.
    pub grain_radius_frac: f64,
    /// Compaction state in `[0, 1]`: 0 = freshly propped, 1 = fully
    /// crept (walls closed onto the grains). Drives the 4D sequence.
    pub compaction: f64,
}

impl Default for ProppantConfig {
    fn default() -> Self {
        ProppantConfig {
            aperture_frac: 0.3,
            n_grains: 40,
            grain_radius_frac: 0.06,
            compaction: 0.0,
        }
    }
}

/// Generate a proppant-pack volume of shape `n × n × nz`.
///
/// The fracture runs horizontally through the middle of each XY slice
/// (normal along y): shale above and below, grains and pore space inside.
pub fn proppant_volume(n: usize, nz: usize, cfg: &ProppantConfig, seed: u64) -> Volume {
    let mut rng = SimRng::seeded(seed);
    let mut vol = Volume::zeros(n, n, nz);

    // fracture aperture shrinks with compaction
    let aperture = (cfg.aperture_frac * (1.0 - 0.5 * cfg.compaction)).max(0.02);
    let half_ap = aperture * n as f64 / 2.0;
    let mid = (n as f64 - 1.0) / 2.0;
    let lo_wall = mid - half_ap;
    let hi_wall = mid + half_ap;

    // shale walls with a little roughness
    for z in 0..nz {
        for y in 0..n {
            for x in 0..n {
                let rough = 1.5 * ((x as f64 * 0.37 + z as f64 * 0.21).sin());
                let v = if (y as f64) < lo_wall + rough || (y as f64) > hi_wall + rough {
                    SHALE
                } else {
                    PORE
                };
                vol.set(x, y, z, v);
            }
        }
    }

    // random grain packing inside the fracture
    let r = cfg.grain_radius_frac * n as f64;
    for _ in 0..cfg.n_grains {
        let gx = rng.uniform(r, n as f64 - r);
        let gz = rng.uniform(0.0, nz as f64);
        // grains sit inside the (possibly compacted) aperture; when the
        // walls close, grains embed into the shale
        let gy = rng.uniform(
            (lo_wall + r * (1.0 - cfg.compaction)).min(hi_wall),
            (hi_wall - r * (1.0 - cfg.compaction)).max(lo_wall + 1.0),
        );
        stamp_sphere(&mut vol, gx, gy, gz, r, GRAIN);
    }
    vol
}

/// A 4D (time-resolved) creep sequence: `steps` volumes with increasing
/// compaction, as in the in-situ 4D visualization study.
pub fn proppant_creep_series(
    n: usize,
    nz: usize,
    base: &ProppantConfig,
    steps: usize,
    seed: u64,
) -> Vec<Volume> {
    (0..steps)
        .map(|i| {
            let compaction = if steps > 1 {
                i as f64 / (steps - 1) as f64
            } else {
                0.0
            };
            let cfg = ProppantConfig {
                compaction,
                ..*base
            };
            // same seed: the same grain pack evolving, not a new sample
            proppant_volume(n, nz, &cfg, seed)
        })
        .collect()
}

fn stamp_sphere(vol: &mut Volume, cx: f64, cy: f64, cz: f64, r: f64, v: f32) {
    let r_ceil = r.ceil() as i64 + 1;
    let xi = cx.round() as i64;
    let yi = cy.round() as i64;
    let zi = cz.round() as i64;
    for dz in -r_ceil..=r_ceil {
        for dy in -r_ceil..=r_ceil {
            for dx in -r_ceil..=r_ceil {
                let x = xi + dx;
                let y = yi + dy;
                let z = zi + dz;
                if x < 0
                    || y < 0
                    || z < 0
                    || x as usize >= vol.nx
                    || y as usize >= vol.ny
                    || z as usize >= vol.nz
                {
                    continue;
                }
                let d =
                    ((x as f64 - cx).powi(2) + (y as f64 - cy).powi(2) + (z as f64 - cz).powi(2))
                        .sqrt();
                if d <= r {
                    vol.set(x as usize, y as usize, z as usize, v);
                }
            }
        }
    }
}

/// Fraction of the fracture zone that is pore space (a standard proppant
/// metric: lower porosity = more embedment/crushing). The fracture zone
/// is everything that is not shale: pore space plus proppant grains.
pub fn fracture_porosity(vol: &Volume) -> f64 {
    let mut pore = 0usize;
    let mut grain = 0usize;
    for z in 0..vol.nz {
        for y in 0..vol.ny {
            for x in 0..vol.nx {
                let v = vol.get(x, y, z);
                if v <= PORE {
                    pore += 1;
                } else if v >= GRAIN {
                    grain += 1;
                }
            }
        }
    }
    let total = pore + grain;
    if total == 0 {
        0.0
    } else {
        pore as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_contains_all_three_phases() {
        let vol = proppant_volume(64, 8, &ProppantConfig::default(), 11);
        let shale = vol.data.iter().filter(|&&v| v == SHALE).count();
        let grain = vol.data.iter().filter(|&&v| v == GRAIN).count();
        let pore = vol.data.iter().filter(|&&v| v == PORE).count();
        assert!(shale > 0 && grain > 0 && pore > 0);
        // walls dominate
        assert!(shale > grain);
    }

    #[test]
    fn compaction_reduces_aperture() {
        let open = proppant_volume(
            64,
            4,
            &ProppantConfig {
                compaction: 0.0,
                n_grains: 0,
                ..Default::default()
            },
            5,
        );
        let crept = proppant_volume(
            64,
            4,
            &ProppantConfig {
                compaction: 1.0,
                n_grains: 0,
                ..Default::default()
            },
            5,
        );
        let pore_open = open.data.iter().filter(|&&v| v == PORE).count();
        let pore_crept = crept.data.iter().filter(|&&v| v == PORE).count();
        assert!(
            pore_crept < pore_open,
            "compaction should close pore space: {pore_open} -> {pore_crept}"
        );
    }

    #[test]
    fn creep_series_monotonically_closes_porosity() {
        let series = proppant_creep_series(48, 4, &ProppantConfig::default(), 4, 9);
        assert_eq!(series.len(), 4);
        let p: Vec<f64> = series.iter().map(fracture_porosity).collect();
        assert!(
            p.windows(2).all(|w| w[1] <= w[0] + 0.02),
            "porosity should not increase under creep: {p:?}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = ProppantConfig::default();
        let a = proppant_volume(32, 4, &cfg, 1);
        let b = proppant_volume(32, 4, &cfg, 1);
        assert_eq!(a.data, b.data);
    }

    #[test]
    fn grains_stay_inside_the_volume() {
        // placement math must not panic or write out of bounds even with
        // large grains and heavy compaction
        let cfg = ProppantConfig {
            grain_radius_frac: 0.2,
            n_grains: 30,
            compaction: 0.9,
            ..Default::default()
        };
        let vol = proppant_volume(40, 6, &cfg, 3);
        assert_eq!(vol.data.len(), 40 * 40 * 6);
    }
}
