//! Quantitative morphology descriptors for the Figure 1 experiment.
//!
//! The paper's Case Study 1 shows that HPC-backed reconstruction makes
//! morphological differences between chicken and sandgrouse feathers
//! *immediately visible*. To make the reproduction testable we compute
//! three descriptors on a (reconstructed) volume:
//!
//! * **material fraction** — occupied voxels / total;
//! * **enclosed void fraction** — empty voxels not connected to the slice
//!   border (water-storage capacity; the sandgrouse's coils enclose voids,
//!   straight chicken barbules enclose none);
//! * **radial anisotropy** — how strongly material is aligned along radial
//!   spokes (high for straight barbules, low for coils).

use als_tomo::{Image, Volume};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Morphology summary of a volume.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MorphologyReport {
    /// Fraction of voxels above threshold.
    pub material_fraction: f64,
    /// Fraction of voxels that are void *and* unreachable from the slice
    /// border (per-slice 2D flood fill, averaged over slices).
    pub enclosed_void_fraction: f64,
    /// Radial alignment score in `[0, 1]`: 1 = all material lies on radial
    /// spokes from the slice center, 0 = isotropic.
    pub radial_anisotropy: f64,
}

impl MorphologyReport {
    /// Compute the report for a volume at a given material threshold.
    pub fn of_volume(vol: &Volume, threshold: f32) -> MorphologyReport {
        let mut material = 0usize;
        let mut enclosed = 0usize;
        let mut aniso_acc = 0.0f64;
        for z in 0..vol.nz {
            let slice = vol.slice_xy(z);
            material += slice.data.iter().filter(|&&v| v > threshold).count();
            enclosed += enclosed_void_count(&slice, threshold);
            aniso_acc += radial_anisotropy(&slice, threshold);
        }
        let total = vol.voxels().max(1) as f64;
        MorphologyReport {
            material_fraction: material as f64 / total,
            enclosed_void_fraction: enclosed as f64 / total,
            radial_anisotropy: aniso_acc / vol.nz.max(1) as f64,
        }
    }
}

/// Count void pixels that cannot be reached from the image border by a
/// 4-connected flood fill through void.
fn enclosed_void_count(img: &Image, threshold: f32) -> usize {
    let w = img.width;
    let h = img.height;
    if w == 0 || h == 0 {
        return 0;
    }
    let is_void = |x: usize, y: usize| img.get(x, y) <= threshold;
    let mut reachable = vec![false; w * h];
    let mut queue = VecDeque::new();
    // seed with all void border pixels
    for x in 0..w {
        for &y in &[0, h - 1] {
            if is_void(x, y) && !reachable[y * w + x] {
                reachable[y * w + x] = true;
                queue.push_back((x, y));
            }
        }
    }
    for y in 0..h {
        for &x in &[0, w - 1] {
            if is_void(x, y) && !reachable[y * w + x] {
                reachable[y * w + x] = true;
                queue.push_back((x, y));
            }
        }
    }
    while let Some((x, y)) = queue.pop_front() {
        let mut visit = |nx: usize, ny: usize, queue: &mut VecDeque<(usize, usize)>| {
            if is_void(nx, ny) && !reachable[ny * w + nx] {
                reachable[ny * w + nx] = true;
                queue.push_back((nx, ny));
            }
        };
        if x > 0 {
            visit(x - 1, y, &mut queue);
        }
        if x + 1 < w {
            visit(x + 1, y, &mut queue);
        }
        if y > 0 {
            visit(x, y - 1, &mut queue);
        }
        if y + 1 < h {
            visit(x, y + 1, &mut queue);
        }
    }
    let mut enclosed = 0usize;
    for y in 0..h {
        for x in 0..w {
            if is_void(x, y) && !reachable[y * w + x] {
                enclosed += 1;
            }
        }
    }
    enclosed
}

/// Radial alignment: for each material pixel, compare the local material
/// direction with the radial direction from the image center. Implemented
/// via the angular histogram trick: project material occupancy onto a set
/// of spokes and measure how concentrated the angular distribution of
/// material is at fixed radius.
fn radial_anisotropy(img: &Image, threshold: f32) -> f64 {
    let n = img.width.min(img.height);
    if n < 8 {
        return 0.0;
    }
    let c = (n as f64 - 1.0) / 2.0;
    let n_spokes = 72usize;
    let r_max = n as f64 * 0.45;
    let r_min = n as f64 * 0.12; // skip the shaft
                                 // occupancy per spoke
    let mut spoke_occ = vec![0.0f64; n_spokes];
    let mut spoke_cnt = vec![0usize; n_spokes];
    let steps = (r_max - r_min) as usize;
    for (s, occ) in spoke_occ.iter_mut().enumerate() {
        let ang = 2.0 * std::f64::consts::PI * s as f64 / n_spokes as f64;
        for i in 0..steps {
            let r = r_min + i as f64;
            let x = c + r * ang.cos();
            let y = c + r * ang.sin();
            if x < 0.0 || y < 0.0 || x >= img.width as f64 || y >= img.height as f64 {
                continue;
            }
            spoke_cnt[s] += 1;
            if img.get(x as usize, y as usize) > threshold {
                *occ += 1.0;
            }
        }
    }
    let frac: Vec<f64> = spoke_occ
        .iter()
        .zip(spoke_cnt.iter())
        .map(|(&o, &c)| if c > 0 { o / c as f64 } else { 0.0 })
        .collect();
    let mean = frac.iter().sum::<f64>() / n_spokes as f64;
    if mean <= 1e-9 {
        return 0.0;
    }
    // coefficient of variation across spokes, squashed into [0, 1]:
    // straight radial barbules make a few spokes nearly full and the rest
    // empty (high CV); coils spread material evenly (low CV)
    let var = frac.iter().map(|f| (f - mean).powi(2)).sum::<f64>() / n_spokes as f64;
    let cv = var.sqrt() / mean;
    (cv / (1.0 + cv)).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feather::{feather_volume, FeatherSpecies};

    #[test]
    fn sandgrouse_encloses_more_void_than_chicken() {
        let chicken = feather_volume(FeatherSpecies::Chicken, 96, 4, 21);
        let sandgrouse = feather_volume(FeatherSpecies::Sandgrouse, 96, 4, 21);
        let rc = MorphologyReport::of_volume(&chicken, 0.5);
        let rs = MorphologyReport::of_volume(&sandgrouse, 0.5);
        assert!(
            rs.enclosed_void_fraction > 2.0 * rc.enclosed_void_fraction.max(1e-6),
            "sandgrouse {:.4} vs chicken {:.4}",
            rs.enclosed_void_fraction,
            rc.enclosed_void_fraction
        );
    }

    #[test]
    fn chicken_is_more_radially_anisotropic() {
        let chicken = feather_volume(FeatherSpecies::Chicken, 96, 4, 22);
        let sandgrouse = feather_volume(FeatherSpecies::Sandgrouse, 96, 4, 22);
        let rc = MorphologyReport::of_volume(&chicken, 0.5);
        let rs = MorphologyReport::of_volume(&sandgrouse, 0.5);
        assert!(
            rc.radial_anisotropy > rs.radial_anisotropy,
            "chicken {:.3} vs sandgrouse {:.3}",
            rc.radial_anisotropy,
            rs.radial_anisotropy
        );
    }

    #[test]
    fn empty_volume_reports_zeroes() {
        let vol = Volume::zeros(32, 32, 2);
        let r = MorphologyReport::of_volume(&vol, 0.5);
        assert_eq!(r.material_fraction, 0.0);
        assert_eq!(r.radial_anisotropy, 0.0);
        // all void connects to the border: nothing enclosed
        assert_eq!(r.enclosed_void_fraction, 0.0);
    }

    #[test]
    fn solid_ring_encloses_its_interior() {
        let mut img = Image::square(32);
        // draw a solid square ring
        for i in 8..24 {
            img.set(i, 8, 1.0);
            img.set(i, 23, 1.0);
            img.set(8, i, 1.0);
            img.set(23, i, 1.0);
        }
        let enclosed = enclosed_void_count(&img, 0.5);
        // interior is 14x14 = 196 void pixels
        assert_eq!(enclosed, 196);
    }

    #[test]
    fn open_shape_encloses_nothing() {
        let mut img = Image::square(16);
        for i in 0..16 {
            img.set(i, 8, 1.0); // a straight wall
        }
        assert_eq!(enclosed_void_count(&img, 0.5), 0);
    }
}
