//! Feather phantoms for Case Study 1 (Figure 1).
//!
//! The paper compares chicken and sandgrouse feathers: the sandgrouse has
//! evolved *coiled barbule* structures that hold water (desert survival),
//! absent in chicken feathers. We model a feather cross-section as a
//! central rachis (shaft) with barbules radiating outwards:
//!
//! * **Chicken** — straight barbules: thin line segments radiating from
//!   the shaft, giving a strongly anisotropic, low-porosity-contrast
//!   texture;
//! * **Sandgrouse** — coiled barbules: small rings (helical coils seen in
//!   cross-section) scattered around the shaft, giving closed voids that
//!   can store water and an isotropic texture.
//!
//! The [`crate::morphology`] metrics separate the two quantitatively, so
//! the Figure 1 experiment has a pass/fail criterion rather than a picture.

use als_simcore::SimRng;
use als_tomo::{Image, Volume};
use serde::{Deserialize, Serialize};

/// Which feather to synthesize.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FeatherSpecies {
    /// Straight barbules, no water-storage coils.
    Chicken,
    /// Coiled, water-holding barbules.
    Sandgrouse,
}

impl FeatherSpecies {
    pub fn name(&self) -> &'static str {
        match self {
            FeatherSpecies::Chicken => "chicken",
            FeatherSpecies::Sandgrouse => "sandgrouse",
        }
    }
}

const KERATIN: f32 = 1.0;

/// Draw an anti-aliased-ish thick line segment into an image.
fn draw_segment(img: &mut Image, x0: f64, y0: f64, x1: f64, y1: f64, half_width: f64, v: f32) {
    let steps = ((x1 - x0).hypot(y1 - y0).ceil() as usize).max(1) * 2;
    for i in 0..=steps {
        let t = i as f64 / steps as f64;
        let cx = x0 + (x1 - x0) * t;
        let cy = y0 + (y1 - y0) * t;
        stamp_disk(img, cx, cy, half_width, v);
    }
}

/// Draw a ring (annulus) into an image.
fn draw_ring(img: &mut Image, cx: f64, cy: f64, radius: f64, thickness: f64, v: f32) {
    let steps = ((2.0 * std::f64::consts::PI * radius).ceil() as usize).max(8) * 2;
    for i in 0..steps {
        let a = 2.0 * std::f64::consts::PI * i as f64 / steps as f64;
        stamp_disk(
            img,
            cx + radius * a.cos(),
            cy + radius * a.sin(),
            thickness,
            v,
        );
    }
}

fn stamp_disk(img: &mut Image, cx: f64, cy: f64, r: f64, v: f32) {
    let r_ceil = r.ceil() as i64 + 1;
    let xi = cx.round() as i64;
    let yi = cy.round() as i64;
    for dy in -r_ceil..=r_ceil {
        for dx in -r_ceil..=r_ceil {
            let x = xi + dx;
            let y = yi + dy;
            if x < 0 || y < 0 || x as usize >= img.width || y as usize >= img.height {
                continue;
            }
            let d = ((x as f64 - cx).powi(2) + (y as f64 - cy).powi(2)).sqrt();
            if d <= r {
                img.set(x as usize, y as usize, v);
            }
        }
    }
}

/// Render one feather cross-section slice.
///
/// `phase` rotates the barbule arrangement slightly so consecutive slices
/// of a volume differ (as a helical structure would).
pub fn feather_slice(species: FeatherSpecies, n: usize, phase: f64, rng: &mut SimRng) -> Image {
    let mut img = Image::square(n);
    let c = (n as f64 - 1.0) / 2.0;
    let shaft_r = n as f64 * 0.06;
    // rachis: solid central shaft
    stamp_disk(&mut img, c, c, shaft_r, KERATIN);

    let n_barbs = 14;
    let reach = n as f64 * 0.38;
    match species {
        FeatherSpecies::Chicken => {
            // straight barbules radiating outwards
            for b in 0..n_barbs {
                let ang = 2.0 * std::f64::consts::PI * b as f64 / n_barbs as f64
                    + phase
                    + rng.uniform(-0.05, 0.05);
                let x0 = c + shaft_r * ang.cos();
                let y0 = c + shaft_r * ang.sin();
                let x1 = c + reach * ang.cos();
                let y1 = c + reach * ang.sin();
                draw_segment(&mut img, x0, y0, x1, y1, n as f64 * 0.008, KERATIN);
            }
        }
        FeatherSpecies::Sandgrouse => {
            // short barb stubs ending in coiled (ring) barbules
            for b in 0..n_barbs {
                let ang = 2.0 * std::f64::consts::PI * b as f64 / n_barbs as f64
                    + phase
                    + rng.uniform(-0.05, 0.05);
                let stub = reach * 0.35;
                let x0 = c + shaft_r * ang.cos();
                let y0 = c + shaft_r * ang.sin();
                let x1 = c + stub * ang.cos();
                let y1 = c + stub * ang.sin();
                draw_segment(&mut img, x0, y0, x1, y1, n as f64 * 0.008, KERATIN);
                // two to three coils along the remaining reach
                let coil_r = n as f64 * rng.uniform(0.035, 0.055);
                for k in 0..3 {
                    let rr = stub + coil_r * (2.0 * k as f64 + 1.2);
                    if rr + coil_r > n as f64 * 0.48 {
                        break;
                    }
                    draw_ring(
                        &mut img,
                        c + rr * ang.cos(),
                        c + rr * ang.sin(),
                        coil_r,
                        n as f64 * 0.006,
                        KERATIN,
                    );
                }
            }
        }
    }
    img
}

/// Render a feather volume of `nz` slices at `n × n`; the barbule pattern
/// twists slowly along z.
pub fn feather_volume(species: FeatherSpecies, n: usize, nz: usize, seed: u64) -> Volume {
    let mut rng = SimRng::seeded(seed);
    let mut vol = Volume::zeros(n, n, nz);
    for z in 0..nz {
        let phase = 0.15 * z as f64;
        let img = feather_slice(species, n, phase, &mut rng);
        vol.set_slice_xy(z, &img);
    }
    vol
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_species_have_material_and_void() {
        let mut rng = SimRng::seeded(1);
        for sp in [FeatherSpecies::Chicken, FeatherSpecies::Sandgrouse] {
            let img = feather_slice(sp, 96, 0.0, &mut rng);
            let material = img.data.iter().filter(|&&v| v > 0.0).count();
            let frac = material as f64 / img.data.len() as f64;
            assert!(
                (0.01..0.5).contains(&frac),
                "{}: material fraction {frac}",
                sp.name()
            );
        }
    }

    #[test]
    fn shaft_is_present_in_both() {
        let mut rng = SimRng::seeded(2);
        for sp in [FeatherSpecies::Chicken, FeatherSpecies::Sandgrouse] {
            let img = feather_slice(sp, 96, 0.0, &mut rng);
            assert_eq!(img.get(48, 48), KERATIN, "{} shaft missing", sp.name());
        }
    }

    #[test]
    fn sandgrouse_has_more_enclosed_void() {
        // rings enclose empty space; straight lines do not — compare the
        // material at a mid-radius annulus vs enclosed-void structure via
        // morphology in morphology.rs tests; here just check they differ
        let a = feather_volume(FeatherSpecies::Chicken, 96, 4, 7);
        let b = feather_volume(FeatherSpecies::Sandgrouse, 96, 4, 7);
        assert_ne!(a.data, b.data);
    }

    #[test]
    fn volume_twists_along_z() {
        let vol = feather_volume(FeatherSpecies::Chicken, 64, 8, 3);
        assert_ne!(vol.slice_xy(0).data, vol.slice_xy(7).data);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = feather_volume(FeatherSpecies::Sandgrouse, 64, 4, 42);
        let b = feather_volume(FeatherSpecies::Sandgrouse, 64, 4, 42);
        assert_eq!(a.data, b.data);
        let c = feather_volume(FeatherSpecies::Sandgrouse, 64, 4, 43);
        assert_ne!(a.data, c.data);
    }
}
