//! Simulated time: instants, durations, and the clock owned by a simulation.
//!
//! Time is kept as integer **microseconds** since simulation start. The
//! paper's quantities span five orders of magnitude — sub-millisecond event
//! handling up to multi-hour campaigns — and integer microseconds represent
//! all of them exactly (no drift from float accumulation) while still
//! covering ~584k years in a `u64`.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulated time (microseconds since simulation start).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimInstant(u64);

/// A span of simulated time (microseconds).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimInstant {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimInstant = SimInstant(0);

    /// Construct from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimInstant(us)
    }

    /// Raw microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch as `f64` (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration elapsed since `earlier`; saturates to zero if `earlier` is
    /// in the future.
    pub fn duration_since(self, earlier: SimInstant) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Latest of two instants.
    pub fn max(self, other: SimInstant) -> SimInstant {
        SimInstant(self.0.max(other.0))
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60_000_000)
    }

    pub const fn from_hours(h: u64) -> Self {
        SimDuration(h * 3_600_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest
    /// microsecond. Negative or non-finite inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((s * 1e6).round() as u64)
    }

    pub const fn as_micros(self) -> u64 {
        self.0
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }
}

impl Add<SimDuration> for SimInstant {
    type Output = SimInstant;
    fn add(self, rhs: SimDuration) -> SimInstant {
        SimInstant(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimInstant {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimInstant {
    type Output = SimInstant;
    fn sub(self, rhs: SimDuration) -> SimInstant {
        SimInstant(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimInstant> for SimInstant {
    type Output = SimDuration;
    fn sub(self, rhs: SimInstant) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimInstant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.as_secs_f64();
        if s < 1e-3 {
            write!(f, "{:.0}us", self.0)
        } else if s < 1.0 {
            write!(f, "{:.1}ms", s * 1e3)
        } else if s < 120.0 {
            write!(f, "{s:.2}s")
        } else if s < 7200.0 {
            write!(f, "{:.1}min", s / 60.0)
        } else {
            write!(f, "{:.2}h", s / 3600.0)
        }
    }
}

/// The clock owned by a running simulation. Only the event loop may advance
/// it, and it never moves backwards.
#[derive(Debug, Default, Clone)]
pub struct SimClock {
    now: SimInstant,
}

impl SimClock {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn now(&self) -> SimInstant {
        self.now
    }

    /// Advance to `t`.
    ///
    /// # Panics
    /// Panics if `t` is earlier than the current time — that would mean the
    /// event queue handed out events out of order, which is a kernel bug.
    pub fn advance_to(&mut self, t: SimInstant) {
        assert!(
            t >= self.now,
            "simulation clock moved backwards: {} -> {}",
            self.now,
            t
        );
        self.now = t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(1).as_micros(), 1_000_000);
        assert_eq!(
            SimDuration::from_millis(1500),
            SimDuration::from_micros(1_500_000)
        );
        assert_eq!(SimDuration::from_mins(2), SimDuration::from_secs(120));
        assert_eq!(SimDuration::from_hours(1), SimDuration::from_mins(60));
    }

    #[test]
    fn from_secs_f64_rounds_and_clamps() {
        assert_eq!(SimDuration::from_secs_f64(0.5).as_micros(), 500_000);
        assert_eq!(SimDuration::from_secs_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
    }

    #[test]
    fn instant_arithmetic() {
        let t0 = SimInstant::ZERO;
        let t1 = t0 + SimDuration::from_secs(10);
        assert_eq!((t1 - t0).as_secs_f64(), 10.0);
        assert_eq!(t0.duration_since(t1), SimDuration::ZERO);
        assert_eq!(t1.duration_since(t0), SimDuration::from_secs(10));
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut c = SimClock::new();
        c.advance_to(SimInstant::from_micros(5));
        c.advance_to(SimInstant::from_micros(5));
        c.advance_to(SimInstant::from_micros(9));
        assert_eq!(c.now().as_micros(), 9);
    }

    #[test]
    #[should_panic(expected = "moved backwards")]
    fn clock_rejects_backwards_motion() {
        let mut c = SimClock::new();
        c.advance_to(SimInstant::from_micros(5));
        c.advance_to(SimInstant::from_micros(4));
    }

    #[test]
    fn display_picks_sane_units() {
        assert_eq!(format!("{}", SimDuration::from_micros(250)), "250us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.0ms");
        assert_eq!(format!("{}", SimDuration::from_secs(90)), "90.00s");
        assert_eq!(format!("{}", SimDuration::from_mins(25)), "25.0min");
        assert_eq!(format!("{}", SimDuration::from_hours(3)), "3.00h");
    }
}
