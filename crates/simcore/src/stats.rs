//! Summary statistics in the exact shape of the paper's Table 2:
//! `N`, `mean ± SD`, median, `[min, max]`.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Five-number summary of a sample, matching Table 2's columns.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    pub n: usize,
    pub mean: f64,
    pub sd: f64,
    pub median: f64,
    pub min: f64,
    pub max: f64,
}

impl Summary {
    /// Compute a summary from a sample. Returns `None` for an empty sample.
    ///
    /// The standard deviation is the *sample* SD (n−1 denominator), which is
    /// what Prefect-style monitoring dashboards report. The median of an
    /// even-length sample is the mean of the two central order statistics.
    pub fn from_slice(values: &[f64]) -> Option<Summary> {
        if values.is_empty() {
            return None;
        }
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let sd = if n > 1 {
            let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
            var.sqrt()
        } else {
            0.0
        };
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        let median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
        };
        Some(Summary {
            n,
            mean,
            sd,
            median,
            min: sorted[0],
            max: sorted[n - 1],
        })
    }

    /// Percentile via nearest-rank on a copy of the data (0.0..=100.0).
    pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
        if values.is_empty() {
            return None;
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
        Some(sorted[rank.min(sorted.len() - 1)])
    }

    /// Format as a Table 2 row: `N  mean ± SD  median  [min, max]`,
    /// durations rounded to whole seconds like the paper.
    pub fn table2_row(&self, name: &str) -> String {
        format!(
            "{:<18} {:>4} {:>6.0} ± {:<6.0} {:>6.0} [{:.0}, {:.0}]",
            name, self.n, self.mean, self.sd, self.median, self.min, self.max
        )
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.1}±{:.1} med={:.1} range=[{:.1}, {:.1}]",
            self.n, self.mean, self.sd, self.median, self.min, self.max
        )
    }
}

/// Online mean/variance accumulator (Welford). Used by long-running
/// monitors (e.g. the Grafana-style bandwidth tracker) where storing every
/// sample would be wasteful.
#[derive(Debug, Default, Clone, Copy)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    pub fn count(&self) -> u64 {
        self.n
    }

    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample standard deviation (n−1).
    pub fn sd(&self) -> f64 {
        if self.n > 1 {
            (self.m2 / (self.n - 1) as f64).sqrt()
        } else {
            0.0
        }
    }

    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // sample sd of this classic dataset = sqrt(32/7)
        assert!((s.sd - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert!((s.median - 4.5).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn empty_sample_is_none() {
        assert!(Summary::from_slice(&[]).is_none());
        assert!(Summary::percentile(&[], 50.0).is_none());
    }

    #[test]
    fn single_sample_has_zero_sd() {
        let s = Summary::from_slice(&[3.5]).unwrap();
        assert_eq!(s.sd, 0.0);
        assert_eq!(s.median, 3.5);
    }

    #[test]
    fn odd_length_median_is_central_element() {
        let s = Summary::from_slice(&[9.0, 1.0, 5.0]).unwrap();
        assert_eq!(s.median, 5.0);
    }

    #[test]
    fn percentiles_bracket_the_data() {
        let v: Vec<f64> = (0..101).map(|i| i as f64).collect();
        assert_eq!(Summary::percentile(&v, 0.0), Some(0.0));
        assert_eq!(Summary::percentile(&v, 50.0), Some(50.0));
        assert_eq!(Summary::percentile(&v, 100.0), Some(100.0));
    }

    #[test]
    fn online_matches_batch() {
        let data: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64).collect();
        let batch = Summary::from_slice(&data).unwrap();
        let mut online = OnlineStats::new();
        for &x in &data {
            online.push(x);
        }
        assert!((online.mean() - batch.mean).abs() < 1e-9);
        assert!((online.sd() - batch.sd).abs() < 1e-9);
        assert_eq!(online.min(), batch.min);
        assert_eq!(online.max(), batch.max);
        assert_eq!(online.count() as usize, batch.n);
    }

    #[test]
    fn table2_row_formats_like_paper() {
        let s = Summary {
            n: 100,
            mean: 120.0,
            sd: 171.0,
            median: 56.0,
            min: 30.0,
            max: 676.0,
        };
        let row = s.table2_row("new_file_832");
        assert!(row.contains("100"));
        assert!(row.contains("120"));
        assert!(row.contains("171"));
        assert!(row.contains("[30, 676]"));
    }
}
