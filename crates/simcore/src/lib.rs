//! # als-simcore
//!
//! Deterministic discrete-event simulation (DES) kernel plus the shared
//! vocabulary types used across the `als-flows` workspace: simulated time,
//! byte sizes, data rates, seeded random workload models, and summary
//! statistics.
//!
//! The multi-facility workflow experiments from the paper (Table 2, Figure 3,
//! the data-lifecycle and incident studies) run at *paper scale* — 20–30 GB
//! scans, hour-long campaigns, two HPC centers — which cannot execute for
//! real on a laptop. They instead replay on this kernel: every component
//! (network link, batch scheduler, orchestration engine) is a process that
//! exchanges timestamped events through [`EventQueue`]. The kernel is
//! single-threaded and fully deterministic under a fixed seed, so every
//! experiment in EXPERIMENTS.md is exactly reproducible.

pub mod clock;
pub mod events;
pub mod rng;
pub mod stats;
pub mod units;

pub use clock::{SimClock, SimDuration, SimInstant};
pub use events::{EventQueue, ScheduledEvent};
pub use rng::{SimRng, WorkloadDist};
pub use stats::{OnlineStats, Summary};
pub use units::{ByteSize, DataRate};

/// Monotonic id generator for entities inside a simulation (jobs, transfers,
/// flow runs, ...). Plain `u64`s keep event payloads `Copy` and hashable.
#[derive(Debug, Default, Clone)]
pub struct IdGen {
    next: u64,
}

impl IdGen {
    /// Create a generator that starts at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Return the next id, then advance.
    pub fn next_id(&mut self) -> u64 {
        let id = self.next;
        self.next += 1;
        id
    }

    /// Number of ids handed out so far.
    pub fn issued(&self) -> u64 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idgen_is_monotonic() {
        let mut g = IdGen::new();
        assert_eq!(g.next_id(), 0);
        assert_eq!(g.next_id(), 1);
        assert_eq!(g.next_id(), 2);
        assert_eq!(g.issued(), 3);
    }
}
