//! Seeded randomness and the workload distributions used by the
//! paper-scale experiments.
//!
//! Everything stochastic in the simulation draws from a [`SimRng`] created
//! with an explicit seed, so each experiment is reproducible bit-for-bit.
//! [`WorkloadDist`] captures the shapes the paper reports: scan sizes
//! ("a few MB" cropped tests up to >30 GB full scans — strongly bimodal),
//! queue jitter, and service-time noise.

use crate::units::ByteSize;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, LogNormal, Normal};
use serde::{Deserialize, Serialize};

/// A seeded random source for simulations.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Create from an explicit 64-bit seed.
    pub fn seeded(seed: u64) -> Self {
        Self {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derive an independent child stream (used to give each facility its
    /// own stream so adding draws in one place cannot shift another's).
    pub fn fork(&mut self, tag: u64) -> SimRng {
        let s: u64 = self.inner.gen::<u64>() ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::seeded(s)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return lo;
        }
        self.inner.gen_range(lo..hi)
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        self.inner.gen_range(lo..hi)
    }

    /// Bernoulli trial.
    pub fn chance(&mut self, p: f64) -> bool {
        self.inner.gen::<f64>() < p
    }

    /// Normal sample clamped to be non-negative.
    pub fn normal_pos(&mut self, mean: f64, sd: f64) -> f64 {
        let n = Normal::new(mean, sd.max(f64::EPSILON)).expect("valid normal");
        n.sample(&mut self.inner).max(0.0)
    }

    /// Log-normal sample parameterised by the *median* and a multiplicative
    /// spread `sigma` (sd of the underlying normal). Heavy right tail, which
    /// matches the skew in Table 2's `new_file_832` row (mean 120 s, median
    /// 56 s).
    pub fn lognormal_med(&mut self, median: f64, sigma: f64) -> f64 {
        let ln = LogNormal::new(median.max(f64::MIN_POSITIVE).ln(), sigma.max(f64::EPSILON))
            .expect("valid lognormal");
        ln.sample(&mut self.inner)
    }

    /// Exponential inter-arrival sample with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u: f64 = self.inner.gen_range(f64::EPSILON..1.0);
        -mean * u.ln()
    }

    /// Access the raw rng for `rand_distr` composition.
    pub fn raw(&mut self) -> &mut StdRng {
        &mut self.inner
    }
}

/// Distribution shapes used by workload generators.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum WorkloadDist {
    /// Every sample is the same value.
    Constant(f64),
    /// Uniform over `[lo, hi)`.
    Uniform { lo: f64, hi: f64 },
    /// Normal clamped at zero.
    Normal { mean: f64, sd: f64 },
    /// Log-normal with given median and multiplicative spread.
    LogNormal { median: f64, sigma: f64 },
    /// Mixture of two branches: with probability `p` draw from `a`,
    /// otherwise from `b`. Captures the cropped-test vs full-scan
    /// bimodality of beamline file sizes.
    Mix {
        p: f64,
        a: Box<WorkloadDist>,
        b: Box<WorkloadDist>,
    },
}

impl WorkloadDist {
    /// Draw one sample.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        match self {
            WorkloadDist::Constant(v) => *v,
            WorkloadDist::Uniform { lo, hi } => rng.uniform(*lo, *hi),
            WorkloadDist::Normal { mean, sd } => rng.normal_pos(*mean, *sd),
            WorkloadDist::LogNormal { median, sigma } => rng.lognormal_med(*median, *sigma),
            WorkloadDist::Mix { p, a, b } => {
                if rng.chance(*p) {
                    a.sample(rng)
                } else {
                    b.sample(rng)
                }
            }
        }
    }

    /// Draw a sample clamped to `[lo, hi]`.
    pub fn sample_clamped(&self, rng: &mut SimRng, lo: f64, hi: f64) -> f64 {
        self.sample(rng).clamp(lo, hi)
    }

    /// Interpret the sample as GiB and convert.
    pub fn sample_bytes(&self, rng: &mut SimRng) -> ByteSize {
        ByteSize::from_gib_f64(self.sample(rng))
    }

    /// The beamline 8.3.2 scan-size model from the paper: ~20% cropped test
    /// scans of a few MB, ~80% scientific scans of 20–30 GB (occasionally
    /// larger).
    pub fn beamline_scan_sizes() -> WorkloadDist {
        WorkloadDist::Mix {
            p: 0.2,
            a: Box::new(WorkloadDist::LogNormal {
                median: 0.005, // ~5 MB cropped test scans
                sigma: 0.8,
            }),
            b: Box::new(WorkloadDist::Normal {
                mean: 24.0, // GiB, "typical scientific scans are between 20-30 GB"
                sd: 5.0,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seeded(42);
        let mut b = SimRng::seeded(42);
        for _ in 0..64 {
            assert_eq!(a.unit().to_bits(), b.unit().to_bits());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seeded(1);
        let mut b = SimRng::seeded(2);
        let same = (0..32).filter(|_| a.unit() == b.unit()).count();
        assert!(same < 4);
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let mut base1 = SimRng::seeded(7);
        let mut base2 = SimRng::seeded(7);
        let mut c1 = base1.fork(1);
        let mut c2 = base2.fork(1);
        for _ in 0..16 {
            assert_eq!(c1.unit().to_bits(), c2.unit().to_bits());
        }
    }

    #[test]
    fn lognormal_median_is_close() {
        let mut rng = SimRng::seeded(9);
        let mut v: Vec<f64> = (0..20_000).map(|_| rng.lognormal_med(56.0, 1.0)).collect();
        v.sort_by(f64::total_cmp);
        let med = v[v.len() / 2];
        assert!((med - 56.0).abs() / 56.0 < 0.05, "median {med}");
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = SimRng::seeded(11);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(30.0)).sum::<f64>() / n as f64;
        assert!((mean - 30.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn beamline_scan_sizes_are_bimodal() {
        let dist = WorkloadDist::beamline_scan_sizes();
        let mut rng = SimRng::seeded(3);
        let sizes: Vec<ByteSize> = (0..2000).map(|_| dist.sample_bytes(&mut rng)).collect();
        let small = sizes.iter().filter(|s| s.as_gib_f64() < 1.0).count();
        let big = sizes.iter().filter(|s| s.as_gib_f64() > 15.0).count();
        // ~20% small test scans, the bulk between 20-30 GiB
        assert!((small as f64 / 2000.0 - 0.2).abs() < 0.05, "small {small}");
        assert!(big as f64 / 2000.0 > 0.7, "big {big}");
    }

    #[test]
    fn normal_pos_never_negative() {
        let mut rng = SimRng::seeded(5);
        for _ in 0..5000 {
            assert!(rng.normal_pos(0.1, 10.0) >= 0.0);
        }
    }
}
