//! The event queue at the heart of the discrete-event kernel.
//!
//! Events are ordered by `(time, sequence)`: ties at the same instant are
//! delivered in the order they were scheduled, which keeps the simulation
//! deterministic regardless of payload type.

use crate::clock::{SimClock, SimDuration, SimInstant};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event scheduled for a point in simulated time.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    pub at: SimInstant,
    seq: u64,
    pub payload: E,
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for ScheduledEvent<E> {}

impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for ScheduledEvent<E> {
    // BinaryHeap is a max-heap; invert so the earliest event pops first.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic future-event list bound to a [`SimClock`].
///
/// ```
/// use als_simcore::{EventQueue, SimDuration};
///
/// let mut q: EventQueue<&str> = EventQueue::new();
/// q.schedule_in(SimDuration::from_secs(5), "later");
/// q.schedule_in(SimDuration::from_secs(1), "sooner");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!(e, "sooner");
/// assert_eq!(t.as_secs_f64(), 1.0);
/// ```
#[derive(Debug, Default)]
pub struct EventQueue<E> {
    clock: SimClock,
    heap: BinaryHeap<ScheduledEvent<E>>,
    seq: u64,
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        Self {
            clock: SimClock::new(),
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimInstant {
        self.clock.now()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `payload` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the simulated past.
    pub fn schedule_at(&mut self, at: SimInstant, payload: E) {
        assert!(
            at >= self.clock.now(),
            "cannot schedule into the past ({} < {})",
            at,
            self.clock.now()
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(ScheduledEvent { at, seq, payload });
    }

    /// Schedule `payload` after a relative delay.
    pub fn schedule_in(&mut self, delay: SimDuration, payload: E) {
        self.schedule_at(self.clock.now() + delay, payload);
    }

    /// Pop the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimInstant, E)> {
        let ev = self.heap.pop()?;
        self.clock.advance_to(ev.at);
        Some((ev.at, ev.payload))
    }

    /// Peek at the timestamp of the next event without consuming it.
    pub fn peek_time(&self) -> Option<SimInstant> {
        self.heap.peek().map(|e| e.at)
    }

    /// Drain every event, in order, into a handler. Events scheduled by the
    /// handler itself are also delivered; the loop ends when the queue is
    /// empty or `until` (if given) is passed.
    pub fn run<F>(&mut self, until: Option<SimInstant>, mut handler: F)
    where
        F: FnMut(&mut Self, SimInstant, E),
    {
        loop {
            match self.peek_time() {
                None => break,
                Some(t) if until.is_some_and(|u| t > u) => break,
                Some(_) => {
                    let (t, e) = self.pop().expect("peeked event must pop");
                    handler(self, t, e);
                }
            }
        }
        if let Some(u) = until {
            if u >= self.clock.now() {
                self.clock.advance_to(u);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimInstant::from_micros(30), "c");
        q.schedule_at(SimInstant::from_micros(10), "a");
        q.schedule_at(SimInstant::from_micros(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_schedule_order() {
        let mut q = EventQueue::new();
        let t = SimInstant::from_micros(7);
        for i in 0..100 {
            q.schedule_at(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pop_advances_clock() {
        let mut q = EventQueue::new();
        q.schedule_in(SimDuration::from_secs(3), ());
        q.pop();
        assert_eq!(q.now().as_secs_f64(), 3.0);
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_in(SimDuration::from_secs(1), 1u8);
        q.pop();
        q.schedule_at(SimInstant::from_micros(10), 2u8);
    }

    #[test]
    fn run_delivers_cascading_events() {
        let mut q = EventQueue::new();
        q.schedule_in(SimDuration::from_secs(1), 0u32);
        let mut seen = Vec::new();
        q.run(None, |q, _t, depth| {
            seen.push(depth);
            if depth < 3 {
                q.schedule_in(SimDuration::from_secs(1), depth + 1);
            }
        });
        assert_eq!(seen, vec![0, 1, 2, 3]);
        assert_eq!(q.now().as_secs_f64(), 4.0);
    }

    #[test]
    fn run_respects_horizon() {
        let mut q = EventQueue::new();
        for s in 1..=10 {
            q.schedule_in(SimDuration::from_secs(s), s);
        }
        let mut seen = Vec::new();
        q.run(
            Some(SimInstant::ZERO + SimDuration::from_secs(4)),
            |_, _, e| seen.push(e),
        );
        assert_eq!(seen, vec![1, 2, 3, 4]);
        // clock parked exactly at the horizon, later events still queued
        assert_eq!(q.now().as_secs_f64(), 4.0);
        assert_eq!(q.len(), 6);
    }
}
