//! Byte sizes and data rates.
//!
//! Scan sizes in the paper range from "a few MB" (cropped test scans) to
//! over 30 GB (full-resolution scans), and links range from the beamline's
//! 10 Gbps NIC to ESnet backbone capacity. Keeping both as dedicated types
//! prevents the classic bits/bytes and MB/MiB mix-ups in the cost models.

use crate::clock::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A size in bytes.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ByteSize(u64);

impl ByteSize {
    pub const ZERO: ByteSize = ByteSize(0);

    pub const fn from_bytes(b: u64) -> Self {
        ByteSize(b)
    }

    pub const fn from_kib(k: u64) -> Self {
        ByteSize(k * 1024)
    }

    pub const fn from_mib(m: u64) -> Self {
        ByteSize(m * 1024 * 1024)
    }

    pub const fn from_gib(g: u64) -> Self {
        ByteSize(g * 1024 * 1024 * 1024)
    }

    pub const fn from_tib(t: u64) -> Self {
        ByteSize(t * 1024 * 1024 * 1024 * 1024)
    }

    /// From fractional GiB (workload models sample sizes as floats).
    pub fn from_gib_f64(g: f64) -> Self {
        ByteSize((g.max(0.0) * (1u64 << 30) as f64) as u64)
    }

    pub const fn as_bytes(self) -> u64 {
        self.0
    }

    pub fn as_mib_f64(self) -> f64 {
        self.0 as f64 / (1u64 << 20) as f64
    }

    pub fn as_gib_f64(self) -> f64 {
        self.0 as f64 / (1u64 << 30) as f64
    }

    pub fn as_tib_f64(self) -> f64 {
        self.0 as f64 / (1u64 << 40) as f64
    }

    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    pub fn saturating_sub(self, other: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_sub(other.0))
    }

    pub fn min(self, other: ByteSize) -> ByteSize {
        ByteSize(self.0.min(other.0))
    }

    pub fn max(self, other: ByteSize) -> ByteSize {
        ByteSize(self.0.max(other.0))
    }
}

impl Add for ByteSize {
    type Output = ByteSize;
    fn add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 + rhs.0)
    }
}

impl AddAssign for ByteSize {
    fn add_assign(&mut self, rhs: ByteSize) {
        self.0 += rhs.0;
    }
}

impl Sub for ByteSize {
    type Output = ByteSize;
    fn sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for ByteSize {
    fn sub_assign(&mut self, rhs: ByteSize) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for ByteSize {
    type Output = ByteSize;
    fn mul(self, rhs: u64) -> ByteSize {
        ByteSize(self.0 * rhs)
    }
}

impl Mul<f64> for ByteSize {
    type Output = ByteSize;
    fn mul(self, rhs: f64) -> ByteSize {
        ByteSize((self.0 as f64 * rhs.max(0.0)) as u64)
    }
}

impl Div<u64> for ByteSize {
    type Output = ByteSize;
    fn div(self, rhs: u64) -> ByteSize {
        ByteSize(self.0 / rhs)
    }
}

impl Sum for ByteSize {
    fn sum<I: Iterator<Item = ByteSize>>(iter: I) -> ByteSize {
        ByteSize(iter.map(|b| b.0).sum())
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const KIB: f64 = 1024.0;
        let b = self.0 as f64;
        if b < KIB {
            write!(f, "{}B", self.0)
        } else if b < KIB * KIB {
            write!(f, "{:.1}KiB", b / KIB)
        } else if b < KIB * KIB * KIB {
            write!(f, "{:.1}MiB", b / (KIB * KIB))
        } else if b < KIB * KIB * KIB * KIB {
            write!(f, "{:.2}GiB", b / (KIB * KIB * KIB))
        } else {
            write!(f, "{:.2}TiB", b / (KIB * KIB * KIB * KIB))
        }
    }
}

/// A data rate in bytes per second.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct DataRate(f64);

impl DataRate {
    pub const ZERO: DataRate = DataRate(0.0);

    /// Bytes per second.
    pub fn from_bytes_per_sec(b: f64) -> Self {
        DataRate(b.max(0.0))
    }

    /// Megabytes (decimal, as network gear reports) per second.
    pub fn from_mbps_bytes(mb: f64) -> Self {
        DataRate((mb * 1e6).max(0.0))
    }

    /// Gigabits per second — the unit NICs and WAN links are quoted in
    /// (e.g. the beamline VM's 10 Gbps VMXNET3 NIC).
    pub fn from_gbit_per_sec(gbit: f64) -> Self {
        DataRate((gbit * 1e9 / 8.0).max(0.0))
    }

    pub fn as_bytes_per_sec(self) -> f64 {
        self.0
    }

    pub fn as_gbit_per_sec(self) -> f64 {
        self.0 * 8.0 / 1e9
    }

    /// Time to move `size` at this rate. Returns `None` for a zero rate
    /// (a stalled link never completes — callers must handle it).
    pub fn transfer_time(self, size: ByteSize) -> Option<SimDuration> {
        if self.0 <= 0.0 {
            return None;
        }
        Some(SimDuration::from_secs_f64(size.as_bytes() as f64 / self.0))
    }

    /// Bytes moved in `dt` at this rate.
    pub fn bytes_in(self, dt: SimDuration) -> ByteSize {
        ByteSize::from_bytes((self.0 * dt.as_secs_f64()) as u64)
    }

    /// Split this rate evenly across `n` concurrent flows (the fair-share
    /// model `netsim` uses for contended links).
    pub fn shared(self, n: usize) -> DataRate {
        if n <= 1 {
            self
        } else {
            DataRate(self.0 / n as f64)
        }
    }

    pub fn min(self, other: DataRate) -> DataRate {
        DataRate(self.0.min(other.0))
    }
}

impl Mul<f64> for DataRate {
    type Output = DataRate;
    fn mul(self, rhs: f64) -> DataRate {
        DataRate((self.0 * rhs).max(0.0))
    }
}

impl fmt::Display for DataRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}Gbps", self.as_gbit_per_sec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale_correctly() {
        assert_eq!(ByteSize::from_kib(1).as_bytes(), 1024);
        assert_eq!(ByteSize::from_mib(1).as_bytes(), 1 << 20);
        assert_eq!(ByteSize::from_gib(1).as_bytes(), 1 << 30);
        assert_eq!(ByteSize::from_tib(1).as_bytes(), 1u64 << 40);
        assert!((ByteSize::from_gib(30).as_gib_f64() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn display_is_human_readable() {
        assert_eq!(format!("{}", ByteSize::from_bytes(12)), "12B");
        assert_eq!(format!("{}", ByteSize::from_mib(25)), "25.0MiB");
        assert_eq!(format!("{}", ByteSize::from_gib(30)), "30.00GiB");
        assert_eq!(format!("{}", ByteSize::from_tib(5)), "5.00TiB");
    }

    #[test]
    fn gbit_rate_roundtrips() {
        let r = DataRate::from_gbit_per_sec(10.0);
        assert!((r.as_gbit_per_sec() - 10.0).abs() < 1e-9);
        // 10 Gbps == 1.25 GB/s
        assert!((r.as_bytes_per_sec() - 1.25e9).abs() < 1.0);
    }

    #[test]
    fn transfer_time_matches_hand_calc() {
        // 20 GB over 10 Gbps ~= 17.18 s (GiB vs decimal gigabit)
        let r = DataRate::from_gbit_per_sec(10.0);
        let t = r.transfer_time(ByteSize::from_gib(20)).unwrap();
        assert!((t.as_secs_f64() - 17.18).abs() < 0.01, "{t}");
    }

    #[test]
    fn zero_rate_never_completes() {
        assert!(DataRate::ZERO
            .transfer_time(ByteSize::from_mib(1))
            .is_none());
    }

    #[test]
    fn fair_share_divides_rate() {
        let r = DataRate::from_gbit_per_sec(8.0).shared(4);
        assert!((r.as_gbit_per_sec() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn bytes_in_inverts_transfer_time() {
        let r = DataRate::from_mbps_bytes(250.0);
        let size = ByteSize::from_mib(100);
        let t = r.transfer_time(size).unwrap();
        let moved = r.bytes_in(t);
        let err = moved.as_bytes().abs_diff(size.as_bytes());
        assert!(err <= 512, "moved {moved} vs {size}");
    }
}
