//! # als-catalog
//!
//! Metadata catalogue — the SciCat substitute. "Metadata for each scan is
//! searchable in SciCat"; datasets carry instrument metadata, FAIR-style
//! persistent identifiers, and provenance links from derived data (the
//! reconstruction) back to raw data (the scan).
//!
//! §5.3 also flags the *absence of standardized sample metadata* as a
//! limitation; [`SampleMetadata`] models the missing fields so downstream
//! work (and the catalogue completeness report) can quantify the gap.

use als_simcore::{ByteSize, SimInstant};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Persistent dataset identifier (SciCat PID substitute).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DatasetPid(pub String);

/// Raw vs derived dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DatasetKind {
    /// Raw acquisition (the HDF5 scan file).
    Raw,
    /// Derived data (reconstruction, segmentation, ...).
    Derived,
}

/// Instrument metadata captured automatically per scan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct InstrumentMetadata {
    pub beamline: String,
    pub n_angles: usize,
    pub detector_rows: usize,
    pub detector_cols: usize,
    pub pixel_size_um: f64,
    pub exposure_ms: f64,
}

/// The sample metadata the paper says is *not* yet standardized:
/// "provenance, preparation methods, in situ conditions, and material
/// classifications". All optional, so completeness can be measured.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct SampleMetadata {
    pub description: Option<String>,
    pub preparation: Option<String>,
    pub in_situ_conditions: Option<String>,
    pub material_class: Option<String>,
}

impl SampleMetadata {
    /// Fraction of the four standardized fields that are filled.
    pub fn completeness(&self) -> f64 {
        let filled = [
            self.description.is_some(),
            self.preparation.is_some(),
            self.in_situ_conditions.is_some(),
            self.material_class.is_some(),
        ]
        .iter()
        .filter(|&&b| b)
        .count();
        filled as f64 / 4.0
    }
}

/// A catalogued dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    pub pid: DatasetPid,
    pub kind: DatasetKind,
    pub name: String,
    pub owner: String,
    pub created: SimInstant,
    pub size: ByteSize,
    pub instrument: InstrumentMetadata,
    pub sample: SampleMetadata,
    /// PIDs of the datasets this one was derived from.
    pub derived_from: Vec<DatasetPid>,
    /// Free-form scientific metadata.
    pub scientific: BTreeMap<String, String>,
}

/// Errors from catalogue operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogError {
    DuplicatePid(String),
    NotFound(String),
    /// A provenance link points at a PID the catalogue has never seen.
    DanglingProvenance(String),
}

impl std::fmt::Display for CatalogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CatalogError::DuplicatePid(p) => write!(f, "duplicate pid: {p}"),
            CatalogError::NotFound(p) => write!(f, "dataset not found: {p}"),
            CatalogError::DanglingProvenance(p) => write!(f, "dangling provenance link: {p}"),
        }
    }
}

impl std::error::Error for CatalogError {}

/// The catalogue.
#[derive(Debug, Default)]
pub struct Catalog {
    datasets: BTreeMap<DatasetPid, Dataset>,
}

impl Catalog {
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingest a dataset. Provenance links must reference existing PIDs.
    pub fn ingest(&mut self, ds: Dataset) -> Result<(), CatalogError> {
        if self.datasets.contains_key(&ds.pid) {
            return Err(CatalogError::DuplicatePid(ds.pid.0.clone()));
        }
        for parent in &ds.derived_from {
            if !self.datasets.contains_key(parent) {
                return Err(CatalogError::DanglingProvenance(parent.0.clone()));
            }
        }
        self.datasets.insert(ds.pid.clone(), ds);
        Ok(())
    }

    pub fn get(&self, pid: &DatasetPid) -> Result<&Dataset, CatalogError> {
        self.datasets
            .get(pid)
            .ok_or_else(|| CatalogError::NotFound(pid.0.clone()))
    }

    pub fn len(&self) -> usize {
        self.datasets.len()
    }

    pub fn is_empty(&self) -> bool {
        self.datasets.is_empty()
    }

    /// Case-insensitive free-text search over names, owners, and
    /// scientific metadata values.
    pub fn search(&self, query: &str) -> Vec<&Dataset> {
        let q = query.to_ascii_lowercase();
        self.datasets
            .values()
            .filter(|d| {
                d.name.to_ascii_lowercase().contains(&q)
                    || d.owner.to_ascii_lowercase().contains(&q)
                    || d.scientific
                        .values()
                        .any(|v| v.to_ascii_lowercase().contains(&q))
            })
            .collect()
    }

    /// Datasets derived (transitively) from `pid` — the forward provenance
    /// graph a user follows from a raw scan to its products.
    pub fn derived_chain(&self, pid: &DatasetPid) -> Vec<&Dataset> {
        let mut out = Vec::new();
        let mut frontier = vec![pid.clone()];
        while let Some(cur) = frontier.pop() {
            for d in self.datasets.values() {
                if d.derived_from.contains(&cur) && !out.iter().any(|o: &&Dataset| o.pid == d.pid) {
                    out.push(d);
                    frontier.push(d.pid.clone());
                }
            }
        }
        out
    }

    /// Datasets created within a time window (beamtime review queries).
    pub fn created_between(&self, from: SimInstant, to: SimInstant) -> Vec<&Dataset> {
        self.datasets
            .values()
            .filter(|d| d.created >= from && d.created <= to)
            .collect()
    }

    /// Datasets owned by a user (what a visiting user sees after leaving).
    pub fn owned_by(&self, owner: &str) -> Vec<&Dataset> {
        self.datasets
            .values()
            .filter(|d| d.owner == owner)
            .collect()
    }

    /// Total catalogued bytes per dataset kind — the storage-review
    /// dashboard's headline numbers.
    pub fn bytes_by_kind(&self) -> (ByteSize, ByteSize) {
        let mut raw = ByteSize::ZERO;
        let mut derived = ByteSize::ZERO;
        for d in self.datasets.values() {
            match d.kind {
                DatasetKind::Raw => raw += d.size,
                DatasetKind::Derived => derived += d.size,
            }
        }
        (raw, derived)
    }

    /// Export the full catalogue as JSON — the FAIR "machine-readable
    /// metadata" requirement of the DOE Public Access Plan.
    pub fn export_json(&self) -> String {
        let all: Vec<&Dataset> = self.datasets.values().collect();
        serde_json::to_string_pretty(&all).expect("datasets serialize")
    }

    /// Mean sample-metadata completeness across all datasets — the
    /// quantified version of the paper's §5.3 limitation.
    pub fn sample_metadata_completeness(&self) -> f64 {
        if self.datasets.is_empty() {
            return 0.0;
        }
        self.datasets
            .values()
            .map(|d| d.sample.completeness())
            .sum::<f64>()
            / self.datasets.len() as f64
    }
}

/// Convenience constructor for a raw-scan dataset.
pub fn raw_scan_dataset(
    scan_id: &str,
    owner: &str,
    created: SimInstant,
    size: ByteSize,
    instrument: InstrumentMetadata,
) -> Dataset {
    Dataset {
        pid: DatasetPid(format!("als/8.3.2/raw/{scan_id}")),
        kind: DatasetKind::Raw,
        name: scan_id.to_string(),
        owner: owner.to_string(),
        created,
        size,
        instrument,
        sample: SampleMetadata::default(),
        derived_from: Vec::new(),
        scientific: BTreeMap::new(),
    }
}

/// Convenience constructor for a reconstruction derived from a raw scan.
pub fn recon_dataset(
    scan_id: &str,
    facility: &str,
    raw: &DatasetPid,
    created: SimInstant,
    size: ByteSize,
) -> Dataset {
    Dataset {
        pid: DatasetPid(format!("als/8.3.2/recon/{facility}/{scan_id}")),
        kind: DatasetKind::Derived,
        name: format!("{scan_id}_recon_{facility}"),
        owner: "als-pipeline".to_string(),
        created,
        size,
        instrument: InstrumentMetadata::default(),
        sample: SampleMetadata::default(),
        derived_from: vec![raw.clone()],
        scientific: BTreeMap::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn instrument() -> InstrumentMetadata {
        InstrumentMetadata {
            beamline: "8.3.2".into(),
            n_angles: 1969,
            detector_rows: 2160,
            detector_cols: 2560,
            pixel_size_um: 0.65,
            exposure_ms: 30.0,
        }
    }

    #[test]
    fn ingest_and_get() {
        let mut cat = Catalog::new();
        let ds = raw_scan_dataset(
            "scan_0001",
            "ahexemer",
            SimInstant::ZERO,
            ByteSize::from_gib(22),
            instrument(),
        );
        let pid = ds.pid.clone();
        cat.ingest(ds).unwrap();
        assert_eq!(cat.get(&pid).unwrap().instrument.n_angles, 1969);
        assert_eq!(cat.len(), 1);
    }

    #[test]
    fn duplicate_pids_rejected() {
        let mut cat = Catalog::new();
        let ds = raw_scan_dataset("s", "o", SimInstant::ZERO, ByteSize::ZERO, instrument());
        cat.ingest(ds.clone()).unwrap();
        assert!(matches!(cat.ingest(ds), Err(CatalogError::DuplicatePid(_))));
    }

    #[test]
    fn provenance_must_exist() {
        let mut cat = Catalog::new();
        let orphan = recon_dataset(
            "sX",
            "nersc",
            &DatasetPid("missing".into()),
            SimInstant::ZERO,
            ByteSize::ZERO,
        );
        assert!(matches!(
            cat.ingest(orphan),
            Err(CatalogError::DanglingProvenance(_))
        ));
    }

    #[test]
    fn derived_chain_walks_transitively() {
        let mut cat = Catalog::new();
        let raw = raw_scan_dataset(
            "s1",
            "o",
            SimInstant::ZERO,
            ByteSize::from_gib(20),
            instrument(),
        );
        let raw_pid = raw.pid.clone();
        cat.ingest(raw).unwrap();
        let rec = recon_dataset(
            "s1",
            "nersc",
            &raw_pid,
            SimInstant::ZERO,
            ByteSize::from_gib(50),
        );
        let rec_pid = rec.pid.clone();
        cat.ingest(rec).unwrap();
        // segmentation derived from the reconstruction
        let mut seg = recon_dataset(
            "s1",
            "mlx-seg",
            &rec_pid,
            SimInstant::ZERO,
            ByteSize::from_gib(2),
        );
        seg.pid = DatasetPid("als/8.3.2/seg/s1".into());
        cat.ingest(seg).unwrap();
        let chain = cat.derived_chain(&raw_pid);
        assert_eq!(chain.len(), 2);
    }

    #[test]
    fn search_is_case_insensitive_and_covers_metadata() {
        let mut cat = Catalog::new();
        let mut ds = raw_scan_dataset(
            "feather_scan",
            "namyi",
            SimInstant::ZERO,
            ByteSize::ZERO,
            instrument(),
        );
        ds.scientific.insert("species".into(), "Sandgrouse".into());
        cat.ingest(ds).unwrap();
        assert_eq!(cat.search("FEATHER").len(), 1);
        assert_eq!(cat.search("sandgrouse").len(), 1);
        assert_eq!(cat.search("namyi").len(), 1);
        assert!(cat.search("chicken").is_empty());
    }

    #[test]
    fn time_and_owner_queries() {
        let mut cat = Catalog::new();
        let t = |h: u64| SimInstant::ZERO + als_simcore::SimDuration::from_hours(h);
        for (i, (owner, hour)) in [("alice", 1u64), ("bob", 5), ("alice", 10)]
            .iter()
            .enumerate()
        {
            let mut ds = raw_scan_dataset(
                &format!("s{i}"),
                owner,
                t(*hour),
                ByteSize::from_gib(20),
                instrument(),
            );
            ds.pid = DatasetPid(format!("pid{i}"));
            cat.ingest(ds).unwrap();
        }
        assert_eq!(cat.created_between(t(0), t(6)).len(), 2);
        assert_eq!(cat.owned_by("alice").len(), 2);
        assert_eq!(cat.owned_by("carol").len(), 0);
    }

    #[test]
    fn bytes_by_kind_totals() {
        let mut cat = Catalog::new();
        let raw = raw_scan_dataset(
            "s",
            "o",
            SimInstant::ZERO,
            ByteSize::from_gib(20),
            instrument(),
        );
        let raw_pid = raw.pid.clone();
        cat.ingest(raw).unwrap();
        cat.ingest(recon_dataset(
            "s",
            "nersc",
            &raw_pid,
            SimInstant::ZERO,
            ByteSize::from_gib(52),
        ))
        .unwrap();
        let (r, d) = cat.bytes_by_kind();
        assert_eq!(r, ByteSize::from_gib(20));
        assert_eq!(d, ByteSize::from_gib(52));
    }

    #[test]
    fn json_export_is_parseable_and_complete() {
        let mut cat = Catalog::new();
        cat.ingest(raw_scan_dataset(
            "s1",
            "o",
            SimInstant::ZERO,
            ByteSize::from_gib(1),
            instrument(),
        ))
        .unwrap();
        let json = cat.export_json();
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed.as_array().unwrap().len(), 1);
        assert!(json.contains("als/8.3.2/raw/s1"));
    }

    #[test]
    fn sample_metadata_gap_is_measurable() {
        let mut cat = Catalog::new();
        let bare = raw_scan_dataset("s1", "o", SimInstant::ZERO, ByteSize::ZERO, instrument());
        cat.ingest(bare).unwrap();
        let mut rich = raw_scan_dataset("s2", "o", SimInstant::ZERO, ByteSize::ZERO, instrument());
        rich.sample = SampleMetadata {
            description: Some("sandgrouse feather".into()),
            preparation: Some("air dried".into()),
            in_situ_conditions: None,
            material_class: Some("keratin".into()),
        };
        cat.ingest(rich).unwrap();
        // (0 + 0.75) / 2
        assert!((cat.sample_metadata_completeness() - 0.375).abs() < 1e-12);
    }
}
