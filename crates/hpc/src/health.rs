//! Automated health monitoring (§5.3 production lessons).
//!
//! "Production lessons learned include: maintaining strict staging and
//! production separation, automated health monitoring every 12-24 hours,
//! and version-controlled deployments." This module models the health
//! monitor: named service probes with freshness deadlines, a check pass
//! that produces a report, and staging/production environment separation
//! for the probe configuration.

use als_simcore::{SimDuration, SimInstant};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Which deployment environment a probe belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Environment {
    Staging,
    Production,
}

/// Health of one service at a check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HealthState {
    Healthy,
    /// Heartbeat older than the freshness deadline.
    Stale,
    /// Service explicitly reported a failure.
    Failing,
    /// No heartbeat ever received.
    Unknown,
}

#[derive(Debug, Clone)]
struct Probe {
    env: Environment,
    /// How old a heartbeat may be before the service counts as stale.
    freshness: SimDuration,
    last_heartbeat: Option<SimInstant>,
    last_error: Option<String>,
}

/// One row of a health report.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HealthCheck {
    pub service: String,
    pub env: Environment,
    pub state: HealthState,
}

/// The monitor.
#[derive(Debug, Default)]
pub struct HealthMonitor {
    probes: BTreeMap<String, Probe>,
}

impl HealthMonitor {
    pub fn new() -> Self {
        Self::default()
    }

    /// The production probe set for the beamline deployment.
    pub fn production_default() -> Self {
        let mut m = Self::new();
        for (svc, mins) in [
            ("prefect-server", 30u64),
            ("prefect-worker", 30),
            ("pva-mirror", 10),
            ("file-writer", 10),
            ("globus-endpoint", 60),
            ("scicat", 120),
        ] {
            m.register(svc, Environment::Production, SimDuration::from_mins(mins));
        }
        m
    }

    /// Register a probed service.
    pub fn register(&mut self, service: &str, env: Environment, freshness: SimDuration) {
        self.probes.insert(
            service.to_string(),
            Probe {
                env,
                freshness,
                last_heartbeat: None,
                last_error: None,
            },
        );
    }

    /// Record a heartbeat (clears any error).
    pub fn heartbeat(&mut self, service: &str, now: SimInstant) {
        if let Some(p) = self.probes.get_mut(service) {
            p.last_heartbeat = Some(now);
            p.last_error = None;
        }
    }

    /// Has the service's heartbeat aged past its freshness deadline?
    /// Unlike [`HealthMonitor::check`], this ignores explicit error
    /// reports: a service can be `Failing` (errors reported against it)
    /// while its heartbeat is still arriving, and vice versa. Outage
    /// detectors care about the heartbeat alone.
    pub fn heartbeat_stale(&self, service: &str, now: SimInstant) -> bool {
        self.probes.get(service).is_some_and(|p| {
            p.last_heartbeat
                .is_some_and(|hb| now.duration_since(hb) > p.freshness)
        })
    }

    /// Record an explicit failure report.
    pub fn report_error(&mut self, service: &str, now: SimInstant, message: &str) {
        if let Some(p) = self.probes.get_mut(service) {
            p.last_heartbeat = Some(now);
            p.last_error = Some(message.to_string());
        }
    }

    /// Run a check pass over one environment.
    pub fn check(&self, env: Environment, now: SimInstant) -> Vec<HealthCheck> {
        self.probes
            .iter()
            .filter(|(_, p)| p.env == env)
            .map(|(name, p)| {
                let state = if p.last_error.is_some() {
                    HealthState::Failing
                } else {
                    match p.last_heartbeat {
                        None => HealthState::Unknown,
                        Some(hb) if now.duration_since(hb) > p.freshness => HealthState::Stale,
                        Some(_) => HealthState::Healthy,
                    }
                };
                HealthCheck {
                    service: name.clone(),
                    env: p.env,
                    state,
                }
            })
            .collect()
    }

    /// True when every production service is healthy — the green light
    /// the 12–24 h scheduled check looks for.
    pub fn all_healthy(&self, env: Environment, now: SimInstant) -> bool {
        self.check(env, now)
            .iter()
            .all(|c| c.state == HealthState::Healthy)
    }

    /// Services needing attention, most severe first.
    pub fn attention_list(&self, env: Environment, now: SimInstant) -> Vec<HealthCheck> {
        let mut bad: Vec<HealthCheck> = self
            .check(env, now)
            .into_iter()
            .filter(|c| c.state != HealthState::Healthy)
            .collect();
        bad.sort_by_key(|c| match c.state {
            HealthState::Failing => 0,
            HealthState::Unknown => 1,
            HealthState::Stale => 2,
            HealthState::Healthy => 3,
        });
        bad
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(mins: u64) -> SimInstant {
        SimInstant::ZERO + SimDuration::from_mins(mins)
    }

    #[test]
    fn fresh_heartbeats_are_healthy() {
        let mut m = HealthMonitor::production_default();
        for svc in [
            "prefect-server",
            "prefect-worker",
            "pva-mirror",
            "file-writer",
            "globus-endpoint",
            "scicat",
        ] {
            m.heartbeat(svc, t(0));
        }
        assert!(m.all_healthy(Environment::Production, t(5)));
    }

    #[test]
    fn silence_goes_stale_after_freshness_window() {
        let mut m = HealthMonitor::new();
        m.register(
            "pva-mirror",
            Environment::Production,
            SimDuration::from_mins(10),
        );
        m.heartbeat("pva-mirror", t(0));
        assert!(m.all_healthy(Environment::Production, t(9)));
        let checks = m.check(Environment::Production, t(11));
        assert_eq!(checks[0].state, HealthState::Stale);
    }

    #[test]
    fn never_seen_is_unknown() {
        let mut m = HealthMonitor::new();
        m.register(
            "scicat",
            Environment::Production,
            SimDuration::from_mins(60),
        );
        assert_eq!(
            m.check(Environment::Production, t(0))[0].state,
            HealthState::Unknown
        );
    }

    #[test]
    fn explicit_errors_dominate_until_next_heartbeat() {
        let mut m = HealthMonitor::new();
        m.register(
            "globus-endpoint",
            Environment::Production,
            SimDuration::from_mins(60),
        );
        m.report_error("globus-endpoint", t(0), "permission denied");
        assert_eq!(
            m.check(Environment::Production, t(1))[0].state,
            HealthState::Failing
        );
        m.heartbeat("globus-endpoint", t(2));
        assert_eq!(
            m.check(Environment::Production, t(3))[0].state,
            HealthState::Healthy
        );
    }

    #[test]
    fn staging_and_production_are_separate() {
        let mut m = HealthMonitor::new();
        m.register(
            "prefect-server",
            Environment::Production,
            SimDuration::from_mins(30),
        );
        m.register(
            "prefect-server-staging",
            Environment::Staging,
            SimDuration::from_mins(30),
        );
        m.heartbeat("prefect-server", t(0));
        // staging broken, production healthy: production check unaffected
        assert!(m.all_healthy(Environment::Production, t(1)));
        assert!(!m.all_healthy(Environment::Staging, t(1)));
    }

    #[test]
    fn attention_list_sorts_by_severity() {
        let mut m = HealthMonitor::new();
        m.register(
            "a-stale",
            Environment::Production,
            SimDuration::from_mins(1),
        );
        m.register(
            "b-failing",
            Environment::Production,
            SimDuration::from_mins(60),
        );
        m.register(
            "c-unknown",
            Environment::Production,
            SimDuration::from_mins(60),
        );
        m.heartbeat("a-stale", t(0));
        m.report_error("b-failing", t(5), "crash");
        let list = m.attention_list(Environment::Production, t(10));
        assert_eq!(list.len(), 3);
        assert_eq!(list[0].state, HealthState::Failing);
        assert_eq!(list[1].state, HealthState::Unknown);
        assert_eq!(list[2].state, HealthState::Stale);
    }
}
