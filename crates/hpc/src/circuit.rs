//! Per-facility circuit breaker for multi-facility failover.
//!
//! The paper's §5.3 incident review (NERSC scheduler outage mid-beamtime)
//! motivates routing work away from a facility that keeps failing instead
//! of retrying into it. The breaker follows the classic three-state
//! pattern on the simulation clock:
//!
//! * **Closed** — requests flow; `failure_threshold` *consecutive*
//!   failures trip it open.
//! * **Open** — requests are refused; after `cooldown` the next request
//!   is allowed through as a probe (Half-Open).
//! * **Half-Open** — exactly one probe is in flight. Success closes the
//!   breaker (fail-back); failure re-opens it and restarts the cooldown.
//!
//! A stale facility heartbeat can also [`CircuitBreaker::force_open`] the
//! breaker directly — the health monitor sees an outage before enough
//! job-level failures would accumulate.

use als_simcore::{SimDuration, SimInstant};
use serde::{Deserialize, Serialize};

/// Breaker position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BreakerState {
    /// Healthy: requests pass.
    Closed,
    /// Tripped: requests are refused until the cooldown elapses.
    Open,
    /// Cooled down: one probe request may test the facility.
    HalfOpen,
}

/// Tunables for a [`CircuitBreaker`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BreakerConfig {
    /// Consecutive failures that trip Closed → Open.
    pub failure_threshold: u32,
    /// Time spent Open before permitting a Half-Open probe.
    pub cooldown: SimDuration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            cooldown: SimDuration::from_mins(10),
        }
    }
}

/// A single facility's breaker.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: Option<SimInstant>,
    probe_inflight: bool,
    open_count: usize,
}

impl CircuitBreaker {
    pub fn new(cfg: BreakerConfig) -> Self {
        CircuitBreaker {
            cfg,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            opened_at: None,
            probe_inflight: false,
            open_count: 0,
        }
    }

    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Times the breaker has tripped open over its lifetime.
    pub fn open_count(&self) -> usize {
        self.open_count
    }

    fn trip(&mut self, now: SimInstant) {
        self.state = BreakerState::Open;
        self.opened_at = Some(now);
        self.probe_inflight = false;
        self.open_count += 1;
    }

    /// Advance breaker-internal time: an Open breaker whose cooldown has
    /// elapsed becomes Half-Open (ready for one probe).
    pub fn tick(&mut self, now: SimInstant) {
        if self.state == BreakerState::Open {
            if let Some(t) = self.opened_at {
                if now.duration_since(t) >= self.cfg.cooldown {
                    self.state = BreakerState::HalfOpen;
                    self.probe_inflight = false;
                }
            }
        }
    }

    /// May a request be sent to this facility right now? Closed: always.
    /// Open: never (though the call ticks the cooldown first). Half-Open:
    /// only the single probe.
    pub fn allow_request(&mut self, now: SimInstant) -> bool {
        self.tick(now);
        match self.state {
            BreakerState::Closed => true,
            BreakerState::Open => false,
            BreakerState::HalfOpen => {
                if self.probe_inflight {
                    false
                } else {
                    self.probe_inflight = true;
                    true
                }
            }
        }
    }

    /// A request to the facility succeeded.
    pub fn record_success(&mut self) {
        self.state = BreakerState::Closed;
        self.consecutive_failures = 0;
        self.opened_at = None;
        self.probe_inflight = false;
    }

    /// A request to the facility failed.
    pub fn record_failure(&mut self, now: SimInstant) {
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.cfg.failure_threshold {
                    self.trip(now);
                }
            }
            BreakerState::HalfOpen => self.trip(now),
            BreakerState::Open => {}
        }
    }

    /// Trip immediately (stale heartbeat / monitor says the facility is
    /// down). Restarts the cooldown even if already Open.
    pub fn force_open(&mut self, now: SimInstant) {
        let already_open = self.state == BreakerState::Open;
        self.state = BreakerState::Open;
        self.opened_at = Some(now);
        self.probe_inflight = false;
        if !already_open {
            self.open_count += 1;
        }
    }
}

impl Default for CircuitBreaker {
    fn default() -> Self {
        CircuitBreaker::new(BreakerConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimInstant {
        SimInstant::ZERO + SimDuration::from_secs(s)
    }

    fn breaker() -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            failure_threshold: 3,
            cooldown: SimDuration::from_secs(100),
        })
    }

    #[test]
    fn stays_closed_below_threshold_and_success_resets_the_count() {
        let mut b = breaker();
        b.record_failure(secs(1));
        b.record_failure(secs(2));
        assert_eq!(b.state(), BreakerState::Closed);
        b.record_success(); // resets consecutive count
        b.record_failure(secs(3));
        b.record_failure(secs(4));
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allow_request(secs(5)));
    }

    #[test]
    fn consecutive_failures_trip_open() {
        let mut b = breaker();
        for t in 1..=3 {
            b.record_failure(secs(t));
        }
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.open_count(), 1);
        assert!(!b.allow_request(secs(10)));
    }

    #[test]
    fn cooldown_elapses_to_half_open_with_a_single_probe() {
        let mut b = breaker();
        for t in 1..=3 {
            b.record_failure(secs(t));
        }
        // before cooldown: refused
        assert!(!b.allow_request(secs(50)));
        // after cooldown: exactly one probe allowed
        assert!(b.allow_request(secs(103 + 1)));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.allow_request(secs(105)), "second probe refused");
    }

    #[test]
    fn probe_success_closes_the_breaker() {
        let mut b = breaker();
        for t in 1..=3 {
            b.record_failure(secs(t));
        }
        assert!(b.allow_request(secs(200)));
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allow_request(secs(201)));
        // failure counter started fresh after fail-back
        b.record_failure(secs(202));
        b.record_failure(secs(203));
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn probe_failure_reopens_and_restarts_cooldown() {
        let mut b = breaker();
        for t in 1..=3 {
            b.record_failure(secs(t));
        }
        assert!(b.allow_request(secs(200)));
        b.record_failure(secs(200));
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.open_count(), 2);
        // cooldown restarted at 200: still refused at 250
        assert!(!b.allow_request(secs(250)));
        assert!(b.allow_request(secs(301)));
    }

    #[test]
    fn force_open_trips_immediately_and_extends_an_open_window() {
        let mut b = breaker();
        b.force_open(secs(10));
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.open_count(), 1);
        // forcing again while open extends the cooldown but is one trip
        b.force_open(secs(100));
        assert_eq!(b.open_count(), 1);
        assert!(!b.allow_request(secs(150)));
        assert!(b.allow_request(secs(201)));
    }

    #[test]
    fn failures_while_open_are_ignored() {
        let mut b = breaker();
        for t in 1..=3 {
            b.record_failure(secs(t));
        }
        b.record_failure(secs(4));
        b.record_failure(secs(5));
        assert_eq!(b.open_count(), 1);
        // cooldown still measured from the original trip at t=3
        assert!(b.allow_request(secs(104)));
    }
}
