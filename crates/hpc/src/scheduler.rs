//! A Slurm-like batch scheduler on the simulation clock.
//!
//! Models what the paper's NERSC adapter depends on: a partition of
//! identical nodes, jobs requesting whole nodes, QOS-based priority
//! (`realtime` ahead of `regular`), FIFO within a priority class, and
//! conservative backfill (a lower-priority job may start only on nodes the
//! highest-priority waiting job cannot use anyway — with whole-node
//! requests this reduces to "skip jobs too big to fit now").

use als_simcore::{SimDuration, SimInstant};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Quality-of-service classes, ordered by dispatch priority.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Qos {
    /// Batch background work.
    Regular,
    /// Short debug runs.
    Debug,
    /// NERSC's prioritized QOS for time-critical experiment workflows —
    /// what the paper's reconstruction jobs are submitted with.
    Realtime,
}

impl Qos {
    /// Numeric priority; larger dispatches first.
    pub fn priority(&self) -> u32 {
        match self {
            Qos::Regular => 10,
            Qos::Debug => 50,
            Qos::Realtime => 100,
        }
    }
}

/// Job identifier (per scheduler instance).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct JobId(pub u64);

/// A submission request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRequest {
    /// Job name for reports.
    pub name: String,
    pub qos: Qos,
    /// Whole nodes requested (the paper requests exclusive full CPU nodes).
    pub nodes: usize,
    /// Actual service time once running (known to the simulation).
    pub runtime: SimDuration,
    /// Walltime limit; the job is killed if runtime exceeds it.
    pub walltime_limit: SimDuration,
}

/// Lifecycle state of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobState {
    Pending,
    Running,
    Completed,
    /// Killed at its walltime limit.
    TimedOut,
    Cancelled,
    /// Killed by a node/system failure (fault injection).
    Failed,
}

/// Events produced as simulated time advances.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobEvent {
    Started {
        id: JobId,
        at: SimInstant,
    },
    Finished {
        id: JobId,
        at: SimInstant,
        state: JobState,
    },
}

#[derive(Debug, Clone)]
struct Job {
    req: JobRequest,
    submitted: SimInstant,
    seq: u64,
    state: JobState,
    started: Option<SimInstant>,
    ends: Option<SimInstant>,
    finished: Option<SimInstant>,
}

/// The scheduler: one partition of `total_nodes` identical nodes.
#[derive(Debug)]
pub struct Scheduler {
    total_nodes: usize,
    free_nodes: usize,
    jobs: BTreeMap<JobId, Job>,
    /// Index sets so per-event work does not scale with job history.
    pending: std::collections::BTreeSet<JobId>,
    running: std::collections::BTreeSet<JobId>,
    next_id: u64,
    /// Nodes drained for maintenance or downed by an outage; they stay
    /// out of the dispatchable pool until restored via `set_offline(0)`.
    offline_nodes: usize,
    /// Busy-time integral for utilization reporting.
    busy_node_seconds: f64,
    last_account: SimInstant,
}

impl Scheduler {
    pub fn new(total_nodes: usize) -> Self {
        assert!(total_nodes > 0, "partition needs at least one node");
        Scheduler {
            total_nodes,
            free_nodes: total_nodes,
            jobs: BTreeMap::new(),
            pending: std::collections::BTreeSet::new(),
            running: std::collections::BTreeSet::new(),
            next_id: 0,
            offline_nodes: 0,
            busy_node_seconds: 0.0,
            last_account: SimInstant::ZERO,
        }
    }

    pub fn total_nodes(&self) -> usize {
        self.total_nodes
    }

    pub fn free_nodes(&self) -> usize {
        self.free_nodes
    }

    /// Jobs currently queued (not yet running).
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    pub fn running_count(&self) -> usize {
        self.running.len()
    }

    /// Nodes currently held out of the dispatchable pool.
    pub fn offline_nodes(&self) -> usize {
        self.offline_nodes
    }

    /// Drain `n` nodes (capped at the partition size). Already-running
    /// jobs keep their nodes; the drain only blocks new dispatch, like a
    /// Slurm maintenance reservation. `set_offline(0)` restores the full
    /// partition and dispatches whatever now fits.
    pub fn set_offline(&mut self, n: usize, now: SimInstant) -> Vec<JobEvent> {
        self.account(now);
        self.offline_nodes = n.min(self.total_nodes);
        self.try_dispatch(now)
    }

    /// Kill a running job as failed (node crash / system outage). Frees
    /// its nodes and dispatches queued work; no-op unless running.
    pub fn fail(&mut self, id: JobId, now: SimInstant) -> Vec<JobEvent> {
        self.account(now);
        let mut events = Vec::new();
        if let Some(job) = self.jobs.get_mut(&id) {
            if job.state == JobState::Running {
                job.state = JobState::Failed;
                job.finished = Some(now);
                self.running.remove(&id);
                let nodes = job.req.nodes;
                self.free_nodes += nodes;
                events.push(JobEvent::Finished {
                    id,
                    at: now,
                    state: JobState::Failed,
                });
                events.extend(self.try_dispatch(now));
            }
        }
        events
    }

    fn account(&mut self, now: SimInstant) {
        let dt = now.duration_since(self.last_account).as_secs_f64();
        self.busy_node_seconds += dt * (self.total_nodes - self.free_nodes) as f64;
        self.last_account = now;
    }

    /// Submit a job; it may start immediately. Returns its id plus any
    /// start events triggered by this submission.
    pub fn submit(&mut self, req: JobRequest, now: SimInstant) -> (JobId, Vec<JobEvent>) {
        assert!(req.nodes > 0, "job must request at least one node");
        assert!(
            req.nodes <= self.total_nodes,
            "job requests {} nodes, partition has {}",
            req.nodes,
            self.total_nodes
        );
        self.account(now);
        let id = JobId(self.next_id);
        let seq = self.next_id;
        self.next_id += 1;
        self.jobs.insert(
            id,
            Job {
                req,
                submitted: now,
                seq,
                state: JobState::Pending,
                started: None,
                ends: None,
                finished: None,
            },
        );
        self.pending.insert(id);
        let events = self.try_dispatch(now);
        (id, events)
    }

    /// Cancel a pending or running job.
    pub fn cancel(&mut self, id: JobId, now: SimInstant) -> Vec<JobEvent> {
        self.account(now);
        let mut events = Vec::new();
        if let Some(job) = self.jobs.get_mut(&id) {
            match job.state {
                JobState::Pending => {
                    job.state = JobState::Cancelled;
                    job.finished = Some(now);
                    self.pending.remove(&id);
                    events.push(JobEvent::Finished {
                        id,
                        at: now,
                        state: JobState::Cancelled,
                    });
                }
                JobState::Running => {
                    job.state = JobState::Cancelled;
                    job.finished = Some(now);
                    self.running.remove(&id);
                    let nodes = job.req.nodes;
                    self.free_nodes += nodes;
                    events.push(JobEvent::Finished {
                        id,
                        at: now,
                        state: JobState::Cancelled,
                    });
                    events.extend(self.try_dispatch(now));
                }
                _ => {}
            }
        }
        events
    }

    /// Earliest pending completion, if any — the DES driver schedules its
    /// next scheduler event here.
    pub fn next_event_time(&self) -> Option<SimInstant> {
        self.running
            .iter()
            .filter_map(|id| self.jobs[id].ends)
            .min()
    }

    /// Advance to `now`: finish every running job whose end time has
    /// passed, then dispatch queued work. Returns events in time order.
    pub fn advance_to(&mut self, now: SimInstant) -> Vec<JobEvent> {
        let mut events = Vec::new();
        loop {
            // find the earliest job ending at or before `now`
            let next = self
                .running
                .iter()
                .filter_map(|&id| self.jobs[&id].ends.map(|e| (e, id)))
                .filter(|(e, _)| *e <= now)
                .min();
            let Some((end, id)) = next else { break };
            self.account(end);
            let job = self.jobs.get_mut(&id).expect("job exists");
            let limit_hit = job.req.runtime > job.req.walltime_limit;
            job.state = if limit_hit {
                JobState::TimedOut
            } else {
                JobState::Completed
            };
            job.finished = Some(end);
            self.running.remove(&id);
            let nodes = job.req.nodes;
            self.free_nodes += nodes;
            events.push(JobEvent::Finished {
                id,
                at: end,
                state: job.state,
            });
            events.extend(self.try_dispatch(end));
        }
        self.account(now);
        events
    }

    /// Dispatch queued jobs: highest priority first, FIFO within a class,
    /// skipping jobs that do not fit (conservative backfill).
    fn try_dispatch(&mut self, now: SimInstant) -> Vec<JobEvent> {
        let mut events = Vec::new();
        let mut queued: Vec<(u32, u64, JobId)> = self
            .pending
            .iter()
            .map(|&id| {
                let j = &self.jobs[&id];
                (j.req.qos.priority(), j.seq, id)
            })
            .collect();
        // priority desc, then submission order
        queued.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        for (_, _, id) in queued {
            let job = self.jobs.get_mut(&id).expect("job exists");
            if job.req.nodes <= self.free_nodes.saturating_sub(self.offline_nodes) {
                self.free_nodes -= job.req.nodes;
                job.state = JobState::Running;
                job.started = Some(now);
                let service = job.req.runtime.min(job.req.walltime_limit);
                job.ends = Some(now + service);
                self.pending.remove(&id);
                self.running.insert(id);
                events.push(JobEvent::Started { id, at: now });
            }
        }
        events
    }

    /// Queue wait of a job that has started (start − submit).
    pub fn queue_wait(&self, id: JobId) -> Option<SimDuration> {
        let j = self.jobs.get(&id)?;
        Some(j.started?.duration_since(j.submitted))
    }

    pub fn state(&self, id: JobId) -> Option<JobState> {
        self.jobs.get(&id).map(|j| j.state)
    }

    /// All pending or running jobs, in submission order — the query a
    /// restarted orchestrator uses to hunt for orphaned work.
    pub fn live_jobs(&self) -> Vec<JobId> {
        self.jobs
            .iter()
            .filter(|(_, j)| matches!(j.state, JobState::Pending | JobState::Running))
            .map(|(&id, _)| id)
            .collect()
    }

    /// The submitted job name (`squeue`-style lookup).
    pub fn job_name(&self, id: JobId) -> Option<&str> {
        self.jobs.get(&id).map(|j| j.req.name.as_str())
    }

    /// Every job (any state, terminal included) whose name starts with
    /// `prefix`, with its name — the `squeue`/`sacct` query a restarted
    /// orchestrator runs to find submissions a torn journal forgot.
    pub fn jobs_with_prefix(&self, prefix: &str) -> Vec<(JobId, &str)> {
        self.jobs
            .iter()
            .filter(|(_, j)| j.req.name.starts_with(prefix))
            .map(|(&id, j)| (id, j.req.name.as_str()))
            .collect()
    }

    /// Wall-clock span a finished job occupied (start → finish).
    pub fn run_span(&self, id: JobId) -> Option<SimDuration> {
        let j = self.jobs.get(&id)?;
        Some(j.finished?.duration_since(j.started?))
    }

    /// Node utilization over `[0, now]`: busy node-seconds / capacity.
    pub fn utilization(&self, now: SimInstant) -> f64 {
        let span = now.as_secs_f64();
        if span <= 0.0 {
            return 0.0;
        }
        let pending_busy = now.duration_since(self.last_account).as_secs_f64()
            * (self.total_nodes - self.free_nodes) as f64;
        (self.busy_node_seconds + pending_busy) / (span * self.total_nodes as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(name: &str, qos: Qos, nodes: usize, runtime_s: u64) -> JobRequest {
        JobRequest {
            name: name.into(),
            qos,
            nodes,
            runtime: SimDuration::from_secs(runtime_s),
            walltime_limit: SimDuration::from_secs(3600),
        }
    }

    #[test]
    fn job_starts_immediately_when_nodes_free() {
        let mut s = Scheduler::new(4);
        let (id, events) = s.submit(req("a", Qos::Regular, 2, 100), SimInstant::ZERO);
        assert_eq!(
            events,
            vec![JobEvent::Started {
                id,
                at: SimInstant::ZERO
            }]
        );
        assert_eq!(s.free_nodes(), 2);
        assert_eq!(s.state(id), Some(JobState::Running));
    }

    #[test]
    fn job_queues_when_full_and_starts_on_release() {
        let mut s = Scheduler::new(2);
        let t0 = SimInstant::ZERO;
        let (a, _) = s.submit(req("a", Qos::Regular, 2, 60), t0);
        let (b, ev) = s.submit(req("b", Qos::Regular, 2, 60), t0);
        assert!(ev.is_empty());
        assert_eq!(s.state(b), Some(JobState::Pending));
        let t_end = s.next_event_time().unwrap();
        assert_eq!(t_end.as_secs_f64(), 60.0);
        let events = s.advance_to(t_end);
        assert!(events.contains(&JobEvent::Finished {
            id: a,
            at: t_end,
            state: JobState::Completed
        }));
        assert!(events.contains(&JobEvent::Started { id: b, at: t_end }));
        assert_eq!(s.queue_wait(b).unwrap(), SimDuration::from_secs(60));
    }

    #[test]
    fn realtime_qos_jumps_the_queue() {
        let mut s = Scheduler::new(1);
        let t0 = SimInstant::ZERO;
        let (_running, _) = s.submit(req("running", Qos::Regular, 1, 100), t0);
        let (batch, _) = s.submit(req("batch", Qos::Regular, 1, 100), t0);
        let (rt, _) = s.submit(req("rt", Qos::Realtime, 1, 10), t0);
        let t1 = s.next_event_time().unwrap();
        s.advance_to(t1);
        // realtime starts before the earlier-submitted regular job
        assert_eq!(s.state(rt), Some(JobState::Running));
        assert_eq!(s.state(batch), Some(JobState::Pending));
    }

    #[test]
    fn fifo_within_same_qos() {
        let mut s = Scheduler::new(1);
        let t0 = SimInstant::ZERO;
        let (_a, _) = s.submit(req("a", Qos::Regular, 1, 10), t0);
        let (b, _) = s.submit(req("b", Qos::Regular, 1, 10), t0);
        let (c, _) = s.submit(req("c", Qos::Regular, 1, 10), t0);
        s.advance_to(SimInstant::ZERO + SimDuration::from_secs(10));
        assert_eq!(s.state(b), Some(JobState::Running));
        assert_eq!(s.state(c), Some(JobState::Pending));
    }

    #[test]
    fn backfill_lets_small_jobs_pass_blocked_big_ones() {
        let mut s = Scheduler::new(4);
        let t0 = SimInstant::ZERO;
        let (_big_running, _) = s.submit(req("hog", Qos::Regular, 3, 100), t0);
        // 4-node job cannot start (only 1 free)
        let (blocked, _) = s.submit(req("blocked", Qos::Regular, 4, 10), t0);
        // 1-node job CAN start on the free node
        let (small, ev) = s.submit(req("small", Qos::Regular, 1, 10), t0);
        assert!(ev
            .iter()
            .any(|e| matches!(e, JobEvent::Started { id, .. } if *id == small)));
        assert_eq!(s.state(blocked), Some(JobState::Pending));
    }

    #[test]
    fn walltime_limit_kills_long_jobs() {
        let mut s = Scheduler::new(1);
        let mut r = req("long", Qos::Regular, 1, 100);
        r.walltime_limit = SimDuration::from_secs(30);
        let (id, _) = s.submit(r, SimInstant::ZERO);
        let t = s.next_event_time().unwrap();
        assert_eq!(t.as_secs_f64(), 30.0, "killed at the limit");
        let ev = s.advance_to(t);
        assert!(ev.contains(&JobEvent::Finished {
            id,
            at: t,
            state: JobState::TimedOut
        }));
    }

    #[test]
    fn cancel_pending_and_running() {
        let mut s = Scheduler::new(1);
        let t0 = SimInstant::ZERO;
        let (a, _) = s.submit(req("a", Qos::Regular, 1, 100), t0);
        let (b, _) = s.submit(req("b", Qos::Regular, 1, 100), t0);
        // cancel queued
        let ev = s.cancel(b, t0 + SimDuration::from_secs(1));
        assert_eq!(ev.len(), 1);
        assert_eq!(s.state(b), Some(JobState::Cancelled));
        // cancel running frees the node
        let ev = s.cancel(a, t0 + SimDuration::from_secs(2));
        assert!(ev.iter().any(
            |e| matches!(e, JobEvent::Finished { id, state: JobState::Cancelled, .. } if *id == a)
        ));
        assert_eq!(s.free_nodes(), 1);
    }

    #[test]
    fn nodes_never_oversubscribed() {
        // stress: many random-ish jobs; free_nodes must stay in range
        let mut s = Scheduler::new(8);
        let mut now = SimInstant::ZERO;
        for i in 0..200u64 {
            let nodes = 1 + (i % 5) as usize;
            let runtime = 10 + (i * 7) % 50;
            s.submit(
                req(
                    &format!("j{i}"),
                    if i % 3 == 0 {
                        Qos::Realtime
                    } else {
                        Qos::Regular
                    },
                    nodes,
                    runtime,
                ),
                now,
            );
            now += SimDuration::from_secs(3);
            s.advance_to(now);
            assert!(s.free_nodes() <= 8);
        }
        // drain
        while let Some(t) = s.next_event_time() {
            s.advance_to(t);
        }
        assert_eq!(s.free_nodes(), 8);
        assert_eq!(s.pending_count(), 0);
    }

    #[test]
    fn drained_nodes_block_dispatch_until_restored() {
        let mut s = Scheduler::new(4);
        let t0 = SimInstant::ZERO;
        let ev = s.set_offline(4, t0);
        assert!(ev.is_empty());
        assert_eq!(s.offline_nodes(), 4);
        let (id, ev) = s.submit(req("blocked", Qos::Realtime, 1, 10), t0);
        assert!(ev.is_empty(), "no dispatch while partition is drained");
        assert_eq!(s.state(id), Some(JobState::Pending));
        assert!(s.next_event_time().is_none());
        // restoring the partition dispatches the queued job
        let t1 = t0 + SimDuration::from_secs(300);
        let ev = s.set_offline(0, t1);
        assert_eq!(ev, vec![JobEvent::Started { id, at: t1 }]);
    }

    #[test]
    fn partial_drain_leaves_remaining_capacity_usable() {
        let mut s = Scheduler::new(4);
        let t0 = SimInstant::ZERO;
        s.set_offline(3, t0);
        let (small, ev) = s.submit(req("small", Qos::Regular, 1, 10), t0);
        assert!(ev
            .iter()
            .any(|e| matches!(e, JobEvent::Started { id, .. } if *id == small)));
        let (big, ev) = s.submit(req("big", Qos::Regular, 2, 10), t0);
        assert!(ev.is_empty());
        assert_eq!(s.state(big), Some(JobState::Pending));
    }

    #[test]
    fn drain_does_not_kill_running_jobs() {
        let mut s = Scheduler::new(2);
        let t0 = SimInstant::ZERO;
        let (id, _) = s.submit(req("a", Qos::Regular, 2, 60), t0);
        s.set_offline(2, t0 + SimDuration::from_secs(1));
        assert_eq!(s.state(id), Some(JobState::Running));
        let t = s.next_event_time().unwrap();
        let ev = s.advance_to(t);
        assert!(ev.contains(&JobEvent::Finished {
            id,
            at: t,
            state: JobState::Completed
        }));
    }

    #[test]
    fn fail_kills_running_job_and_frees_nodes() {
        let mut s = Scheduler::new(2);
        let t0 = SimInstant::ZERO;
        let (a, _) = s.submit(req("a", Qos::Regular, 2, 100), t0);
        let (b, _) = s.submit(req("b", Qos::Regular, 1, 10), t0);
        let t1 = t0 + SimDuration::from_secs(5);
        let ev = s.fail(a, t1);
        assert!(ev.contains(&JobEvent::Finished {
            id: a,
            at: t1,
            state: JobState::Failed
        }));
        assert_eq!(s.state(a), Some(JobState::Failed));
        // freed nodes dispatch the queued job
        assert!(ev
            .iter()
            .any(|e| matches!(e, JobEvent::Started { id, .. } if *id == b)));
        // failing a job that is not running is a no-op
        assert!(s.fail(a, t1).is_empty());
        assert_eq!(s.free_nodes(), 1);
    }

    #[test]
    fn utilization_is_sane() {
        let mut s = Scheduler::new(2);
        let t0 = SimInstant::ZERO;
        s.submit(req("a", Qos::Regular, 2, 50), t0);
        let t1 = t0 + SimDuration::from_secs(100);
        s.advance_to(t1);
        let u = s.utilization(t1);
        assert!((u - 0.5).abs() < 0.01, "utilization {u}");
    }

    #[test]
    #[should_panic(expected = "requests")]
    fn oversized_job_is_rejected() {
        let mut s = Scheduler::new(2);
        s.submit(req("huge", Qos::Regular, 3, 10), SimInstant::ZERO);
    }
}
