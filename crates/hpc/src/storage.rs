//! Tiered storage with retention-based pruning.
//!
//! The paper's data lifecycle (§4.3): distributed network storage at the
//! beamline for fast writing (retention: days–weeks), the NERSC Community
//! Filesystem for months–years, HPSS tape for indefinite archive, plus
//! pscratch/Eagle as job-local high-performance tiers. "Storage is managed
//! through automated age-based pruning flows" — the [`StorageTier::prune`]
//! method is exactly that flow's primitive, and the lifecycle experiment
//! (S3) shows occupancy stays bounded with pruning and saturates without.

use als_simcore::{ByteSize, DataRate, SimDuration, SimInstant};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The storage tiers in the deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TierKind {
    /// Beamline data server (spinning disk, NFS).
    BeamlineData,
    /// NERSC Perlmutter scratch (fast, small retention).
    Pscratch,
    /// NERSC Community Filesystem.
    Cfs,
    /// ALCF Eagle filesystem.
    Eagle,
    /// OLCF Orion (Lustre) filesystem.
    Orion,
    /// NERSC HPSS tape archive.
    Hpss,
}

impl TierKind {
    pub fn name(&self) -> &'static str {
        match self {
            TierKind::BeamlineData => "beamline-data",
            TierKind::Pscratch => "pscratch",
            TierKind::Cfs => "CFS",
            TierKind::Eagle => "Eagle",
            TierKind::Orion => "Orion",
            TierKind::Hpss => "HPSS",
        }
    }

    /// Default retention for the paper's tiers: "local servers: days to
    /// weeks, CFS: months to years, HPSS: indefinite".
    pub fn default_retention(&self) -> Option<SimDuration> {
        match self {
            TierKind::BeamlineData => Some(SimDuration::from_hours(14 * 24)), // two weeks
            TierKind::Pscratch => Some(SimDuration::from_hours(7 * 24)),
            TierKind::Cfs => Some(SimDuration::from_hours(365 * 24)),
            TierKind::Eagle => Some(SimDuration::from_hours(30 * 24)),
            TierKind::Orion => Some(SimDuration::from_hours(90 * 24)),
            TierKind::Hpss => None, // indefinite
        }
    }

    /// Characteristic I/O bandwidth of the tier, used for staging-cost
    /// models (e.g. the CFS→pscratch copy inside the NERSC Slurm job).
    pub fn bandwidth(&self) -> DataRate {
        match self {
            TierKind::BeamlineData => DataRate::from_gbit_per_sec(8.0),
            TierKind::Pscratch => DataRate::from_gbit_per_sec(80.0),
            TierKind::Cfs => DataRate::from_gbit_per_sec(20.0),
            TierKind::Eagle => DataRate::from_gbit_per_sec(40.0),
            TierKind::Orion => DataRate::from_gbit_per_sec(50.0),
            TierKind::Hpss => DataRate::from_gbit_per_sec(4.0),
        }
    }
}

/// Errors from storage operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// Writing would exceed the tier's capacity.
    Full {
        tier: &'static str,
        need: ByteSize,
        free: ByteSize,
    },
    /// File not present.
    NotFound(String),
    /// A file with that name already exists.
    AlreadyExists(String),
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Full { tier, need, free } => {
                write!(f, "{tier} full: need {need}, only {free} free")
            }
            StorageError::NotFound(n) => write!(f, "file not found: {n}"),
            StorageError::AlreadyExists(n) => write!(f, "file already exists: {n}"),
        }
    }
}

impl std::error::Error for StorageError {}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct StoredFile {
    size: ByteSize,
    created: SimInstant,
    /// Pinned files are never pruned (e.g. actively processing).
    pinned: bool,
}

/// Result of one pruning pass.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PruneReport {
    pub files_removed: usize,
    pub bytes_freed: ByteSize,
}

/// A single capacity-bounded tier with named files.
#[derive(Debug, Clone)]
pub struct StorageTier {
    kind: TierKind,
    capacity: ByteSize,
    retention: Option<SimDuration>,
    files: BTreeMap<String, StoredFile>,
    used: ByteSize,
    /// High-water mark for the lifecycle experiment.
    peak_used: ByteSize,
}

impl StorageTier {
    pub fn new(kind: TierKind, capacity: ByteSize) -> Self {
        StorageTier {
            kind,
            capacity,
            retention: kind.default_retention(),
            files: BTreeMap::new(),
            used: ByteSize::ZERO,
            peak_used: ByteSize::ZERO,
        }
    }

    /// Override the retention period (the pruning-flow configuration knob).
    pub fn with_retention(mut self, retention: Option<SimDuration>) -> Self {
        self.retention = retention;
        self
    }

    pub fn kind(&self) -> TierKind {
        self.kind
    }

    pub fn used(&self) -> ByteSize {
        self.used
    }

    pub fn peak_used(&self) -> ByteSize {
        self.peak_used
    }

    pub fn capacity(&self) -> ByteSize {
        self.capacity
    }

    pub fn free(&self) -> ByteSize {
        self.capacity.saturating_sub(self.used)
    }

    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    pub fn contains(&self, name: &str) -> bool {
        self.files.contains_key(name)
    }

    pub fn file_size(&self, name: &str) -> Option<ByteSize> {
        self.files.get(name).map(|f| f.size)
    }

    /// Store a file. Fails when capacity would be exceeded (the §5.3
    /// saturation failure mode) or the name collides.
    pub fn put(&mut self, name: &str, size: ByteSize, now: SimInstant) -> Result<(), StorageError> {
        if self.files.contains_key(name) {
            return Err(StorageError::AlreadyExists(name.to_string()));
        }
        if self.used + size > self.capacity {
            return Err(StorageError::Full {
                tier: self.kind.name(),
                need: size,
                free: self.free(),
            });
        }
        self.files.insert(
            name.to_string(),
            StoredFile {
                size,
                created: now,
                pinned: false,
            },
        );
        self.used += size;
        self.peak_used = self.peak_used.max(self.used);
        Ok(())
    }

    /// Remove a file.
    pub fn delete(&mut self, name: &str) -> Result<ByteSize, StorageError> {
        let f = self
            .files
            .remove(name)
            .ok_or_else(|| StorageError::NotFound(name.to_string()))?;
        self.used -= f.size;
        Ok(f.size)
    }

    /// Pin/unpin a file against pruning.
    pub fn set_pinned(&mut self, name: &str, pinned: bool) -> Result<(), StorageError> {
        let f = self
            .files
            .get_mut(name)
            .ok_or_else(|| StorageError::NotFound(name.to_string()))?;
        f.pinned = pinned;
        Ok(())
    }

    /// Age-based pruning pass: remove unpinned files older than the
    /// retention period. No-op on tiers with indefinite retention.
    pub fn prune(&mut self, now: SimInstant) -> PruneReport {
        let Some(retention) = self.retention else {
            return PruneReport::default();
        };
        let mut report = PruneReport::default();
        let expired: Vec<String> = self
            .files
            .iter()
            .filter(|(_, f)| !f.pinned && now.duration_since(f.created) > retention)
            .map(|(name, _)| name.clone())
            .collect();
        for name in expired {
            let size = self.delete(&name).expect("listed file exists");
            report.files_removed += 1;
            report.bytes_freed += size;
        }
        report
    }

    /// Time to read or write `size` at this tier's bandwidth.
    pub fn io_time(&self, size: ByteSize) -> SimDuration {
        self.kind
            .bandwidth()
            .transfer_time(size)
            .expect("tier bandwidth is nonzero")
    }

    /// Occupancy fraction in `[0, 1]`.
    pub fn occupancy(&self) -> f64 {
        if self.capacity.is_zero() {
            return 1.0;
        }
        self.used.as_bytes() as f64 / self.capacity.as_bytes() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tier() -> StorageTier {
        StorageTier::new(TierKind::BeamlineData, ByteSize::from_gib(100))
            .with_retention(Some(SimDuration::from_hours(24)))
    }

    #[test]
    fn put_get_delete_accounting() {
        let mut t = tier();
        let t0 = SimInstant::ZERO;
        t.put("scan1.sdf", ByteSize::from_gib(30), t0).unwrap();
        assert_eq!(t.used(), ByteSize::from_gib(30));
        assert!(t.contains("scan1.sdf"));
        assert_eq!(t.file_size("scan1.sdf"), Some(ByteSize::from_gib(30)));
        let freed = t.delete("scan1.sdf").unwrap();
        assert_eq!(freed, ByteSize::from_gib(30));
        assert_eq!(t.used(), ByteSize::ZERO);
    }

    #[test]
    fn capacity_is_enforced() {
        let mut t = tier();
        let t0 = SimInstant::ZERO;
        t.put("a", ByteSize::from_gib(80), t0).unwrap();
        match t.put("b", ByteSize::from_gib(30), t0) {
            Err(StorageError::Full { free, .. }) => assert_eq!(free, ByteSize::from_gib(20)),
            other => panic!("expected Full, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let mut t = tier();
        let t0 = SimInstant::ZERO;
        t.put("a", ByteSize::from_gib(1), t0).unwrap();
        assert!(matches!(
            t.put("a", ByteSize::from_gib(1), t0),
            Err(StorageError::AlreadyExists(_))
        ));
    }

    #[test]
    fn prune_removes_only_expired_unpinned() {
        let mut t = tier();
        let t0 = SimInstant::ZERO;
        t.put("old", ByteSize::from_gib(10), t0).unwrap();
        t.put("old_pinned", ByteSize::from_gib(10), t0).unwrap();
        t.set_pinned("old_pinned", true).unwrap();
        let later = t0 + SimDuration::from_hours(30);
        t.put("fresh", ByteSize::from_gib(10), later).unwrap();
        let report = t.prune(later);
        assert_eq!(report.files_removed, 1);
        assert_eq!(report.bytes_freed, ByteSize::from_gib(10));
        assert!(!t.contains("old"));
        assert!(t.contains("old_pinned"));
        assert!(t.contains("fresh"));
    }

    #[test]
    fn hpss_never_prunes() {
        let mut t = StorageTier::new(TierKind::Hpss, ByteSize::from_tib(100));
        let t0 = SimInstant::ZERO;
        t.put("archive", ByteSize::from_gib(50), t0).unwrap();
        let decade_later = t0 + SimDuration::from_hours(10 * 365 * 24);
        assert_eq!(t.prune(decade_later), PruneReport::default());
        assert!(t.contains("archive"));
    }

    #[test]
    fn peak_usage_tracks_high_water_mark() {
        let mut t = tier();
        let t0 = SimInstant::ZERO;
        t.put("a", ByteSize::from_gib(40), t0).unwrap();
        t.put("b", ByteSize::from_gib(30), t0).unwrap();
        t.delete("a").unwrap();
        assert_eq!(t.used(), ByteSize::from_gib(30));
        assert_eq!(t.peak_used(), ByteSize::from_gib(70));
    }

    #[test]
    fn io_time_scales_with_size() {
        let t = StorageTier::new(TierKind::Pscratch, ByteSize::from_tib(1));
        let t_small = t.io_time(ByteSize::from_gib(1));
        let t_big = t.io_time(ByteSize::from_gib(10));
        let ratio = t_big.as_secs_f64() / t_small.as_secs_f64();
        assert!((ratio - 10.0).abs() < 0.01);
        // pscratch is much faster than tape
        let tape = StorageTier::new(TierKind::Hpss, ByteSize::from_tib(1));
        assert!(tape.io_time(ByteSize::from_gib(1)) > t.io_time(ByteSize::from_gib(1)));
    }

    #[test]
    fn occupancy_reaches_one_when_full() {
        let mut t = StorageTier::new(TierKind::Pscratch, ByteSize::from_gib(10));
        t.put("x", ByteSize::from_gib(10), SimInstant::ZERO)
            .unwrap();
        assert!((t.occupancy() - 1.0).abs() < 1e-12);
    }
}
