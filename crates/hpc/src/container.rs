//! Container image registry with beamtime version freezing.
//!
//! The paper deploys services in Docker/Podman containers "tagged with
//! version numbers", freezing versions during experiments and updating
//! only in maintenance windows. This module models exactly that policy so
//! the orchestrator can enforce it (and tests can prove a mid-beamtime
//! deploy is refused).

use als_simcore::SimDuration;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A reference to a specific image version.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ImageRef {
    pub name: String,
    pub version: String,
}

impl ImageRef {
    pub fn new(name: &str, version: &str) -> Self {
        ImageRef {
            name: name.to_string(),
            version: version.to_string(),
        }
    }
}

impl std::fmt::Display for ImageRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.name, self.version)
    }
}

/// Errors from registry operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// No such image/version.
    NotFound(String),
    /// Deployment refused because versions are frozen for beamtime.
    Frozen,
    /// Version already published (tags are immutable).
    TagExists(String),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::NotFound(r) => write!(f, "image not found: {r}"),
            RegistryError::Frozen => write!(f, "deployments are frozen during beamtime"),
            RegistryError::TagExists(r) => write!(f, "tag already exists: {r}"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// The CI/CD image registry + active deployment per service.
#[derive(Debug, Default)]
pub struct ContainerRegistry {
    /// All published tags per image name (immutable once pushed).
    published: BTreeMap<String, Vec<String>>,
    /// Version each service currently runs.
    deployed: BTreeMap<String, String>,
    /// Beamtime freeze flag.
    frozen: bool,
}

impl ContainerRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Publish a new version (what the GitHub Actions pipeline does).
    pub fn publish(&mut self, image: &ImageRef) -> Result<(), RegistryError> {
        let tags = self.published.entry(image.name.clone()).or_default();
        if tags.contains(&image.version) {
            return Err(RegistryError::TagExists(image.to_string()));
        }
        tags.push(image.version.clone());
        Ok(())
    }

    /// Deploy a published version as the running one. Refused while frozen.
    pub fn deploy(&mut self, image: &ImageRef) -> Result<(), RegistryError> {
        if self.frozen {
            return Err(RegistryError::Frozen);
        }
        let known = self
            .published
            .get(&image.name)
            .is_some_and(|tags| tags.contains(&image.version));
        if !known {
            return Err(RegistryError::NotFound(image.to_string()));
        }
        self.deployed
            .insert(image.name.clone(), image.version.clone());
        Ok(())
    }

    /// The version a service currently runs.
    pub fn running_version(&self, name: &str) -> Option<&str> {
        self.deployed.get(name).map(|s| s.as_str())
    }

    /// Enter the beamtime freeze window.
    pub fn freeze(&mut self) {
        self.frozen = true;
    }

    /// Leave the freeze window (scheduled maintenance).
    pub fn unfreeze(&mut self) {
        self.frozen = false;
    }

    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    /// Cold-start latency of a container on an HPC node (image pull +
    /// podman-hpc setup); warm starts are near-free thanks to the squashed
    /// image cache.
    pub fn startup_cost(warm: bool) -> SimDuration {
        if warm {
            SimDuration::from_millis(500)
        } else {
            SimDuration::from_secs(25)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_then_deploy() {
        let mut reg = ContainerRegistry::new();
        let img = ImageRef::new("splash-flows", "1.4.2");
        reg.publish(&img).unwrap();
        reg.deploy(&img).unwrap();
        assert_eq!(reg.running_version("splash-flows"), Some("1.4.2"));
    }

    #[test]
    fn cannot_deploy_unpublished() {
        let mut reg = ContainerRegistry::new();
        let img = ImageRef::new("splash-flows", "9.9.9");
        assert!(matches!(reg.deploy(&img), Err(RegistryError::NotFound(_))));
    }

    #[test]
    fn tags_are_immutable() {
        let mut reg = ContainerRegistry::new();
        let img = ImageRef::new("recon", "2.0.0");
        reg.publish(&img).unwrap();
        assert!(matches!(
            reg.publish(&img),
            Err(RegistryError::TagExists(_))
        ));
    }

    #[test]
    fn freeze_blocks_deploys_but_not_publishes() {
        let mut reg = ContainerRegistry::new();
        let v1 = ImageRef::new("recon", "1.0.0");
        let v2 = ImageRef::new("recon", "1.1.0");
        reg.publish(&v1).unwrap();
        reg.deploy(&v1).unwrap();
        reg.freeze();
        // CI can still publish new versions...
        reg.publish(&v2).unwrap();
        // ...but beamtime deployments are refused
        assert_eq!(reg.deploy(&v2), Err(RegistryError::Frozen));
        assert_eq!(reg.running_version("recon"), Some("1.0.0"));
        // maintenance window reopens deploys
        reg.unfreeze();
        reg.deploy(&v2).unwrap();
        assert_eq!(reg.running_version("recon"), Some("1.1.0"));
    }

    #[test]
    fn warm_start_is_much_cheaper() {
        assert!(
            ContainerRegistry::startup_cost(false).as_secs_f64()
                > 10.0 * ContainerRegistry::startup_cost(true).as_secs_f64()
        );
    }
}
