//! A Superfacility-API-shaped facade over the scheduler.
//!
//! The paper submits all NERSC work "via SFAPI using ALS's collaboration
//! account": an authenticated REST surface in front of Slurm. The facade
//! reproduces the operationally relevant parts — token-based sessions
//! that expire, per-account job ownership, submit/status/cancel verbs,
//! and rejection of unauthenticated calls — so the orchestration layer's
//! error handling can be exercised realistically.

use crate::scheduler::{JobEvent, JobId, JobRequest, JobState, Scheduler};
use als_simcore::{SimDuration, SimInstant};
use std::collections::BTreeMap;

/// Errors returned by the API surface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SfApiError {
    /// Token unknown or expired.
    Unauthorized,
    /// Job does not exist or belongs to another account.
    NotFound,
    /// Request was malformed (e.g. zero nodes).
    BadRequest(String),
}

impl std::fmt::Display for SfApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SfApiError::Unauthorized => write!(f, "unauthorized"),
            SfApiError::NotFound => write!(f, "job not found"),
            SfApiError::BadRequest(m) => write!(f, "bad request: {m}"),
        }
    }
}

impl std::error::Error for SfApiError {}

/// An issued access token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Token(u64);

/// Server side: wraps a [`Scheduler`] with authentication and ownership.
#[derive(Debug)]
pub struct SfApiServer {
    scheduler: Scheduler,
    tokens: BTreeMap<Token, (String, SimInstant)>, // account, expiry
    owners: BTreeMap<JobId, String>,
    next_token: u64,
    token_lifetime: SimDuration,
    /// When false the identity provider is down: new tokens are issued
    /// already expired, so every authenticated call fails Unauthorized.
    auth_available: bool,
}

impl SfApiServer {
    /// Stand up the API over a partition of `nodes` nodes.
    pub fn new(nodes: usize) -> Self {
        SfApiServer {
            scheduler: Scheduler::new(nodes),
            tokens: BTreeMap::new(),
            owners: BTreeMap::new(),
            next_token: 1,
            // SFAPI client-credential tokens are short-lived
            token_lifetime: SimDuration::from_mins(10),
            auth_available: true,
        }
    }

    /// Take the identity provider down (or bring it back). While down,
    /// `authenticate` hands out dead tokens and all API verbs fail with
    /// [`SfApiError::Unauthorized`] — the session-auth expiry incident
    /// class from the paper's §5.3 remediation discussion.
    pub fn set_auth_available(&mut self, available: bool) {
        self.auth_available = available;
    }

    pub fn auth_available(&self) -> bool {
        self.auth_available
    }

    /// Invalidate every outstanding session token (forced re-auth).
    pub fn revoke_all_tokens(&mut self) {
        self.tokens.clear();
    }

    /// Exchange client credentials for a token (the collaboration-account
    /// OAuth flow).
    pub fn authenticate(&mut self, account: &str, now: SimInstant) -> Token {
        let t = Token(self.next_token);
        self.next_token += 1;
        let expiry = if self.auth_available {
            now + self.token_lifetime
        } else {
            now // already expired: every use fails Unauthorized
        };
        self.tokens.insert(t, (account.to_string(), expiry));
        t
    }

    fn account_for(&self, token: Token, now: SimInstant) -> Result<String, SfApiError> {
        match self.tokens.get(&token) {
            Some((account, expiry)) if *expiry > now => Ok(account.clone()),
            _ => Err(SfApiError::Unauthorized),
        }
    }

    /// Submit a job on behalf of the token's account.
    pub fn submit(
        &mut self,
        token: Token,
        req: JobRequest,
        now: SimInstant,
    ) -> Result<(JobId, Vec<JobEvent>), SfApiError> {
        let account = self.account_for(token, now)?;
        if req.nodes == 0 {
            return Err(SfApiError::BadRequest("zero nodes requested".into()));
        }
        if req.nodes > self.scheduler.total_nodes() {
            return Err(SfApiError::BadRequest(format!(
                "{} nodes exceeds partition size {}",
                req.nodes,
                self.scheduler.total_nodes()
            )));
        }
        let (id, events) = self.scheduler.submit(req, now);
        self.owners.insert(id, account);
        Ok((id, events))
    }

    /// Poll a job's state.
    pub fn status(&self, token: Token, id: JobId, now: SimInstant) -> Result<JobState, SfApiError> {
        let account = self.account_for(token, now)?;
        match self.owners.get(&id) {
            Some(owner) if *owner == account => {
                self.scheduler.state(id).ok_or(SfApiError::NotFound)
            }
            _ => Err(SfApiError::NotFound),
        }
    }

    /// Cancel a job.
    pub fn cancel(
        &mut self,
        token: Token,
        id: JobId,
        now: SimInstant,
    ) -> Result<Vec<JobEvent>, SfApiError> {
        let account = self.account_for(token, now)?;
        match self.owners.get(&id) {
            Some(owner) if *owner == account => Ok(self.scheduler.cancel(id, now)),
            _ => Err(SfApiError::NotFound),
        }
    }

    /// Direct access for the DES driver (time advancement, introspection).
    pub fn scheduler_mut(&mut self) -> &mut Scheduler {
        &mut self.scheduler
    }

    pub fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }
}

/// Client side: holds credentials and transparently re-authenticates when
/// the token expires (what the splash_flows Globus/SFAPI SDK wrappers do).
#[derive(Debug)]
pub struct SfApiClient {
    account: String,
    token: Option<Token>,
}

impl SfApiClient {
    pub fn new(account: &str) -> Self {
        SfApiClient {
            account: account.to_string(),
            token: None,
        }
    }

    pub fn account(&self) -> &str {
        &self.account
    }

    fn ensure_token(&mut self, server: &mut SfApiServer, now: SimInstant) -> Token {
        if let Some(t) = self.token {
            if server.account_for(t, now).is_ok() {
                return t;
            }
        }
        let t = server.authenticate(&self.account, now);
        self.token = Some(t);
        t
    }

    /// Submit with automatic (re)authentication.
    pub fn submit(
        &mut self,
        server: &mut SfApiServer,
        req: JobRequest,
        now: SimInstant,
    ) -> Result<(JobId, Vec<JobEvent>), SfApiError> {
        let t = self.ensure_token(server, now);
        server.submit(t, req, now)
    }

    pub fn status(
        &mut self,
        server: &mut SfApiServer,
        id: JobId,
        now: SimInstant,
    ) -> Result<JobState, SfApiError> {
        let t = self.ensure_token(server, now);
        server.status(t, id, now)
    }

    pub fn cancel(
        &mut self,
        server: &mut SfApiServer,
        id: JobId,
        now: SimInstant,
    ) -> Result<Vec<JobEvent>, SfApiError> {
        let t = self.ensure_token(server, now);
        server.cancel(t, id, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::Qos;

    fn req(nodes: usize) -> JobRequest {
        JobRequest {
            name: "recon".into(),
            qos: Qos::Realtime,
            nodes,
            runtime: SimDuration::from_mins(15),
            walltime_limit: SimDuration::from_mins(30),
        }
    }

    #[test]
    fn authenticated_submit_and_status() {
        let mut server = SfApiServer::new(4);
        let t0 = SimInstant::ZERO;
        let token = server.authenticate("als", t0);
        let (id, _) = server.submit(token, req(1), t0).unwrap();
        assert_eq!(server.status(token, id, t0).unwrap(), JobState::Running);
    }

    #[test]
    fn bad_token_is_unauthorized() {
        let mut server = SfApiServer::new(4);
        let t0 = SimInstant::ZERO;
        assert_eq!(
            server.submit(Token(999), req(1), t0).unwrap_err(),
            SfApiError::Unauthorized
        );
    }

    #[test]
    fn expired_token_is_unauthorized() {
        let mut server = SfApiServer::new(4);
        let t0 = SimInstant::ZERO;
        let token = server.authenticate("als", t0);
        let later = t0 + SimDuration::from_hours(1);
        assert_eq!(
            server.submit(token, req(1), later).unwrap_err(),
            SfApiError::Unauthorized
        );
    }

    #[test]
    fn client_reauthenticates_transparently() {
        let mut server = SfApiServer::new(4);
        let mut client = SfApiClient::new("als");
        let t0 = SimInstant::ZERO;
        let (id, _) = client.submit(&mut server, req(1), t0).unwrap();
        // token would have expired by now; the client must renew
        let later = t0 + SimDuration::from_hours(2);
        assert_eq!(
            client.status(&mut server, id, later).unwrap(),
            JobState::Running
        );
    }

    #[test]
    fn auth_outage_rejects_everything_until_restored() {
        let mut server = SfApiServer::new(4);
        let mut client = SfApiClient::new("als");
        let t0 = SimInstant::ZERO;
        let (id, _) = client.submit(&mut server, req(1), t0).unwrap();

        // the outage revokes live sessions and poisons new ones
        server.set_auth_available(false);
        server.revoke_all_tokens();
        let t1 = t0 + SimDuration::from_secs(30);
        assert_eq!(
            client.status(&mut server, id, t1).unwrap_err(),
            SfApiError::Unauthorized
        );
        assert_eq!(
            client.submit(&mut server, req(1), t1).unwrap_err(),
            SfApiError::Unauthorized
        );

        // restoration: the client transparently re-authenticates
        server.set_auth_available(true);
        let t2 = t1 + SimDuration::from_secs(30);
        assert_eq!(
            client.status(&mut server, id, t2).unwrap(),
            JobState::Running
        );
    }

    #[test]
    fn cross_account_access_is_hidden() {
        let mut server = SfApiServer::new(4);
        let t0 = SimInstant::ZERO;
        let als = server.authenticate("als", t0);
        let other = server.authenticate("other", t0);
        let (id, _) = server.submit(als, req(1), t0).unwrap();
        assert_eq!(
            server.status(other, id, t0).unwrap_err(),
            SfApiError::NotFound
        );
        assert_eq!(
            server.cancel(other, id, t0).unwrap_err(),
            SfApiError::NotFound
        );
        // rightful owner still works
        assert!(server.cancel(als, id, t0).is_ok());
    }

    #[test]
    fn malformed_requests_are_rejected() {
        let mut server = SfApiServer::new(2);
        let t0 = SimInstant::ZERO;
        let token = server.authenticate("als", t0);
        assert!(matches!(
            server.submit(token, req(0), t0).unwrap_err(),
            SfApiError::BadRequest(_)
        ));
        assert!(matches!(
            server.submit(token, req(3), t0).unwrap_err(),
            SfApiError::BadRequest(_)
        ));
    }
}
