//! # als-hpc
//!
//! Facility-side substrates for the multi-facility simulation:
//!
//! * [`scheduler`] — a Slurm-like batch scheduler with partitions, QOS
//!   priorities (including NERSC's `realtime` QOS the paper's jobs use),
//!   FIFO-within-priority dispatch and conservative backfill;
//! * [`sfapi`] — a Superfacility-API-shaped facade over the scheduler:
//!   token-authenticated sessions, job submission/status/cancel, the
//!   collaboration-account model;
//! * [`storage`] — tiered storage (beamline spinning disk, pscratch, CFS,
//!   Eagle, HPSS) with capacity accounting, per-tier retention, and the
//!   age-based pruning the orchestration layer schedules;
//! * [`container`] — podman-hpc-style image registry with version pinning
//!   (the paper freezes container versions during beamtime);
//! * [`circuit`] — per-facility circuit breakers that gate where new work
//!   is routed during an outage (§5.3 remediation).

pub mod circuit;
pub mod container;
pub mod health;
pub mod scheduler;
pub mod sfapi;
pub mod storage;

pub use circuit::{BreakerConfig, BreakerState, CircuitBreaker};
pub use container::{ContainerRegistry, ImageRef};
pub use health::{Environment, HealthCheck, HealthMonitor, HealthState};
pub use scheduler::{JobEvent, JobId, JobRequest, JobState, Qos, Scheduler};
pub use sfapi::{SfApiClient, SfApiError, SfApiServer};
pub use storage::{PruneReport, StorageError, StorageTier, TierKind};
