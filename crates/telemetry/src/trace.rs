//! Flow-scoped trace spans on the simulation clock.
//!
//! A [`ScanTrace`] is the full story of one scan: a span per lifecycle
//! stage (ingest → transfer → queue-wait → recon → multiscale →
//! back-transfer → catalog), each tagged with the facility that served
//! it. Redirect chains are parent/child links: when the router moves a
//! failed branch to another facility, the replacement span points at the
//! span it supersedes, so the whole redirect history reads from one
//! trace.
//!
//! Traces are built by applying [`TraceEvent`]s — plain serializable
//! records carrying only `SimInstant` timestamps. The orchestrator
//! journals every event next to its own state records, which makes the
//! trace store a replayable projection: recovery rebuilds the exact same
//! [`TraceStore`] (and therefore the exact same report) the dead
//! incarnation had.

use crate::report::{ReportRow, StageStats, TelemetryReport};
use als_simcore::{SimDuration, SimInstant};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The seven lifecycle stages a scan's spans cover.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Stage {
    /// Detector write → scan detected and registered at the beamline.
    Ingest,
    /// WAN transfer of the raw scan to the execution facility.
    Transfer,
    /// Submitted to the facility scheduler → observed running.
    QueueWait,
    /// Reconstruction compute.
    Recon,
    /// Multi-resolution pyramid build at the facility.
    Multiscale,
    /// WAN transfer of the products back to the beamline.
    BackTransfer,
    /// Catalogue/archive registration of the finished products.
    Catalog,
}

impl Stage {
    pub const ALL: [Stage; 7] = [
        Stage::Ingest,
        Stage::Transfer,
        Stage::QueueWait,
        Stage::Recon,
        Stage::Multiscale,
        Stage::BackTransfer,
        Stage::Catalog,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            Stage::Ingest => "ingest",
            Stage::Transfer => "transfer",
            Stage::QueueWait => "queue-wait",
            Stage::Recon => "recon",
            Stage::Multiscale => "multiscale",
            Stage::BackTransfer => "back-transfer",
            Stage::Catalog => "catalog",
        }
    }
}

/// How a span ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpanOutcome {
    Ok,
    Failed,
    Cancelled,
}

pub type SpanId = u64;

/// One serializable trace mutation. These are what the orchestrator
/// journals; [`TraceStore::apply`] is the only consumer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// Open a span. `parent` links a redirect replacement to the span it
    /// supersedes (same stage, earlier facility).
    Start {
        scan: String,
        span: SpanId,
        parent: Option<SpanId>,
        stage: Stage,
        facility: String,
        at: SimInstant,
    },
    /// Close a span with an outcome.
    End {
        scan: String,
        span: SpanId,
        at: SimInstant,
        outcome: SpanOutcome,
    },
    /// Attach a key/value annotation (e.g. a router decision snapshot).
    Note {
        scan: String,
        span: SpanId,
        at: SimInstant,
        key: String,
        value: String,
    },
}

impl TraceEvent {
    pub fn scan(&self) -> &str {
        match self {
            TraceEvent::Start { scan, .. }
            | TraceEvent::End { scan, .. }
            | TraceEvent::Note { scan, .. } => scan,
        }
    }

    pub fn span(&self) -> SpanId {
        match self {
            TraceEvent::Start { span, .. }
            | TraceEvent::End { span, .. }
            | TraceEvent::Note { span, .. } => *span,
        }
    }

    pub fn at(&self) -> SimInstant {
        match self {
            TraceEvent::Start { at, .. }
            | TraceEvent::End { at, .. }
            | TraceEvent::Note { at, .. } => *at,
        }
    }
}

/// A timestamped annotation on a span.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Note {
    pub at: SimInstant,
    pub key: String,
    pub value: String,
}

/// One stage execution within a scan's life.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Span {
    pub id: SpanId,
    pub parent: Option<SpanId>,
    pub stage: Stage,
    pub facility: String,
    pub start: SimInstant,
    pub end: Option<SimInstant>,
    pub outcome: Option<SpanOutcome>,
    pub notes: Vec<Note>,
}

impl Span {
    pub fn duration(&self) -> Option<SimDuration> {
        Some(self.end?.duration_since(self.start))
    }

    pub fn is_closed(&self) -> bool {
        self.end.is_some()
    }
}

/// The spans of one scan, in event order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ScanTrace {
    pub scan: String,
    pub spans: Vec<Span>,
    index: BTreeMap<SpanId, usize>,
}

impl ScanTrace {
    pub fn span(&self, id: SpanId) -> Option<&Span> {
        self.index.get(&id).map(|&i| &self.spans[i])
    }

    /// Closed-span intervals, sorted by start.
    fn intervals(&self) -> Vec<(SimInstant, SimInstant)> {
        let mut v: Vec<(SimInstant, SimInstant)> = self
            .spans
            .iter()
            .filter_map(|s| Some((s.start, s.end?)))
            .collect();
        v.sort();
        v
    }

    /// First span start → last span end, the scan's end-to-end latency.
    pub fn end_to_end(&self) -> Option<SimDuration> {
        let iv = self.intervals();
        let first = iv.iter().map(|&(s, _)| s).min()?;
        let last = iv.iter().map(|&(_, e)| e).max()?;
        Some(last.duration_since(first))
    }

    /// Total time covered by at least one span (interval union).
    pub fn covered(&self) -> SimDuration {
        let mut total = SimDuration::ZERO;
        let mut cur: Option<(SimInstant, SimInstant)> = None;
        for (s, e) in self.intervals() {
            match cur {
                Some((cs, ce)) if s <= ce => cur = Some((cs, ce.max(e))),
                Some((cs, ce)) => {
                    total += ce.duration_since(cs);
                    cur = Some((s, e));
                }
                None => cur = Some((s, e)),
            }
        }
        if let Some((cs, ce)) = cur {
            total += ce.duration_since(cs);
        }
        total
    }

    /// Sum of every closed span's duration (double-counts overlap).
    pub fn stage_sum(&self) -> SimDuration {
        self.spans
            .iter()
            .filter_map(Span::duration)
            .fold(SimDuration::ZERO, |a, d| a + d)
    }

    /// Time where two or more spans ran concurrently: `stage_sum -
    /// covered`.
    pub fn overlap(&self) -> SimDuration {
        let (sum, cov) = (self.stage_sum(), self.covered());
        SimDuration::from_micros(sum.as_micros().saturating_sub(cov.as_micros()))
    }

    /// Idle time inside the scan's life no span accounts for:
    /// `end_to_end - covered`.
    pub fn idle(&self) -> SimDuration {
        let Some(e2e) = self.end_to_end() else {
            return SimDuration::ZERO;
        };
        SimDuration::from_micros(e2e.as_micros().saturating_sub(self.covered().as_micros()))
    }

    /// Total closed-span duration per stage.
    pub fn stage_total(&self, stage: Stage) -> SimDuration {
        self.spans
            .iter()
            .filter(|s| s.stage == stage)
            .filter_map(Span::duration)
            .fold(SimDuration::ZERO, |a, d| a + d)
    }
}

/// All traces of a campaign, applied from journalled events.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceStore {
    scans: BTreeMap<String, ScanTrace>,
    events_applied: u64,
}

impl TraceStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Apply one event. Unknown spans in `End`/`Note` are ignored (a
    /// torn journal tail may lose a `Start`); double-`End`s keep the
    /// first close, which makes replay idempotent against duplicates.
    pub fn apply(&mut self, ev: &TraceEvent) {
        self.events_applied += 1;
        match ev {
            TraceEvent::Start {
                scan,
                span,
                parent,
                stage,
                facility,
                at,
            } => {
                let trace = self.scans.entry(scan.clone()).or_insert_with(|| ScanTrace {
                    scan: scan.clone(),
                    ..Default::default()
                });
                if trace.index.contains_key(span) {
                    return; // duplicate start: keep the first
                }
                trace.index.insert(*span, trace.spans.len());
                trace.spans.push(Span {
                    id: *span,
                    parent: *parent,
                    stage: *stage,
                    facility: facility.clone(),
                    start: *at,
                    end: None,
                    outcome: None,
                    notes: Vec::new(),
                });
            }
            TraceEvent::End {
                scan,
                span,
                at,
                outcome,
            } => {
                if let Some(s) = Self::span_mut(&mut self.scans, scan, *span) {
                    if s.end.is_none() {
                        s.end = Some(*at);
                        s.outcome = Some(*outcome);
                    }
                }
            }
            TraceEvent::Note {
                scan,
                span,
                at,
                key,
                value,
            } => {
                if let Some(s) = Self::span_mut(&mut self.scans, scan, *span) {
                    s.notes.push(Note {
                        at: *at,
                        key: key.clone(),
                        value: value.clone(),
                    });
                }
            }
        }
    }

    fn span_mut<'a>(
        scans: &'a mut BTreeMap<String, ScanTrace>,
        scan: &str,
        id: SpanId,
    ) -> Option<&'a mut Span> {
        let trace = scans.get_mut(scan)?;
        let &i = trace.index.get(&id)?;
        Some(&mut trace.spans[i])
    }

    pub fn scan(&self, name: &str) -> Option<&ScanTrace> {
        self.scans.get(name)
    }

    pub fn scans(&self) -> impl Iterator<Item = &ScanTrace> {
        self.scans.values()
    }

    pub fn scan_count(&self) -> usize {
        self.scans.len()
    }

    pub fn events_applied(&self) -> u64 {
        self.events_applied
    }

    /// Highest span id seen anywhere — a recovered incarnation resumes
    /// its span allocator above this.
    pub fn max_span_id(&self) -> Option<SpanId> {
        self.scans
            .values()
            .flat_map(|t| t.index.keys())
            .max()
            .copied()
    }

    /// Merge another store's scans (the fleet view over per-shard
    /// stores). A scan's events all route to one shard, so scan-level
    /// collisions merge span-by-span keeping first-seen state.
    pub fn merge_from(&mut self, other: &TraceStore) {
        for (name, trace) in &other.scans {
            match self.scans.get_mut(name) {
                None => {
                    self.scans.insert(name.clone(), trace.clone());
                }
                Some(dst) => {
                    for span in &trace.spans {
                        if !dst.index.contains_key(&span.id) {
                            dst.index.insert(span.id, dst.spans.len());
                            dst.spans.push(span.clone());
                        }
                    }
                }
            }
        }
        self.events_applied += other.events_applied;
    }

    /// The Table-2-style per-(facility, stage) latency distribution over
    /// every closed span, with exact nearest-rank quantiles.
    pub fn report(&self) -> TelemetryReport {
        let mut by_key: BTreeMap<(String, Stage), Vec<u64>> = BTreeMap::new();
        for trace in self.scans.values() {
            for span in &trace.spans {
                if let Some(d) = span.duration() {
                    by_key
                        .entry((span.facility.clone(), span.stage))
                        .or_default()
                        .push(d.as_micros());
                }
            }
        }
        let rows = by_key
            .into_iter()
            .map(|((facility, stage), mut micros)| {
                micros.sort_unstable();
                ReportRow {
                    facility,
                    stage,
                    stats: StageStats::from_sorted_micros(&micros),
                }
            })
            .collect();
        TelemetryReport { rows }
    }

    /// Human-readable timeline of one scan: every span in start order
    /// with redirect links, then the accounting line (stage sum −
    /// overlap = covered; covered + idle = end-to-end).
    pub fn timeline(&self, scan: &str) -> Option<String> {
        let trace = self.scans.get(scan)?;
        let mut spans: Vec<&Span> = trace.spans.iter().collect();
        spans.sort_by_key(|s| (s.start, s.id));
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{scan}: end-to-end {:.1} s = covered {:.1} s + idle {:.1} s (stage sum {:.1} s, overlap {:.1} s)",
            trace.end_to_end().unwrap_or(SimDuration::ZERO).as_secs_f64(),
            trace.covered().as_secs_f64(),
            trace.idle().as_secs_f64(),
            trace.stage_sum().as_secs_f64(),
            trace.overlap().as_secs_f64(),
        );
        for s in spans {
            let end = s
                .end
                .map(|e| format!("{:9.1}", e.as_secs_f64()))
                .unwrap_or_else(|| "     open".into());
            let outcome = match s.outcome {
                Some(SpanOutcome::Ok) => "ok",
                Some(SpanOutcome::Failed) => "FAILED",
                Some(SpanOutcome::Cancelled) => "cancelled",
                None => "…",
            };
            let link = s
                .parent
                .map(|p| format!("  ↳ supersedes #{p}"))
                .unwrap_or_default();
            let _ = writeln!(
                out,
                "  #{:<4} [{:9.1} → {end}] {:<13} @{:<6} {outcome}{link}",
                s.id,
                s.start.as_secs_f64(),
                s.stage.name(),
                s.facility,
            );
            for n in &s.notes {
                let _ = writeln!(
                    out,
                    "        · {:9.1} {} = {}",
                    n.at.as_secs_f64(),
                    n.key,
                    n.value
                );
            }
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimInstant {
        SimInstant::ZERO + SimDuration::from_secs(s)
    }

    fn start(scan: &str, span: SpanId, stage: Stage, fac: &str, at: SimInstant) -> TraceEvent {
        TraceEvent::Start {
            scan: scan.into(),
            span,
            parent: None,
            stage,
            facility: fac.into(),
            at,
        }
    }

    fn end(scan: &str, span: SpanId, at: SimInstant) -> TraceEvent {
        TraceEvent::End {
            scan: scan.into(),
            span,
            at,
            outcome: SpanOutcome::Ok,
        }
    }

    #[test]
    fn spans_build_a_scan_story() {
        let mut ts = TraceStore::new();
        ts.apply(&start("scan_1", 0, Stage::Ingest, "als", t(0)));
        ts.apply(&end("scan_1", 0, t(10)));
        ts.apply(&start("scan_1", 1, Stage::Transfer, "nersc", t(10)));
        ts.apply(&end("scan_1", 1, t(100)));
        let trace = ts.scan("scan_1").unwrap();
        assert_eq!(trace.spans.len(), 2);
        assert_eq!(trace.end_to_end(), Some(SimDuration::from_secs(100)));
        assert_eq!(
            trace.stage_total(Stage::Transfer),
            SimDuration::from_secs(90)
        );
        assert_eq!(trace.overlap(), SimDuration::ZERO);
        assert_eq!(trace.idle(), SimDuration::ZERO);
    }

    #[test]
    fn overlap_and_idle_accounting_identities_hold() {
        let mut ts = TraceStore::new();
        // [0,10] and [5,20] overlap by 5; [30,40] leaves a 10 s gap
        ts.apply(&start("s", 0, Stage::Recon, "nersc", t(0)));
        ts.apply(&end("s", 0, t(10)));
        ts.apply(&start("s", 1, Stage::BackTransfer, "nersc", t(5)));
        ts.apply(&end("s", 1, t(20)));
        ts.apply(&start("s", 2, Stage::Catalog, "als", t(30)));
        ts.apply(&end("s", 2, t(40)));
        let tr = ts.scan("s").unwrap();
        assert_eq!(tr.stage_sum(), SimDuration::from_secs(35));
        assert_eq!(tr.covered(), SimDuration::from_secs(30));
        assert_eq!(tr.overlap(), SimDuration::from_secs(5));
        assert_eq!(tr.end_to_end(), Some(SimDuration::from_secs(40)));
        assert_eq!(tr.idle(), SimDuration::from_secs(10));
        // the acceptance identity: stage_sum - overlap + idle = end-to-end
        let lhs = tr.stage_sum().as_micros() - tr.overlap().as_micros() + tr.idle().as_micros();
        assert_eq!(lhs, tr.end_to_end().unwrap().as_micros());
    }

    #[test]
    fn redirects_link_parent_spans_and_notes_attach() {
        let mut ts = TraceStore::new();
        ts.apply(&start("s", 0, Stage::Recon, "nersc", t(0)));
        ts.apply(&TraceEvent::End {
            scan: "s".into(),
            span: 0,
            at: t(50),
            outcome: SpanOutcome::Failed,
        });
        ts.apply(&TraceEvent::Start {
            scan: "s".into(),
            span: 1,
            parent: Some(0),
            stage: Stage::Recon,
            facility: "alcf".into(),
            at: t(50),
        });
        ts.apply(&TraceEvent::Note {
            scan: "s".into(),
            span: 1,
            at: t(50),
            key: "router".into(),
            value: "breaker=Open heartbeat_stale=true hop=1".into(),
        });
        ts.apply(&end("s", 1, t(120)));
        let tr = ts.scan("s").unwrap();
        assert_eq!(tr.span(1).unwrap().parent, Some(0));
        assert_eq!(tr.span(0).unwrap().outcome, Some(SpanOutcome::Failed));
        assert_eq!(tr.span(1).unwrap().notes[0].key, "router");
        let timeline = ts.timeline("s").unwrap();
        assert!(timeline.contains("supersedes #0"));
        assert!(timeline.contains("breaker=Open"));
    }

    #[test]
    fn replay_is_idempotent_and_tolerates_lost_starts() {
        let mut ts = TraceStore::new();
        let s0 = start("s", 0, Stage::Ingest, "als", t(0));
        let e0 = end("s", 0, t(5));
        ts.apply(&s0);
        ts.apply(&e0);
        ts.apply(&s0); // duplicate start ignored
        ts.apply(&e0); // duplicate end keeps first close
        ts.apply(&end("s", 99, t(7))); // end without start: dropped
        let tr = ts.scan("s").unwrap();
        assert_eq!(tr.spans.len(), 1);
        assert_eq!(tr.span(0).unwrap().end, Some(t(5)));
    }

    #[test]
    fn events_round_trip_through_json() {
        let evs = vec![
            TraceEvent::Start {
                scan: "scan_7".into(),
                span: 3,
                parent: Some(1),
                stage: Stage::QueueWait,
                facility: "olcf".into(),
                at: t(42),
            },
            TraceEvent::End {
                scan: "scan_7".into(),
                span: 3,
                at: t(99),
                outcome: SpanOutcome::Cancelled,
            },
            TraceEvent::Note {
                scan: "scan_7".into(),
                span: 3,
                at: t(99),
                key: "k".into(),
                value: "v".into(),
            },
        ];
        for ev in evs {
            let json = serde_json::to_string(&ev).unwrap();
            let back: TraceEvent = serde_json::from_str(&json).unwrap();
            assert_eq!(back, ev);
        }
    }

    #[test]
    fn merge_builds_the_fleet_view() {
        let mut a = TraceStore::new();
        a.apply(&start("scan_a", 0, Stage::Ingest, "als", t(0)));
        a.apply(&end("scan_a", 0, t(4)));
        let mut b = TraceStore::new();
        b.apply(&start("scan_b", 1, Stage::Ingest, "als", t(1)));
        b.apply(&end("scan_b", 1, t(9)));
        let mut merged = TraceStore::new();
        merged.merge_from(&a);
        merged.merge_from(&b);
        assert_eq!(merged.scan_count(), 2);
        assert_eq!(merged.max_span_id(), Some(1));
        let report = merged.report();
        assert_eq!(report.rows.len(), 1, "one (facility, stage) row");
        assert_eq!(report.rows[0].stats.n, 2);
        assert!((report.rows[0].stats.min - 4.0).abs() < 1e-9);
        assert!((report.rows[0].stats.max - 8.0).abs() < 1e-9);
    }
}
