//! Table-2-style latency reports.
//!
//! The paper's Table 2 aggregates per-stage completion times over the
//! last N successful flow runs. [`TelemetryReport`] is that table
//! generalized: one row per (facility, stage) with min/p50/p90/max over
//! every closed span, computed with exact nearest-rank quantiles on the
//! integer-microsecond durations — so a report built from a recovered
//! journal is bit-identical to the one the dead incarnation would have
//! produced.

use crate::trace::Stage;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Distribution summary for one (facility, stage) cell, seconds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageStats {
    pub n: usize,
    pub min: f64,
    pub p50: f64,
    pub p90: f64,
    pub max: f64,
}

impl StageStats {
    /// Exact nearest-rank stats over sorted integer-microsecond samples.
    pub fn from_sorted_micros(sorted: &[u64]) -> StageStats {
        assert!(!sorted.is_empty(), "stats need at least one sample");
        debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "input not sorted");
        let rank = |q: f64| -> u64 {
            let r = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            sorted[r - 1]
        };
        StageStats {
            n: sorted.len(),
            min: sorted[0] as f64 / 1e6,
            p50: rank(0.50) as f64 / 1e6,
            p90: rank(0.90) as f64 / 1e6,
            max: sorted[sorted.len() - 1] as f64 / 1e6,
        }
    }
}

/// One report row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReportRow {
    pub facility: String,
    pub stage: Stage,
    pub stats: StageStats,
}

/// The full per-stage, per-facility latency distribution.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TelemetryReport {
    pub rows: Vec<ReportRow>,
}

impl TelemetryReport {
    pub fn row(&self, facility: &str, stage: Stage) -> Option<&StageStats> {
        self.rows
            .iter()
            .find(|r| r.facility == facility && r.stage == stage)
            .map(|r| &r.stats)
    }

    /// Render the table (seconds, Table-2 layout).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<10} {:<13} {:>6} {:>10} {:>10} {:>10} {:>10}",
            "facility", "stage", "n", "min (s)", "p50 (s)", "p90 (s)", "max (s)"
        );
        let _ = writeln!(out, "{}", "-".repeat(74));
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{:<10} {:<13} {:>6} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
                r.facility,
                r.stage.name(),
                r.stats.n,
                r.stats.min,
                r.stats.p50,
                r.stats.p90,
                r.stats.max
            );
        }
        out
    }

    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_quantiles_are_exact() {
        // 10 samples 1..=10 s: p50 = 5th = 5 s, p90 = 9th = 9 s
        let micros: Vec<u64> = (1..=10u64).map(|s| s * 1_000_000).collect();
        let s = StageStats::from_sorted_micros(&micros);
        assert_eq!(s.n, 10);
        assert!((s.min - 1.0).abs() < 1e-9);
        assert!((s.p50 - 5.0).abs() < 1e-9);
        assert!((s.p90 - 9.0).abs() < 1e-9);
        assert!((s.max - 10.0).abs() < 1e-9);
        // a single sample is every quantile
        let one = StageStats::from_sorted_micros(&[2_500_000]);
        assert!((one.p50 - 2.5).abs() < 1e-9);
        assert!((one.p90 - 2.5).abs() < 1e-9);
    }

    #[test]
    fn report_renders_and_round_trips() {
        let report = TelemetryReport {
            rows: vec![ReportRow {
                facility: "nersc".into(),
                stage: Stage::Recon,
                stats: StageStats::from_sorted_micros(&[1_000_000, 2_000_000]),
            }],
        };
        let text = report.render();
        assert!(text.contains("nersc"));
        assert!(text.contains("recon"));
        let back: TelemetryReport = serde_json::from_str(&report.to_json()).unwrap();
        assert_eq!(back, report);
        assert!(report.row("nersc", Stage::Recon).is_some());
        assert!(report.row("nersc", Stage::Ingest).is_none());
    }
}
