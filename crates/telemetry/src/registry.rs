//! Lock-light metrics registry.
//!
//! Registration resolves a metric's name + label set to a shared handle
//! once (a write-lock on the registry map); after that every increment,
//! set, or histogram record is one or two atomic operations with no lock
//! and no allocation — cheap enough for the orchestrator shard loops and
//! the reconstruction pipeline's per-slice path.
//!
//! Histograms use fixed log₂ buckets over `u64` samples: bucket `i`
//! holds values in `[2^i, 2^(i+1))` (bucket 0 also takes zero), with
//! exact atomic min/max kept alongside so the tails of a report are not
//! bucket-quantized. Quantiles are nearest-rank over the bucket
//! cumulative, answering with the bucket's inclusive upper bound — a
//! conservative (never under-reporting) estimate.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Number of log₂ buckets: one per possible `u64` bit length.
pub const HIST_BUCKETS: usize = 64;

fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        63 - v.leading_zeros() as usize
    }
}

/// Inclusive upper bound of bucket `i`.
fn bucket_upper(i: usize) -> u64 {
    if i >= 63 {
        u64::MAX
    } else {
        (1u64 << (i + 1)) - 1
    }
}

/// A monotone counter handle. Clones share the same underlying cell.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed gauge handle (current value, not a rate).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn dec(&self) {
        self.add(-1);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
pub struct HistogramCore {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for HistogramCore {
    fn default() -> Self {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// A log-scale histogram handle over `u64` samples.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    pub fn record(&self, v: u64) {
        let c = &self.0;
        c.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        c.count.fetch_add(1, Ordering::Relaxed);
        c.sum.fetch_add(v, Ordering::Relaxed);
        c.min.fetch_min(v, Ordering::Relaxed);
        c.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record a duration in seconds as integer microseconds.
    pub fn record_secs(&self, secs: f64) {
        debug_assert!(secs >= 0.0, "negative duration");
        self.record((secs * 1e6).round().max(0.0) as u64);
    }

    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        let c = &self.0;
        let count = c.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            buckets: c
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count,
            sum: c.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                None
            } else {
                Some(c.min.load(Ordering::Relaxed))
            },
            max: if count == 0 {
                None
            } else {
                Some(c.max.load(Ordering::Relaxed))
            },
        }
    }

    fn merge_from(&self, other: &Histogram) {
        let (a, b) = (&self.0, &other.0);
        for (dst, src) in a.buckets.iter().zip(b.buckets.iter()) {
            dst.fetch_add(src.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        let n = b.count.load(Ordering::Relaxed);
        if n > 0 {
            a.count.fetch_add(n, Ordering::Relaxed);
            a.sum
                .fetch_add(b.sum.load(Ordering::Relaxed), Ordering::Relaxed);
            a.min
                .fetch_min(b.min.load(Ordering::Relaxed), Ordering::Relaxed);
            a.max
                .fetch_max(b.max.load(Ordering::Relaxed), Ordering::Relaxed);
        }
    }
}

/// Point-in-time histogram state, serializable for the JSON endpoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Per-bucket counts, `buckets[i]` covering `[2^i, 2^(i+1))`.
    pub buckets: Vec<u64>,
    pub count: u64,
    pub sum: u64,
    pub min: Option<u64>,
    pub max: Option<u64>,
}

impl HistogramSnapshot {
    /// Nearest-rank quantile, `q` in `[0, 1]`. Exact at the extremes
    /// (`q = 0` → min, `q = 1` → max); interior quantiles answer with the
    /// inclusive upper bound of the bucket holding the ranked sample.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        if q <= 0.0 {
            return self.min;
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let hi = bucket_upper(i).min(self.max.unwrap_or(u64::MAX));
                return Some(hi.max(self.min.unwrap_or(0)));
            }
        }
        self.max
    }

    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

/// The metrics registry. Cheap to share (`Arc<Registry>`); all handle
/// operations go through `&self`.
#[derive(Default)]
pub struct Registry {
    inner: RwLock<Inner>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.read().unwrap();
        f.debug_struct("Registry")
            .field("counters", &inner.counters.len())
            .field("gauges", &inner.gauges.len())
            .field("histograms", &inner.histograms.len())
            .finish()
    }
}

/// Canonical key: `name` alone, or `name{k1="v1",k2="v2"}` with labels
/// sorted, so the same label set always interns to the same metric.
fn key_of(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut sorted: Vec<(&str, &str)> = labels.to_vec();
    sorted.sort_unstable();
    let mut s = String::with_capacity(name.len() + 16 * sorted.len());
    s.push_str(name);
    s.push('{');
    for (i, (k, v)) in sorted.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{k}=\"{v}\"");
    }
    s.push('}');
    s
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or re-fetch) a counter. The returned handle is the
    /// interned id: keep it and increment without touching the registry.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let key = key_of(name, labels);
        if let Some(c) = self.inner.read().unwrap().counters.get(&key) {
            return c.clone();
        }
        self.inner
            .write()
            .unwrap()
            .counters
            .entry(key)
            .or_default()
            .clone()
    }

    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = key_of(name, labels);
        if let Some(g) = self.inner.read().unwrap().gauges.get(&key) {
            return g.clone();
        }
        self.inner
            .write()
            .unwrap()
            .gauges
            .entry(key)
            .or_default()
            .clone()
    }

    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        let key = key_of(name, labels);
        if let Some(h) = self.inner.read().unwrap().histograms.get(&key) {
            return h.clone();
        }
        self.inner
            .write()
            .unwrap()
            .histograms
            .entry(key)
            .or_default()
            .clone()
    }

    /// Fold another registry's state into this one: counters and
    /// histograms add, gauges sum (a fleet-wide gauge is the sum of the
    /// shard-local occupancies). Metrics absent here are registered.
    pub fn merge_from(&self, other: &Registry) {
        let src = other.inner.read().unwrap();
        for (key, c) in &src.counters {
            if let Some(dst) = self.inner.read().unwrap().counters.get(key) {
                dst.add(c.get());
                continue;
            }
            self.inner
                .write()
                .unwrap()
                .counters
                .entry(key.clone())
                .or_default()
                .add(c.get());
        }
        for (key, g) in &src.gauges {
            if let Some(dst) = self.inner.read().unwrap().gauges.get(key) {
                dst.add(g.get());
                continue;
            }
            self.inner
                .write()
                .unwrap()
                .gauges
                .entry(key.clone())
                .or_default()
                .add(g.get());
        }
        for (key, h) in &src.histograms {
            if let Some(dst) = self.inner.read().unwrap().histograms.get(key) {
                dst.merge_from(h);
                continue;
            }
            self.inner
                .write()
                .unwrap()
                .histograms
                .entry(key.clone())
                .or_default()
                .merge_from(h);
        }
    }

    /// Point-in-time snapshot of every registered metric.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let inner = self.inner.read().unwrap();
        RegistrySnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, c)| (k.clone(), c.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, g)| (k.clone(), g.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.snapshot()))
                .collect(),
        }
    }
}

/// Serializable registry state: the JSON endpoint body, and the input to
/// the Prometheus text renderer.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RegistrySnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, i64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

/// Split a canonical key back into `(name, label-block)` where the label
/// block includes the braces (empty string when unlabelled).
fn split_key(key: &str) -> (&str, &str) {
    match key.find('{') {
        Some(i) => (&key[..i], &key[i..]),
        None => (key, ""),
    }
}

impl RegistrySnapshot {
    /// Prometheus text exposition format (counters as `_total`-style
    /// counters, histograms as cumulative `_bucket{le=...}` series).
    pub fn prometheus_text(&self) -> String {
        let mut out = String::new();
        for (key, v) in &self.counters {
            let (name, labels) = split_key(key);
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name}{labels} {v}");
        }
        for (key, v) in &self.gauges {
            let (name, labels) = split_key(key);
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name}{labels} {v}");
        }
        for (key, h) in &self.histograms {
            let (name, labels) = split_key(key);
            let inner = labels
                .strip_prefix('{')
                .and_then(|l| l.strip_suffix('}'))
                .unwrap_or("");
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cum = 0u64;
            for (i, &n) in h.buckets.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                cum += n;
                let le = bucket_upper(i);
                if inner.is_empty() {
                    let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cum}");
                } else {
                    let _ = writeln!(out, "{name}_bucket{{{inner},le=\"{le}\"}} {cum}");
                }
            }
            if inner.is_empty() {
                let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
            } else {
                let _ = writeln!(out, "{name}_bucket{{{inner},le=\"+Inf\"}} {}", h.count);
            }
            let _ = writeln!(out, "{name}_sum{labels} {}", h.sum);
            let _ = writeln!(out, "{name}_count{labels} {}", h.count);
        }
        out
    }

    /// The JSON endpoint body.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let r = Registry::new();
        let c = r.counter("scans_total", &[("facility", "nersc")]);
        c.inc();
        c.add(4);
        // re-registration returns the same cell
        let c2 = r.counter("scans_total", &[("facility", "nersc")]);
        c2.inc();
        assert_eq!(c.get(), 6);
        let g = r.gauge("queue_depth", &[]);
        g.set(3);
        g.dec();
        assert_eq!(g.get(), 2);
    }

    #[test]
    fn label_order_does_not_split_metrics() {
        let r = Registry::new();
        let a = r.counter("m", &[("a", "1"), ("b", "2")]);
        let b = r.counter("m", &[("b", "2"), ("a", "1")]);
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2, "both orders intern to one metric");
        assert_eq!(r.snapshot().counters["m{a=\"1\",b=\"2\"}"], 2);
    }

    #[test]
    fn histogram_buckets_are_exact_at_power_of_two_edges() {
        let r = Registry::new();
        let h = r.histogram("lat_us", &[]);
        // 2^i is the *lower* edge of bucket i; 2^i - 1 the upper edge of
        // bucket i-1
        for i in [0usize, 1, 5, 20, 40, 63] {
            h.record(1u64 << i);
        }
        h.record((1u64 << 5) - 1); // top of bucket 4
        h.record(0); // zero lands in bucket 0
        let s = h.snapshot();
        let mut expect = vec![0u64; HIST_BUCKETS];
        for v in [
            1u64 << 0,
            1 << 1,
            1 << 5,
            1 << 20,
            1 << 40,
            1 << 63,
            (1 << 5) - 1,
            0,
        ] {
            expect[super::bucket_of(v)] += 1;
        }
        assert_eq!(s.buckets, expect);
        assert_eq!(s.count, 8);
        assert_eq!(s.min, Some(0));
        assert_eq!(s.max, Some(1u64 << 63));
    }

    #[test]
    fn bucket_of_maps_edges_correctly() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of((1 << 10) - 1), 9);
        assert_eq!(bucket_of(1 << 10), 10);
        assert_eq!(bucket_of(u64::MAX), 63);
        assert_eq!(bucket_upper(0), 1);
        assert_eq!(bucket_upper(9), (1 << 10) - 1);
        assert_eq!(bucket_upper(63), u64::MAX);
    }

    #[test]
    fn quantiles_are_exact_at_extremes_and_conservative_inside() {
        let r = Registry::new();
        let h = r.histogram("q", &[]);
        for v in [10u64, 20, 30, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.quantile(0.0), Some(10), "q=0 is the exact min");
        assert_eq!(s.quantile(1.0), Some(1000), "q=1 is the exact max");
        // rank ceil(0.5*4)=2 → the sample 20, bucket [16,32) upper bound 31
        assert_eq!(s.quantile(0.5), Some(31));
        // p99 → rank 4 → the 1000 sample, bucket [512,1024) upper 1023,
        // clamped to the exact max
        assert_eq!(s.quantile(0.99), Some(1000));
        assert!(r.histogram("empty", &[]).snapshot().quantile(0.5).is_none());
    }

    #[test]
    fn merge_equals_single_registry() {
        let global = Registry::new();
        let a = Registry::new();
        let b = Registry::new();
        a.counter("c", &[]).add(3);
        b.counter("c", &[]).add(4);
        b.counter("only_b", &[]).inc();
        a.gauge("g", &[]).set(2);
        b.gauge("g", &[]).set(5);
        a.histogram("h", &[]).record(100);
        b.histogram("h", &[]).record(7);
        global.merge_from(&a);
        global.merge_from(&b);
        let s = global.snapshot();
        assert_eq!(s.counters["c"], 7);
        assert_eq!(s.counters["only_b"], 1);
        assert_eq!(s.gauges["g"], 7);
        assert_eq!(s.histograms["h"].count, 2);
        assert_eq!(s.histograms["h"].min, Some(7));
        assert_eq!(s.histograms["h"].max, Some(100));
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let r = Registry::new();
        r.counter("c", &[("k", "v")]).add(9);
        r.gauge("g", &[]).set(-3);
        r.histogram("h", &[]).record(42);
        let snap = r.snapshot();
        let json = snap.to_json();
        let back: RegistrySnapshot = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, snap);
    }

    #[test]
    fn prometheus_text_renders_cumulative_buckets() {
        let r = Registry::new();
        r.counter("flows_total", &[("facility", "alcf")]).add(2);
        let h = r.histogram("lat", &[("stage", "recon")]);
        h.record(3);
        h.record(300);
        let text = r.snapshot().prometheus_text();
        assert!(text.contains("flows_total{facility=\"alcf\"} 2"));
        assert!(text.contains("# TYPE lat histogram"));
        assert!(text.contains("lat_bucket{stage=\"recon\",le=\"3\"} 1"));
        assert!(text.contains("lat_bucket{stage=\"recon\",le=\"+Inf\"} 2"));
        assert!(text.contains("lat_count{stage=\"recon\"} 2"));
    }

    #[test]
    fn concurrent_increments_do_not_lose_counts() {
        let r = std::sync::Arc::new(Registry::new());
        let c = r.counter("hot", &[]);
        let h = r.histogram("hist", &[]);
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let (c, h) = (c.clone(), h.clone());
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        c.inc();
                        h.record(i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 40_000);
        assert_eq!(h.count(), 40_000);
    }
}
