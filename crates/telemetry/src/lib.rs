//! The unified telemetry spine: a lock-light metrics registry, flow-scoped
//! trace spans on the simulation clock, and Table-2-style latency reports.
//!
//! The paper's operational story leans on observability — Prefect flow
//! logs "update in real-time", flow statistics are pulled from the API,
//! and Globus bandwidth is "monitored with Grafana". This crate is the
//! shared layer those islands plug into:
//!
//! * [`Registry`] — atomic counters, gauges, and fixed-bucket log-scale
//!   histograms. Handles are resolved (interned) once at registration;
//!   every subsequent increment is a single atomic op, cheap enough for
//!   the sharded-orchestrator and reconstruction hot paths. Shard-local
//!   registries merge into a fleet-wide view with [`Registry::merge_from`].
//! * [`TraceStore`] / [`ScanTrace`] — per-scan spans covering the seven
//!   lifecycle stages (ingest, transfer, queue-wait, recon, back-transfer,
//!   multiscale, catalog) with parent/child links across redirects. Span
//!   events are plain serializable records so the orchestrator can journal
//!   them next to its own state and replay them after a crash.
//! * [`TelemetryReport`] — the Table-2-style per-stage latency
//!   distribution (min/p50/p90/max per stage, per facility) extracted
//!   from any set of completed traces.
//!
//! Determinism rule: telemetry never reads the wall clock. Every
//! timestamp is a [`als_simcore::SimInstant`] supplied by the caller, so
//! the same campaign replays to byte-identical traces and reports —
//! including across a coordinator crash and journal recovery.

pub mod registry;
pub mod report;
pub mod trace;

pub use registry::{
    Counter, Gauge, Histogram, HistogramSnapshot, Registry, RegistrySnapshot, HIST_BUCKETS,
};
pub use report::{ReportRow, StageStats, TelemetryReport};
pub use trace::{Note, ScanTrace, Span, SpanId, SpanOutcome, Stage, TraceEvent, TraceStore};
