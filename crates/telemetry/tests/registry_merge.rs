//! Property test for the registry's shard-merge semantics: a fleet of
//! shard-local registries folded into one must be indistinguishable from
//! a single global registry that saw every operation directly. This is
//! the invariant that lets each orchestrator shard (and each pipeline
//! thread) record into its own registry lock-free and still produce one
//! coherent fleet snapshot.

use als_telemetry::Registry;
use proptest::prelude::*;

const FACILITIES: [&str; 3] = ["nersc", "alcf", "olcf"];

proptest! {
    #[test]
    fn merged_shard_registries_equal_a_single_global_registry(
        ops in prop::collection::vec((0u8..3, 0usize..3, 0u64..100_000), 0..200),
        shards in 1usize..5,
    ) {
        let global = Registry::new();
        let locals: Vec<Registry> = (0..shards).map(|_| Registry::new()).collect();
        for (i, &(kind, fac_sel, v)) in ops.iter().enumerate() {
            let local = &locals[i % shards];
            let labels = [("facility", FACILITIES[fac_sel])];
            match kind {
                0 => {
                    local.counter("scans_total", &labels).add(v);
                    global.counter("scans_total", &labels).add(v);
                }
                1 => {
                    // deltas only: a fleet gauge is the sum of the
                    // shard-local occupancies, so merge sums them
                    let delta = v as i64 - 50_000;
                    local.gauge("queue_depth", &labels).add(delta);
                    global.gauge("queue_depth", &labels).add(delta);
                }
                _ => {
                    local.histogram("latency_us", &labels).record(v);
                    global.histogram("latency_us", &labels).record(v);
                }
            }
        }
        let merged = Registry::new();
        for local in &locals {
            merged.merge_from(local);
        }
        prop_assert_eq!(merged.snapshot(), global.snapshot());
    }
}
