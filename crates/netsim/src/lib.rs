//! # als-netsim
//!
//! Deterministic network substrate for the multi-facility simulation: the
//! ESnet paths between the ALS beamline, NERSC, and ALCF.
//!
//! The model is intentionally simple and analyzable: named [`Link`]s with a
//! capacity and propagation latency, multi-hop [`Route`]s, and a
//! [`NetworkSim`] that advances concurrent flows under **equal-share**
//! bandwidth allocation (each link divides its capacity evenly among the
//! flows crossing it; a flow gets the minimum share along its route). That
//! is enough to reproduce what the paper's experiments depend on: transfer
//! time ∝ size, contention between concurrent scans, and the 10 Gbps
//! beamline NIC acting as the bottleneck ahead of the 100 Gbps WAN.

pub mod topology;

pub use topology::{esnet_topology, esnet_topology_with_nics, SiteId, Topology};

use als_simcore::{ByteSize, DataRate, SimDuration, SimInstant};
use std::collections::BTreeMap;

/// A unidirectional link with fixed capacity and propagation latency.
#[derive(Debug, Clone)]
pub struct Link {
    pub name: String,
    pub capacity: DataRate,
    pub latency: SimDuration,
}

/// Index of a link within a [`NetworkSim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub usize);

/// A path through the network: an ordered list of links.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    pub links: Vec<LinkId>,
}

impl Route {
    pub fn new(links: Vec<LinkId>) -> Self {
        Route { links }
    }
}

/// Handle to an in-flight transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub u64);

#[derive(Debug, Clone)]
struct Flow {
    route: Route,
    remaining: f64,
    last_update: SimInstant,
    /// Propagation latency still to pay before bytes start moving.
    latency_left: SimDuration,
    total: ByteSize,
    started: SimInstant,
}

/// Deterministic flow-level network simulation.
///
/// Usage pattern from a DES driver:
/// 1. [`NetworkSim::start_flow`] when a transfer begins;
/// 2. [`NetworkSim::next_completion`] to learn which flow finishes next and
///    when — schedule that as a DES event;
/// 3. on that event, call [`NetworkSim::complete`] (which re-balances the
///    remaining flows and may change subsequent completion times).
#[derive(Debug, Default)]
pub struct NetworkSim {
    links: Vec<Link>,
    /// Per-link capacity multiplier in [0, 1] (fault injection: a value
    /// below 1 models an ESnet brownout on that link).
    factors: Vec<f64>,
    flows: BTreeMap<FlowId, Flow>,
    next_id: u64,
}

impl NetworkSim {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a link, returning its id.
    pub fn add_link(&mut self, name: &str, capacity: DataRate, latency: SimDuration) -> LinkId {
        self.links.push(Link {
            name: name.to_string(),
            capacity,
            latency,
        });
        self.factors.push(1.0);
        LinkId(self.links.len() - 1)
    }

    /// Fault injection: scale a link's capacity by `factor` from `now` on.
    /// In-flight traffic is settled at the old rate first, so the change
    /// is exact in time. A factor of 0 stalls flows on the link
    /// indefinitely (they resume when capacity is restored).
    pub fn set_capacity_factor(&mut self, id: LinkId, factor: f64, now: SimInstant) {
        assert!(id.0 < self.links.len(), "unknown link {id:?}");
        self.settle(now);
        self.factors[id.0] = factor.clamp(0.0, 1.0);
    }

    /// Current capacity multiplier on a link.
    pub fn capacity_factor(&self, id: LinkId) -> f64 {
        self.factors[id.0]
    }

    /// Number of registered links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.0]
    }

    /// Total propagation latency along a route.
    pub fn route_latency(&self, route: &Route) -> SimDuration {
        route
            .links
            .iter()
            .fold(SimDuration::ZERO, |acc, &l| acc + self.links[l.0].latency)
    }

    /// Number of active flows.
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// Begin a transfer of `size` along `route` at simulated time `now`.
    ///
    /// # Panics
    /// Panics if the route is empty or references unknown links.
    pub fn start_flow(&mut self, route: Route, size: ByteSize, now: SimInstant) -> FlowId {
        assert!(!route.links.is_empty(), "route must have at least one link");
        for l in &route.links {
            assert!(l.0 < self.links.len(), "unknown link {l:?}");
        }
        self.settle(now);
        let id = FlowId(self.next_id);
        self.next_id += 1;
        let latency = self.route_latency(&route);
        self.flows.insert(
            id,
            Flow {
                route,
                remaining: size.as_bytes() as f64,
                last_update: now,
                latency_left: latency,
                total: size,
                started: now,
            },
        );
        id
    }

    /// Equal-share rate currently allocated to `flow`.
    pub fn flow_rate(&self, id: FlowId) -> Option<DataRate> {
        let flow = self.flows.get(&id)?;
        Some(self.rate_of(&flow.route))
    }

    fn rate_of(&self, route: &Route) -> DataRate {
        // count flows per link
        let mut rate = f64::INFINITY;
        for &l in &route.links {
            let users = self
                .flows
                .values()
                .filter(|f| f.route.links.contains(&l))
                .count()
                .max(1);
            let share =
                self.links[l.0].capacity.as_bytes_per_sec() * self.factors[l.0] / users as f64;
            rate = rate.min(share);
        }
        if rate.is_finite() {
            DataRate::from_bytes_per_sec(rate)
        } else {
            DataRate::ZERO
        }
    }

    /// Advance every flow's byte counter to `now` under the current
    /// allocation. Must be called (internally) before any membership
    /// change.
    fn settle(&mut self, now: SimInstant) {
        let rates: Vec<(FlowId, f64)> = self
            .flows
            .iter()
            .map(|(&id, f)| (id, self.rate_of(&f.route).as_bytes_per_sec()))
            .collect();
        for (id, rate) in rates {
            let f = self.flows.get_mut(&id).expect("flow exists");
            let mut dt = now.duration_since(f.last_update);
            f.last_update = now;
            if !f.latency_left.is_zero() {
                let pay = f.latency_left.min(dt);
                f.latency_left -= pay;
                dt -= pay;
            }
            f.remaining = (f.remaining - rate * dt.as_secs_f64()).max(0.0);
        }
    }

    /// The flow that will finish first under the current allocation, and
    /// its completion time. `now` must be ≥ every flow's `last_update`.
    pub fn next_completion(&mut self, now: SimInstant) -> Option<(FlowId, SimInstant)> {
        self.settle(now);
        let mut best: Option<(FlowId, SimInstant)> = None;
        for (&id, f) in &self.flows {
            let rate = self.rate_of(&f.route).as_bytes_per_sec();
            let t = if f.remaining <= 0.0 {
                now + f.latency_left
            } else if rate <= 0.0 {
                continue; // stalled flow never completes
            } else {
                now + f.latency_left + SimDuration::from_secs_f64(f.remaining / rate)
            };
            if best.is_none_or(|(_, bt)| t < bt) {
                best = Some((id, t));
            }
        }
        best
    }

    /// Mark `id` complete at time `now`, removing it and returning its
    /// total duration. Returns `None` for an unknown flow.
    pub fn complete(&mut self, id: FlowId, now: SimInstant) -> Option<SimDuration> {
        self.settle(now);
        let f = self.flows.remove(&id)?;
        Some(now.duration_since(f.started))
    }

    /// Abort a flow (e.g. transfer cancelled), returning the bytes that
    /// had been moved.
    pub fn abort(&mut self, id: FlowId, now: SimInstant) -> Option<ByteSize> {
        self.settle(now);
        let f = self.flows.remove(&id)?;
        Some(
            f.total
                .saturating_sub(ByteSize::from_bytes(f.remaining as u64)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gbps(g: f64) -> DataRate {
        DataRate::from_gbit_per_sec(g)
    }

    fn sim_one_link() -> (NetworkSim, LinkId) {
        let mut net = NetworkSim::new();
        let l = net.add_link("nic", gbps(10.0), SimDuration::from_millis(1));
        (net, l)
    }

    #[test]
    fn single_flow_completion_time_matches_formula() {
        let (mut net, l) = sim_one_link();
        let t0 = SimInstant::ZERO;
        let id = net.start_flow(Route::new(vec![l]), ByteSize::from_gib(20), t0);
        let (fid, t) = net.next_completion(t0).unwrap();
        assert_eq!(fid, id);
        // 20 GiB / 1.25 GB/s = 17.18 s + 1 ms latency
        assert!(
            (t.as_secs_f64() - 17.181).abs() < 0.01,
            "{}",
            t.as_secs_f64()
        );
    }

    #[test]
    fn two_flows_share_the_link_fairly() {
        let (mut net, l) = sim_one_link();
        let t0 = SimInstant::ZERO;
        let a = net.start_flow(Route::new(vec![l]), ByteSize::from_gib(10), t0);
        let _b = net.start_flow(Route::new(vec![l]), ByteSize::from_gib(10), t0);
        let ra = net.flow_rate(a).unwrap();
        assert!((ra.as_gbit_per_sec() - 5.0).abs() < 1e-9);
        // both finish around 2x the solo time
        let (_, t) = net.next_completion(t0).unwrap();
        assert!(
            (t.as_secs_f64() - 17.18).abs() < 0.05,
            "{}",
            t.as_secs_f64()
        );
    }

    #[test]
    fn completion_rebalances_remaining_flows() {
        let (mut net, l) = sim_one_link();
        let t0 = SimInstant::ZERO;
        let a = net.start_flow(Route::new(vec![l]), ByteSize::from_gib(1), t0);
        let b = net.start_flow(Route::new(vec![l]), ByteSize::from_gib(10), t0);
        let (first, t1) = net.next_completion(t0).unwrap();
        assert_eq!(first, a, "small flow finishes first");
        net.complete(a, t1);
        // b now gets the full 10 Gbps
        let rb = net.flow_rate(b).unwrap();
        assert!((rb.as_gbit_per_sec() - 10.0).abs() < 1e-9);
        let (fb, t2) = net.next_completion(t1).unwrap();
        assert_eq!(fb, b);
        // total bytes conserved: 11 GiB at varying rates
        // phase 1: 2 GiB moved total (1 each) in ~1.718s; phase 2: 9 GiB at full rate
        let expected = 1.0 * (1 << 30) as f64 / 0.625e9 + 9.0 * (1 << 30) as f64 / 1.25e9;
        assert!(
            (t2.as_secs_f64() - expected).abs() < 0.05,
            "{} vs {expected}",
            t2.as_secs_f64()
        );
    }

    #[test]
    fn bottleneck_is_the_slowest_link_share() {
        let mut net = NetworkSim::new();
        let nic = net.add_link("nic-10g", gbps(10.0), SimDuration::from_micros(100));
        let wan = net.add_link("esnet-100g", gbps(100.0), SimDuration::from_millis(12));
        let t0 = SimInstant::ZERO;
        let f = net.start_flow(Route::new(vec![nic, wan]), ByteSize::from_gib(20), t0);
        let r = net.flow_rate(f).unwrap();
        assert!(
            (r.as_gbit_per_sec() - 10.0).abs() < 1e-9,
            "NIC should cap the flow"
        );
        // latency accumulates across hops
        let lat = net.route_latency(&Route::new(vec![nic, wan]));
        assert_eq!(lat, SimDuration::from_micros(12_100));
    }

    #[test]
    fn cross_traffic_on_shared_hop_only() {
        let mut net = NetworkSim::new();
        let a_nic = net.add_link("a", gbps(10.0), SimDuration::ZERO);
        let b_nic = net.add_link("b", gbps(10.0), SimDuration::ZERO);
        let wan = net.add_link("wan", gbps(12.0), SimDuration::ZERO);
        let t0 = SimInstant::ZERO;
        let fa = net.start_flow(Route::new(vec![a_nic, wan]), ByteSize::from_gib(1), t0);
        let fb = net.start_flow(Route::new(vec![b_nic, wan]), ByteSize::from_gib(1), t0);
        // each can push 10 via its NIC but the shared WAN gives 6 each
        assert!((net.flow_rate(fa).unwrap().as_gbit_per_sec() - 6.0).abs() < 1e-9);
        assert!((net.flow_rate(fb).unwrap().as_gbit_per_sec() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn abort_reports_partial_progress() {
        let (mut net, l) = sim_one_link();
        let t0 = SimInstant::ZERO;
        let f = net.start_flow(Route::new(vec![l]), ByteSize::from_gib(10), t0);
        let mid = t0 + SimDuration::from_secs(4);
        let moved = net.abort(f, mid).unwrap();
        // ~4s at 1.25 GB/s ≈ 4.65 GiB (minus 1ms latency)
        let gib = moved.as_gib_f64();
        assert!((4.5..4.8).contains(&gib), "moved {gib} GiB");
        assert_eq!(net.active_flows(), 0);
    }

    #[test]
    fn brownout_halves_the_rate_and_restoring_recovers_it() {
        let (mut net, l) = sim_one_link();
        let t0 = SimInstant::ZERO;
        let f = net.start_flow(Route::new(vec![l]), ByteSize::from_gib(10), t0);
        assert!((net.flow_rate(f).unwrap().as_gbit_per_sec() - 10.0).abs() < 1e-9);
        let t1 = t0 + SimDuration::from_secs(2);
        net.set_capacity_factor(l, 0.5, t1);
        assert!((net.flow_rate(f).unwrap().as_gbit_per_sec() - 5.0).abs() < 1e-9);
        // settle at the degraded rate, then restore
        let t2 = t1 + SimDuration::from_secs(2);
        net.set_capacity_factor(l, 1.0, t2);
        assert!((net.flow_rate(f).unwrap().as_gbit_per_sec() - 10.0).abs() < 1e-9);
        // bytes conserved across the rate changes:
        // 2 s @ 1.25 GB/s + 2 s @ 0.625 GB/s moved, remainder at full rate
        let moved = 2.0 * 1.25e9 + 2.0 * 0.625e9;
        let left = 10.0 * (1u64 << 30) as f64 - moved;
        let expected = t2.as_secs_f64() + left / 1.25e9;
        let (fid, t) = net.next_completion(t2).unwrap();
        assert_eq!(fid, f);
        assert!(
            (t.as_secs_f64() - expected).abs() < 0.05,
            "{} vs {expected}",
            t.as_secs_f64()
        );
    }

    #[test]
    fn zero_factor_stalls_flows_until_restored() {
        let (mut net, l) = sim_one_link();
        let t0 = SimInstant::ZERO;
        let f = net.start_flow(Route::new(vec![l]), ByteSize::from_gib(1), t0);
        net.set_capacity_factor(l, 0.0, t0);
        assert!(
            net.next_completion(t0).is_none(),
            "stalled flow never completes"
        );
        let t1 = t0 + SimDuration::from_secs(100);
        net.set_capacity_factor(l, 1.0, t1);
        let (fid, _) = net.next_completion(t1).unwrap();
        assert_eq!(fid, f);
    }

    #[test]
    fn empty_network_has_no_completions() {
        let mut net = NetworkSim::new();
        assert!(net.next_completion(SimInstant::ZERO).is_none());
    }

    #[test]
    #[should_panic(expected = "route must have")]
    fn empty_route_panics() {
        let mut net = NetworkSim::new();
        net.start_flow(Route::new(vec![]), ByteSize::from_mib(1), SimInstant::ZERO);
    }

    #[test]
    fn staggered_start_conserves_bytes() {
        let (mut net, l) = sim_one_link();
        let t0 = SimInstant::ZERO;
        let a = net.start_flow(Route::new(vec![l]), ByteSize::from_gib(5), t0);
        let t1 = t0 + SimDuration::from_secs(2);
        let b = net.start_flow(Route::new(vec![l]), ByteSize::from_gib(5), t1);
        // drain both and check the final completion time against hand calc:
        // phase1 (0-2s): a alone at 1.25 GB/s -> 2.5e9 bytes moved
        // then both share 0.625 GB/s until a finishes, etc.
        let mut now = t1;
        let mut done = Vec::new();
        while let Some((id, t)) = net.next_completion(now) {
            net.complete(id, t);
            done.push((id, t));
            now = t;
        }
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].0, a);
        assert_eq!(done[1].0, b);
        let total_bytes = 10.0 * (1u64 << 30) as f64;
        // full utilization from 0 to b's completion minus latency slack
        let expected_end = total_bytes / 1.25e9 + 0.001 + 0.001;
        assert!(
            (done[1].1.as_secs_f64() - expected_end).abs() < 0.1,
            "{} vs {expected_end}",
            done[1].1.as_secs_f64()
        );
    }
}
