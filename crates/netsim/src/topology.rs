//! The concrete ALS ↔ NERSC ↔ ALCF topology from the paper.
//!
//! Numbers are taken from the paper where stated (the beamline VM's
//! 10 Gbps NIC) and from public facility specifications elsewhere (ESnet
//! backbone ≥100 Gbps; LBL↔NERSC is on-site; LBL↔ANL is a cross-country
//! WAN hop of tens of ms).

use crate::{LinkId, NetworkSim, Route};
use als_simcore::{DataRate, SimDuration};
use serde::{Deserialize, Serialize};

/// Sites in the multi-facility deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SiteId {
    /// The beamline acquisition + data server at the ALS.
    Als,
    /// NERSC (Perlmutter + Community Filesystem), also at LBNL.
    Nersc,
    /// ALCF (Polaris + Eagle), at Argonne.
    Alcf,
    /// OLCF (Frontier + Orion), at Oak Ridge.
    Olcf,
}

impl SiteId {
    pub fn name(&self) -> &'static str {
        match self {
            SiteId::Als => "ALS",
            SiteId::Nersc => "NERSC",
            SiteId::Alcf => "ALCF",
            SiteId::Olcf => "OLCF",
        }
    }
}

/// A built network plus site-pair routing table.
#[derive(Debug)]
pub struct Topology {
    pub net: NetworkSim,
    beamline_nic: LinkId,
    als_to_nersc: LinkId,
    als_to_esnet: LinkId,
    esnet_backbone: LinkId,
    esnet_to_alcf: LinkId,
    esnet_to_olcf: LinkId,
    nersc_to_esnet: LinkId,
}

impl Topology {
    /// Route between two sites; `None` for a site to itself.
    pub fn route(&self, from: SiteId, to: SiteId) -> Option<Route> {
        use SiteId::*;
        let links = match (from, to) {
            (Als, Nersc) | (Nersc, Als) => vec![self.beamline_nic, self.als_to_nersc],
            (Als, Alcf) | (Alcf, Als) => vec![
                self.beamline_nic,
                self.als_to_esnet,
                self.esnet_backbone,
                self.esnet_to_alcf,
            ],
            (Als, Olcf) | (Olcf, Als) => vec![
                self.beamline_nic,
                self.als_to_esnet,
                self.esnet_backbone,
                self.esnet_to_olcf,
            ],
            (Nersc, Alcf) | (Alcf, Nersc) => {
                vec![self.nersc_to_esnet, self.esnet_backbone, self.esnet_to_alcf]
            }
            (Nersc, Olcf) | (Olcf, Nersc) => {
                vec![self.nersc_to_esnet, self.esnet_backbone, self.esnet_to_olcf]
            }
            (Alcf, Olcf) | (Olcf, Alcf) => {
                vec![self.esnet_to_alcf, self.esnet_backbone, self.esnet_to_olcf]
            }
            _ => return None,
        };
        Some(Route::new(links))
    }

    /// The ESnet WAN segments of the topology (everything except the
    /// beamline NIC), in a stable order. Fault injection degrades these
    /// to model a backbone brownout without touching the LAN.
    pub fn wan_link_ids(&self) -> Vec<LinkId> {
        vec![
            self.als_to_nersc,
            self.als_to_esnet,
            self.esnet_backbone,
            self.esnet_to_alcf,
            self.esnet_to_olcf,
            self.nersc_to_esnet,
        ]
    }
}

/// Build the production topology (one beamline server).
pub fn esnet_topology() -> Topology {
    esnet_topology_with_nics(1)
}

/// Build the topology with `n_beamlines` beamline servers. Each endstation
/// brings its own 10 Gbps NIC (the §6 rollout model), approximated as one
/// aggregated egress link of `n × 10` Gbps.
pub fn esnet_topology_with_nics(n_beamlines: usize) -> Topology {
    assert!(n_beamlines >= 1);
    let mut net = NetworkSim::new();
    // the paper: 10 Gbps full-duplex VMXNET3 NIC on the beamline VM
    let beamline_nic = net.add_link(
        "als-beamline-nic-10g",
        DataRate::from_gbit_per_sec(10.0 * n_beamlines as f64),
        SimDuration::from_micros(200),
    );
    // LBL campus to NERSC: same site, high capacity, sub-ms
    let als_to_nersc = net.add_link(
        "lbl-nersc-100g",
        DataRate::from_gbit_per_sec(100.0),
        SimDuration::from_micros(500),
    );
    // LBL border to ESnet
    let als_to_esnet = net.add_link(
        "lbl-esnet-100g",
        DataRate::from_gbit_per_sec(100.0),
        SimDuration::from_millis(1),
    );
    // ESnet cross-country backbone (Berkeley <-> Chicago ~ 50 ms RTT,
    // so ~25 ms one-way propagation)
    let esnet_backbone = net.add_link(
        "esnet-backbone-400g",
        DataRate::from_gbit_per_sec(400.0),
        SimDuration::from_millis(25),
    );
    let esnet_to_alcf = net.add_link(
        "esnet-alcf-100g",
        DataRate::from_gbit_per_sec(100.0),
        SimDuration::from_millis(1),
    );
    // OLCF hangs off the backbone via its own access link (Chicago <->
    // Oak Ridge adds a few ms on top of the backbone hop)
    let esnet_to_olcf = net.add_link(
        "esnet-olcf-100g",
        DataRate::from_gbit_per_sec(100.0),
        SimDuration::from_millis(4),
    );
    let nersc_to_esnet = net.add_link(
        "nersc-esnet-100g",
        DataRate::from_gbit_per_sec(100.0),
        SimDuration::from_millis(1),
    );
    Topology {
        net,
        beamline_nic,
        als_to_nersc,
        als_to_esnet,
        esnet_backbone,
        esnet_to_alcf,
        esnet_to_olcf,
        nersc_to_esnet,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use als_simcore::{ByteSize, SimInstant};

    #[test]
    fn all_site_pairs_have_routes() {
        let topo = esnet_topology();
        for from in [SiteId::Als, SiteId::Nersc, SiteId::Alcf, SiteId::Olcf] {
            for to in [SiteId::Als, SiteId::Nersc, SiteId::Alcf, SiteId::Olcf] {
                let r = topo.route(from, to);
                if from == to {
                    assert!(r.is_none());
                } else {
                    assert!(!r.unwrap().links.is_empty());
                }
            }
        }
    }

    #[test]
    fn beamline_nic_caps_als_egress() {
        let mut topo = esnet_topology();
        let route = topo.route(SiteId::Als, SiteId::Alcf).unwrap();
        let f = topo
            .net
            .start_flow(route, ByteSize::from_gib(25), SimInstant::ZERO);
        let rate = topo.net.flow_rate(f).unwrap();
        assert!((rate.as_gbit_per_sec() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn cross_country_latency_exceeds_local() {
        let topo = esnet_topology();
        let to_nersc = topo
            .net
            .route_latency(&topo.route(SiteId::Als, SiteId::Nersc).unwrap());
        let to_alcf = topo
            .net
            .route_latency(&topo.route(SiteId::Als, SiteId::Alcf).unwrap());
        assert!(to_alcf.as_secs_f64() > 10.0 * to_nersc.as_secs_f64());
        // OLCF sits further down the backbone than ALCF
        let to_olcf = topo
            .net
            .route_latency(&topo.route(SiteId::Als, SiteId::Olcf).unwrap());
        assert!(to_olcf.as_secs_f64() > to_alcf.as_secs_f64());
    }

    #[test]
    fn a_30gb_scan_transfers_in_tens_of_seconds() {
        // sanity anchor for Table 2: moving one full scan to NERSC at
        // 10 Gbps takes ~26 s; the paper's new_file_832 median of 56 s is
        // transfer + staging + metadata
        let mut topo = esnet_topology();
        let route = topo.route(SiteId::Als, SiteId::Nersc).unwrap();
        let f = topo
            .net
            .start_flow(route, ByteSize::from_gib(30), SimInstant::ZERO);
        let (fid, t) = topo.net.next_completion(SimInstant::ZERO).unwrap();
        assert_eq!(fid, f);
        let secs = t.as_secs_f64();
        assert!((20.0..40.0).contains(&secs), "{secs}");
    }
}
