//! Facility-substrate benchmarks: network flow simulation, transfer
//! service, batch scheduler, and flow-engine bookkeeping — per-event
//! costs that bound how large a campaign the DES can replay.

use als_globus::transfer::{TransferOptions, TransferService};
use als_hpc::scheduler::{JobRequest, Qos, Scheduler};
use als_netsim::{esnet_topology, NetworkSim, Route, SiteId};
use als_orchestrator::engine::{FlowEngine, FlowState};
use als_simcore::{ByteSize, DataRate, SimDuration, SimInstant};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_netsim(c: &mut Criterion) {
    let mut group = c.benchmark_group("netsim_flows");
    for &n_flows in &[4usize, 16, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(n_flows), &n_flows, |b, &n| {
            b.iter(|| {
                let mut net = NetworkSim::new();
                let l = net.add_link("l", DataRate::from_gbit_per_sec(100.0), SimDuration::ZERO);
                let t0 = SimInstant::ZERO;
                for _ in 0..n {
                    net.start_flow(Route::new(vec![l]), ByteSize::from_gib(5), t0);
                }
                let mut now = t0;
                while let Some((id, t)) = net.next_completion(now) {
                    net.complete(id, t);
                    now = t;
                }
                black_box(now)
            })
        });
    }
    group.finish();
}

fn bench_transfer_service(c: &mut Criterion) {
    c.bench_function("transfer_service_100_tasks", |b| {
        b.iter(|| {
            let mut svc = TransferService::new(esnet_topology(), 4);
            let als = svc.register_endpoint(SiteId::Als);
            let nersc = svc.register_endpoint(SiteId::Nersc);
            let t0 = SimInstant::ZERO;
            for _ in 0..100 {
                svc.submit(
                    als,
                    nersc,
                    ByteSize::from_gib(10),
                    TransferOptions::default(),
                    t0,
                );
            }
            let mut now = t0;
            while let Some(t) = svc.next_event_time(now) {
                let next = t.max(now);
                if svc.advance_to(next).is_empty() && next == now {
                    break;
                }
                now = next;
            }
            black_box(now)
        })
    });
}

fn bench_scheduler(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler");
    for &n_jobs in &[100usize, 1000] {
        group.bench_with_input(BenchmarkId::from_parameter(n_jobs), &n_jobs, |b, &n| {
            b.iter(|| {
                let mut s = Scheduler::new(16);
                let mut now = SimInstant::ZERO;
                for i in 0..n {
                    s.submit(
                        JobRequest {
                            name: String::new(),
                            qos: if i % 4 == 0 {
                                Qos::Realtime
                            } else {
                                Qos::Regular
                            },
                            nodes: 1 + i % 3,
                            runtime: SimDuration::from_secs(60 + (i as u64 * 13) % 600),
                            walltime_limit: SimDuration::from_hours(2),
                        },
                        now,
                    );
                    now += SimDuration::from_secs(5);
                    s.advance_to(now);
                }
                while let Some(t) = s.next_event_time() {
                    s.advance_to(t);
                }
                black_box(s.utilization(now))
            })
        });
    }
    group.finish();
}

fn bench_flow_engine(c: &mut Criterion) {
    c.bench_function("flow_engine_record_and_query_1000", |b| {
        b.iter(|| {
            let mut e = FlowEngine::new();
            let mut now = SimInstant::ZERO;
            for _ in 0..1000 {
                let id = e.create_run("nersc_recon_flow", now);
                e.start_run(id, now);
                let t = e.start_task(id, "work", None, now);
                now += SimDuration::from_secs(100);
                e.finish_task(
                    id,
                    t,
                    als_orchestrator::engine::TaskState::Completed,
                    now,
                    None,
                );
                e.finish_run(id, FlowState::Completed, now);
            }
            black_box(e.query().table2_summary("nersc_recon_flow", 100))
        })
    });
}

criterion_group!(
    benches,
    bench_netsim,
    bench_transfer_service,
    bench_scheduler,
    bench_flow_engine
);
criterion_main!(benches);
