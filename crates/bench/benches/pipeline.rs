//! End-to-end scan→archive benchmark: the chunked, overlapped pipeline
//! (`als_tomo::pipeline` via `als_flows::realmode::scan_to_archive`)
//! against the retained serial baseline (per-slice gather → unfused prep
//! → per-call SIRT plan → batch archive writes after the fact).
//!
//! Writes `BENCH_pipeline.json` at the workspace root: scan→archive wall
//! time, slices/s, speedup over the serial baseline, per-stage occupancy
//! (load/prep/recon/sink busy plus the sink-busy-while-recon-busy overlap
//! figure), and a thread sweep with over-subscribed rows flagged the same
//! way `BENCH_recon.json` flags them.
//!
//! `--quick` (CI) runs a reduced problem and compares the pipeline wall
//! time against the committed reference in `ci/pipeline_quick_ref.json`,
//! exiting nonzero on a >2x regression.

use als_flows::realmode::{
    file_based_reconstruction_baseline, scan_to_archive, streaming_reconstruction_baseline,
    FileBranchConfig,
};
use als_phantom::{shepp_logan_volume, DetectorConfig, ScanSimulator};
use als_scidata::{tiff, MultiscaleStore, MultiscaleWriter, ScanFile, TiffStackSink};
use als_telemetry::Registry;
use als_tomo::pipeline::{self, PipelineConfig, ReconKind, SliceSink, VolumeSink};
use als_tomo::{FbpConfig, Geometry, Image};
use std::path::Path;
use std::time::Instant;

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".into()
    }
}

/// Simulate a full acquisition and assemble it into a scan file, exactly
/// what the beamline file writer would have put on disk.
fn make_scan(n: usize, nz: usize, n_angles: usize) -> (ScanFile, f64) {
    let vol = shepp_logan_volume(n, nz);
    let geom = Geometry::parallel_180(n_angles, n);
    let det = DetectorConfig::default();
    let mut sim = ScanSimulator::new(&vol, geom.clone(), det, 20_26);
    let frames = sim.all_frames();
    let scan = ScanFile::from_frames(
        "bench_pipeline",
        &frames,
        sim.dark_field(),
        sim.flat_field(),
        &geom.angles,
    )
    .expect("scan assembles");
    (scan, det.mu_scale)
}

/// The "before" measurement: serial per-slice reconstruction, then both
/// archive products written as a batch afterwards — no stage overlap, no
/// shared plan, no fused prep.
fn baseline_scan_to_archive(
    scan: &ScanFile,
    mu_scale: f64,
    cfg: &FileBranchConfig,
    out_dir: &Path,
) -> f64 {
    std::fs::remove_dir_all(out_dir).ok();
    let t = Instant::now();
    let vol = file_based_reconstruction_baseline(scan, mu_scale, cfg);
    let slices: Vec<Image> = (0..vol.nz).map(|z| vol.slice_xy(z)).collect();
    tiff::write_stack(&out_dir.join("tiff"), &slices).expect("baseline tiff stack");
    MultiscaleStore::create(
        &out_dir.join("multiscale"),
        &scan.scan_name(),
        &vol,
        cfg.multiscale_chunk,
        cfg.multiscale_levels,
    )
    .expect("baseline multiscale store");
    t.elapsed().as_secs_f64()
}

struct SweepRow {
    json: String,
    scan_to_archive_s: f64,
    speedup_vs_baseline: f64,
    oversubscribed: bool,
}

fn pipeline_row(
    scan: &ScanFile,
    mu_scale: f64,
    cfg: &FileBranchConfig,
    out_dir: &Path,
    threads: usize,
    cores: usize,
    baseline_s: f64,
) -> SweepRow {
    rayon::set_num_threads(threads);
    std::fs::remove_dir_all(out_dir).ok();
    let t = Instant::now();
    let result = scan_to_archive(scan, mu_scale, cfg, out_dir);
    let wall = t.elapsed().as_secs_f64();
    let report = &result.report;
    let speedup = baseline_s / wall;
    let oversubscribed = threads > cores;
    let efficiency = if oversubscribed {
        f64::NAN // serialized as null
    } else {
        speedup / threads as f64
    };
    println!(
        "pipeline scan->archive {threads} threads: {:.1} ms ({:.1} slices/s), {:.2}x vs serial baseline, overlap ratio {:.2}{}",
        wall * 1e3,
        report.slices_per_sec(),
        speedup,
        report.overlap_ratio(),
        if oversubscribed {
            " [oversubscribed]"
        } else {
            ""
        }
    );
    let json = format!(
        "    {{\"threads\": {threads}, \"oversubscribed\": {oversubscribed}, \"scan_to_archive_ms\": {}, \"slices_per_s\": {}, \"speedup_vs_serial_baseline\": {}, \"scaling_efficiency\": {}, \"plan_build_ms\": {}, \"stage_busy_ms\": {{\"load\": {}, \"prep\": {}, \"recon\": {}, \"sink\": {}}}, \"sink_busy_overlapped_ms\": {}, \"overlap_ratio\": {}}}",
        json_num(wall * 1e3),
        json_num(report.slices_per_sec()),
        json_num(speedup),
        json_num(efficiency),
        json_num(report.plan_build.as_secs_f64() * 1e3),
        json_num(report.load_busy.as_secs_f64() * 1e3),
        json_num(report.prep_busy.as_secs_f64() * 1e3),
        json_num(report.recon_busy.as_secs_f64() * 1e3),
        json_num(report.sink_busy.as_secs_f64() * 1e3),
        json_num(report.sink_busy_overlapped.as_secs_f64() * 1e3),
        json_num(report.overlap_ratio())
    );
    SweepRow {
        json,
        scan_to_archive_s: wall,
        speedup_vs_baseline: speedup,
        oversubscribed,
    }
}

/// FBP-quality archive run, where reconstruction is cheap enough that
/// the archive writes are a visible share of the wall — the entry that
/// makes the I/O/compute overlap measurable rather than epsilon.
fn fbp_archive_entry(quick: bool, work: &Path) -> String {
    let (n, nz, n_angles) = if quick { (128, 8, 90) } else { (256, 16, 180) };
    println!("assembling FBP-archive scan {n}x{n}x{nz}, {n_angles} angles...");
    let (scan, mu) = make_scan(n, nz, n_angles);

    // serial baseline: per-slice FBP with a per-call plan, then batch
    // archive writes after the last slice
    let base_dir = work.join("fbp_baseline");
    std::fs::remove_dir_all(&base_dir).ok();
    let t = Instant::now();
    let vol = streaming_reconstruction_baseline(&scan, mu);
    let slices: Vec<Image> = (0..vol.nz).map(|z| vol.slice_xy(z)).collect();
    tiff::write_stack(&base_dir.join("tiff"), &slices).expect("baseline tiff stack");
    MultiscaleStore::create(
        &base_dir.join("multiscale"),
        &scan.scan_name(),
        &vol,
        [4, 32, 32],
        3,
    )
    .expect("baseline multiscale store");
    let baseline_s = t.elapsed().as_secs_f64();

    // overlapped pipeline with both archive sinks attached
    let pipe_dir = work.join("fbp_pipeline");
    std::fs::remove_dir_all(&pipe_dir).ok();
    let mut vol_sink = VolumeSink::new();
    let mut tiff_sink = TiffStackSink::new(&pipe_dir.join("tiff"));
    let mut mzarr = MultiscaleWriter::new(
        &pipe_dir.join("multiscale"),
        &scan.scan_name(),
        [4, 32, 32],
        3,
    );
    let registry = std::sync::Arc::new(Registry::new());
    let t = Instant::now();
    let report = {
        let mut sinks: [&mut dyn SliceSink; 3] = [&mut vol_sink, &mut tiff_sink, &mut mzarr];
        let cfg = PipelineConfig {
            recon: ReconKind::Fbp(FbpConfig::default()),
            mu_scale: mu,
            registry: Some(registry.clone()),
            ..Default::default()
        };
        pipeline::run(&scan, &mut sinks, &cfg).expect("fbp archive pipeline succeeds")
    };
    let wall = t.elapsed().as_secs_f64();
    let speedup = baseline_s / wall;
    // overlap fraction now comes from the pipeline's registry counters —
    // the same stage-occupancy instrumentation the fleet snapshot exports
    let sink_overlap_frac = {
        let snap = registry.snapshot();
        let busy_us = snap.counters["pipeline_sink_busy_us_total"];
        let overlap_us = snap.counters["pipeline_sink_overlapped_us_total"];
        if busy_us > 0 {
            overlap_us as f64 / busy_us as f64
        } else {
            0.0
        }
    };
    println!(
        "fbp archive {n}x{n}x{nz}: baseline {:.1} ms, pipeline {:.1} ms ({:.2}x), sink busy {:.1} ms of which {:.1} ms under recon ({:.0}%)",
        baseline_s * 1e3,
        wall * 1e3,
        speedup,
        report.sink_busy.as_secs_f64() * 1e3,
        report.sink_busy_overlapped.as_secs_f64() * 1e3,
        sink_overlap_frac * 100.0
    );
    format!(
        "    {{\"n\": {n}, \"nz\": {nz}, \"n_angles\": {n_angles}, \"serial_baseline_ms\": {}, \"scan_to_archive_ms\": {}, \"speedup_vs_serial_baseline\": {}, \"stage_busy_ms\": {{\"load\": {}, \"prep\": {}, \"recon\": {}, \"sink\": {}}}, \"sink_busy_overlapped_ms\": {}, \"sink_overlap_fraction\": {}}}",
        json_num(baseline_s * 1e3),
        json_num(wall * 1e3),
        json_num(speedup),
        json_num(report.load_busy.as_secs_f64() * 1e3),
        json_num(report.prep_busy.as_secs_f64() * 1e3),
        json_num(report.recon_busy.as_secs_f64() * 1e3),
        json_num(report.sink_busy.as_secs_f64() * 1e3),
        json_num(report.sink_busy_overlapped.as_secs_f64() * 1e3),
        json_num(sink_overlap_frac)
    )
}

/// Pull `"quick_scan_to_archive_ms": <num>` out of the committed
/// reference file. Returns `None` when the file is absent (first run on
/// a new machine) — the guard is then skipped with a notice.
fn load_quick_reference(path: &Path) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let v: serde_json::Value = serde_json::from_str(&text).ok()?;
    v.get("quick_scan_to_archive_ms")?.as_f64()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // Full mode runs the paper-recipe branch config (100 SIRT iterations)
    // at 96^3; quick mode shrinks every axis so CI stays seconds-scale.
    let (n, nz, n_angles, iters) = if quick {
        (64, 4, 48, 20)
    } else {
        (96, 8, 96, 100)
    };
    let cfg = FileBranchConfig {
        sirt_iterations: iters,
        ..Default::default()
    };
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);

    println!("assembling simulated scan {n}x{n}x{nz}, {n_angles} angles...");
    let (scan, mu) = make_scan(n, nz, n_angles);
    let work = std::env::temp_dir().join("bench_pipeline_work");

    // serial baseline, inherently single-thread
    rayon::set_num_threads(1);
    let baseline_s = baseline_scan_to_archive(&scan, mu, &cfg, &work.join("baseline"));
    println!(
        "serial baseline scan->archive: {:.1} ms ({:.1} slices/s)",
        baseline_s * 1e3,
        nz as f64 / baseline_s
    );

    let sweep_threads: &[usize] = &[1, 2, 4];
    let rows: Vec<SweepRow> = sweep_threads
        .iter()
        .map(|&t| {
            pipeline_row(
                &scan,
                mu,
                &cfg,
                &work.join("pipeline"),
                t,
                cores,
                baseline_s,
            )
        })
        .collect();
    rayon::set_num_threads(1);
    let fbp_archive = fbp_archive_entry(quick, &work);
    rayon::set_num_threads(0);
    std::fs::remove_dir_all(&work).ok();

    let best = rows
        .iter()
        .filter(|r| !r.oversubscribed)
        .map(|r| r.speedup_vs_baseline)
        .fold(f64::NEG_INFINITY, f64::max);
    let row_json: Vec<&str> = rows.iter().map(|r| r.json.as_str()).collect();
    let json = format!(
        "{{\n  \"bench\": \"pipeline\",\n  \"mode\": \"{}\",\n  \"note\": \"scan->archive: chunked overlapped pipeline (slab transpose -> fused prep -> shared-plan recon -> tiff+multiscale sinks on an I/O thread) vs retained serial baseline (per-slice gather, unfused prep, per-call plan, batch archive writes); sink_busy_overlapped_ms is sink time spent while recon was simultaneously busy; oversubscribed rows (threads > available_cores) carry null scaling_efficiency\",\n  \"scan\": {{\"n\": {n}, \"nz\": {nz}, \"n_angles\": {n_angles}, \"sirt_iterations\": {iters}}},\n  \"available_cores\": {cores},\n  \"serial_baseline_ms\": {},\n  \"best_speedup_vs_serial_baseline\": {},\n  \"thread_sweep\": [\n{}\n  ],\n  \"fbp_archive\": [\n{}\n  ]\n}}\n",
        if quick { "quick" } else { "full" },
        json_num(baseline_s * 1e3),
        json_num(best),
        row_json.join(",\n"),
        fbp_archive
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json");
    std::fs::write(out, &json).expect("write BENCH_pipeline.json");
    println!("wrote {out}");

    if best < 3.0 {
        println!("WARNING: best scan->archive speedup {best:.2}x below the 3x acceptance bar");
    }

    if quick {
        // regression guard against the committed reference timing
        let ref_path = Path::new(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../ci/pipeline_quick_ref.json"
        ));
        let quick_ms = rows[0].scan_to_archive_s * 1e3;
        match load_quick_reference(ref_path) {
            Some(ref_ms) => {
                println!(
                    "quick-mode guard: 1-thread scan->archive {quick_ms:.1} ms vs committed reference {ref_ms:.1} ms"
                );
                if quick_ms > 2.0 * ref_ms {
                    eprintln!(
                        "REGRESSION: quick scan->archive {quick_ms:.1} ms is more than 2x the committed reference {ref_ms:.1} ms"
                    );
                    std::process::exit(1);
                }
            }
            None => println!(
                "quick-mode guard skipped: no committed reference at {}",
                ref_path.display()
            ),
        }
    }
}
