//! T2 / F3 — the full multi-facility campaign that regenerates Table 2.
//!
//! Benches the end-to-end discrete-event replay (all five operational
//! layers, both file-based branches) and prints the resulting table so
//! `cargo bench` leaves the Table 2 reproduction in its log.

use als_flows::campaign::{run_campaign, CampaignConfig};
use als_flows::sim::SimConfig;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_campaign(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign");
    group.sample_size(10);
    for &n_scans in &[20usize, 100] {
        group.bench_with_input(
            BenchmarkId::from_parameter(n_scans),
            &n_scans,
            |b, &n_scans| {
                b.iter(|| {
                    black_box(run_campaign(&CampaignConfig {
                        n_scans,
                        sim: SimConfig::default(),
                    }))
                })
            },
        );
    }
    group.finish();

    // leave the table in the bench log
    let report = run_campaign(&CampaignConfig::default());
    eprintln!("\n{}", report.table2_text());
}

criterion_group!(benches, bench_campaign);
criterion_main!(benches);
