//! Orchestrator journal throughput: sharded group-commit WAL vs the
//! PR 2 unsharded immediate-mode baseline.
//!
//! Each measured configuration drives the same synthetic flow mix
//! through a [`ShardPool`] whose per-shard sinks write-and-fsync a real
//! file, then block for a modeled device-sync latency (200 us, an
//! NVMe-class fsync — the container's filesystem absorbs `sync_data`
//! in single-digit microseconds, which would understate the very cost
//! the WAL discipline is designed around). Device syncs are where both
//! optimisations pay: group commit amortises one fsync over a batch of
//! records, and sharding lets the per-partition fsyncs overlap instead
//! of serialising behind a single journal tail. Every flow still pays
//! the submit barrier (the `ExternalSubmitted` record is flushed
//! durable immediately — that durability point is not negotiable), so
//! the speedup reported here is what the barrier discipline actually
//! leaves on the table.
//!
//! The flow mix also exercises the deadline-aware retry policy: each
//! first attempt fails, and [`RetryPolicy::delay_before_deadline`]
//! decides whether a retry is admissible — flows with a tight deadline
//! fail terminally instead of queueing a retry that could never start
//! in time.
//!
//! Writes `BENCH_orchestrator.json`. `--quick` (CI) runs a reduced
//! flow count and compares sharded flows/s against
//! `ci/orchestrator_quick_ref.json`, failing on a >2x regression.

use std::fs::File;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

use als_orchestrator::{
    shard_of_key, Claim, DurableOrchestrator, ExternalKind, FlowState, RetryPolicy, ShardPool,
    ShardedOrchestrator, TaskState,
};
use als_simcore::{SimDuration, SimInstant};

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

const LEASE: SimDuration = SimDuration::from_secs(600);

/// Modeled WAL-device sync latency charged per journal flush on top of
/// the real write+`sync_data`. A blocked sync occupies no CPU, so
/// syncs on different shards overlap — the same behaviour a real
/// device gives. The pool hands each sink one coalesced byte delta per
/// operation; the number of device syncs that delta represents is the
/// number of journal flushes inside it — every frame individually in
/// immediate mode, one per group of up to `batch` frames otherwise.
const DEVICE_SYNC: std::time::Duration = std::time::Duration::from_micros(200);

struct ConfigResult {
    shards: usize,
    batch: usize,
    flows: usize,
    completed: usize,
    wall_s: f64,
    flows_per_s: f64,
    records_per_s: f64,
    records: u64,
    fsyncs: u64,
    bytes: usize,
}

/// Drive `flows` synthetic flows through a shard pool whose journals
/// persist to real files under `wal_dir`, then recover the fleet from
/// those very files to prove the on-disk bytes are a usable image.
fn run_config(shards: usize, batch: usize, flows: usize, wal_dir: &Path) -> ConfigResult {
    std::fs::remove_dir_all(wal_dir).ok();
    std::fs::create_dir_all(wal_dir).expect("create WAL dir");
    let now = SimInstant::ZERO;
    let fleet: Vec<DurableOrchestrator> = (0..shards)
        .map(|i| DurableOrchestrator::shard("orch-bench", now, i as u64, shards as u64, batch))
        .collect();

    let dir = wal_dir.to_path_buf();
    let wall = Instant::now();
    let pool = ShardPool::spawn_with_sinks(fleet, |i| {
        let mut f = File::create(dir.join(format!("shard{i}.wal"))).expect("create WAL file");
        Box::new(move |bytes: &[u8]| {
            f.write_all(bytes).expect("WAL write");
            f.sync_data().expect("WAL fsync");
            let frames = bytes.iter().filter(|&&b| b == b'\n').count();
            std::thread::sleep(DEVICE_SYNC * frames.div_ceil(batch) as u32);
        })
    });

    let policy = RetryPolicy {
        jitter: 0.25,
        ..RetryPolicy::default()
    };
    for i in 0..flows {
        let key = format!("flow{i:05}/submit@nersc");
        let s = shard_of_key(&key, shards);
        // every fifth flow carries a deadline tighter than the first
        // backoff delay, so its retry is inadmissible and it must fail
        // terminally instead of queueing dead work
        let deadline = now
            + if i % 5 == 0 {
                SimDuration::from_secs(5)
            } else {
                SimDuration::from_secs(3600)
            };
        let handle = i as u64;
        pool.submit(s, move |orch| {
            if orch.claim(&key, now, LEASE) != Claim::Run {
                return;
            }
            let run = orch.create_run("bench_flow", now);
            orch.set_parameter(run, "key", &key);
            orch.start_run(run, now);
            let task = orch.start_task(run, "submit_job", Some(&key), now);
            // submit barrier: flushed durable immediately
            orch.external_submitted(ExternalKind::Job, handle, run, "bench");
            orch.finish_task(run, task, TaskState::Failed, now, Some("transient"));
            match policy.delay_before_deadline(1, handle, now, deadline) {
                Some(delay) => {
                    orch.schedule_retry(run, task, 1, delay);
                    orch.retry_task(run, task, now + delay);
                    orch.external_resolved(ExternalKind::Job, handle);
                    orch.complete(&key);
                    orch.finish_task(run, task, TaskState::Completed, now + delay, None);
                    orch.finish_run(run, FlowState::Completed, now + delay);
                }
                None => {
                    // retry cannot start before the flow deadline
                    orch.external_resolved(ExternalKind::Job, handle);
                    orch.release(&key);
                    orch.finish_run(run, FlowState::Failed, now);
                }
            }
        });
    }
    for s in 0..shards {
        pool.submit(s, |orch| {
            orch.commit();
        });
    }
    let drained = pool.join();
    let wall_s = wall.elapsed().as_secs_f64();

    let records: u64 = drained
        .iter()
        .map(|o| o.journal().durable_record_count())
        .sum();
    let fsyncs: u64 = drained.iter().map(|o| o.journal().write_count()).sum();
    let bytes: usize = drained.iter().map(|o| o.journal().byte_len()).sum();

    // the files the sinks wrote must be a recoverable fleet image
    let images: Vec<Vec<u8>> = (0..shards)
        .map(|i| std::fs::read(dir.join(format!("shard{i}.wal"))).expect("read WAL back"))
        .collect();
    let (recovered, info) = ShardedOrchestrator::recover_fleet(&images, "orch-verify", now, batch);
    assert!(
        info.damaged_shards().is_empty(),
        "clean shutdown left damaged shard images"
    );
    assert_eq!(
        recovered.all_runs().count(),
        flows,
        "recovered fleet lost flow runs"
    );
    let completed = recovered
        .all_runs()
        .filter(|r| r.state == FlowState::Completed)
        .count();

    ConfigResult {
        shards,
        batch,
        flows,
        completed,
        wall_s,
        flows_per_s: flows as f64 / wall_s,
        records_per_s: records as f64 / wall_s,
        records,
        fsyncs,
        bytes,
    }
}

fn load_quick_reference(path: &Path) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let v: serde_json::Value = serde_json::from_str(&text).ok()?;
    v.get("flows_per_s_sharded")?.as_f64()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let flows = if quick { 400 } else { 1200 };
    let wal_dir = std::env::temp_dir().join("als_bench_orchestrator_wal");

    // (shards, group-commit batch); first row is the PR 2 shape: one
    // journal, every record individually flushed
    let configs: &[(usize, usize)] = if quick {
        &[(1, 1), (8, 32)]
    } else {
        &[(1, 1), (1, 32), (2, 32), (4, 32), (8, 32)]
    };

    println!("orchestrator WAL throughput ({flows} flows, real file fsyncs)");
    println!("shards  batch  flows/s  records/s  fsyncs  records  completed");
    let mut rows = Vec::new();
    for &(shards, batch) in configs {
        let r = run_config(shards, batch, flows, &wal_dir);
        println!(
            "{:>6}  {:>5}  {:>7.0}  {:>9.0}  {:>6}  {:>7}  {:>6}/{}",
            r.shards,
            r.batch,
            r.flows_per_s,
            r.records_per_s,
            r.fsyncs,
            r.records,
            r.completed,
            r.flows
        );
        rows.push(r);
    }
    std::fs::remove_dir_all(&wal_dir).ok();

    let baseline = &rows[0];
    let sharded = rows.last().expect("at least one config");
    let speedup = sharded.flows_per_s / baseline.flows_per_s;
    println!(
        "sharded group commit ({} shards, batch {}) vs unsharded immediate: {:.2}x flows/s",
        sharded.shards, sharded.batch, speedup
    );
    if speedup < 2.0 {
        println!("WARNING: sharded speedup below the 2x bar");
    }

    let config_json: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                concat!(
                    "{{\"shards\": {}, \"batch\": {}, \"flows\": {}, \"completed\": {}, ",
                    "\"wall_s\": {}, \"flows_per_s\": {}, \"records_per_s\": {}, ",
                    "\"records\": {}, \"fsyncs\": {}, \"journal_bytes\": {}}}"
                ),
                r.shards,
                r.batch,
                r.flows,
                r.completed,
                json_num(r.wall_s),
                json_num(r.flows_per_s),
                json_num(r.records_per_s),
                r.records,
                r.fsyncs,
                r.bytes,
            )
        })
        .collect();
    let artifact = format!(
        concat!(
            "{{\n  \"bench\": \"orchestrator\",\n  \"quick\": {},\n  \"flows\": {},\n",
            "  \"flows_per_s_unsharded\": {},\n  \"flows_per_s_sharded\": {},\n",
            "  \"speedup_sharded_vs_unsharded\": {},\n  \"configs\": [\n    {}\n  ]\n}}\n"
        ),
        quick,
        flows,
        json_num(baseline.flows_per_s),
        json_num(sharded.flows_per_s),
        json_num(speedup),
        config_json.join(",\n    "),
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_orchestrator.json");
    std::fs::write(out, artifact).expect("write BENCH_orchestrator.json");
    println!("wrote {out}");

    if quick {
        let ref_path = PathBuf::from(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../ci/orchestrator_quick_ref.json"
        ));
        match load_quick_reference(&ref_path) {
            Some(reference) => {
                println!(
                    "quick guard: sharded {:.0} flows/s vs reference {:.0}",
                    sharded.flows_per_s, reference
                );
                if sharded.flows_per_s < reference / 2.0 {
                    println!("FAIL: sharded throughput regressed >2x vs reference");
                    std::process::exit(1);
                }
            }
            None => println!(
                "quick guard: no reference at {}, skipping",
                ref_path.display()
            ),
        }
    }
}
