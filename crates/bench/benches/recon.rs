//! Reconstruction-algorithm benchmarks: FBP vs gridrec vs the iterative
//! solvers — the cost ordering behind the paper's dual-path design
//! (fast/lower-quality streaming vs slow/high-quality file-based).

use als_phantom::shepp_logan_2d;
use als_tomo::{
    art_slice, fbp_slice, forward_project, gridrec_slice, mlem_slice, sirt_slice, FbpConfig,
    Geometry, GridrecConfig, IterConfig,
};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("recon_slice_64");
    group.sample_size(20);
    let n = 64;
    let img = shepp_logan_2d(n);
    let geom = Geometry::parallel_180(90, n);
    let sino = forward_project(&img, &geom);

    group.bench_function("fbp", |b| {
        b.iter(|| black_box(fbp_slice(&sino, &geom, &FbpConfig::default()).unwrap()))
    });
    group.bench_function("gridrec", |b| {
        b.iter(|| black_box(gridrec_slice(&sino, &geom, &GridrecConfig::default()).unwrap()))
    });
    let iter10 = IterConfig {
        iterations: 10,
        ..Default::default()
    };
    group.bench_function("sirt_10", |b| {
        b.iter(|| black_box(sirt_slice(&sino, &geom, &iter10).unwrap()))
    });
    group.bench_function("mlem_10", |b| {
        b.iter(|| black_box(mlem_slice(&sino, &geom, &iter10).unwrap()))
    });
    let art3 = IterConfig {
        iterations: 3,
        relaxation: 0.5,
        ..Default::default()
    };
    group.bench_function("art_3", |b| {
        b.iter(|| black_box(art_slice(&sino, &geom, &art3).unwrap()))
    });
    group.finish();
}

fn bench_fbp_scaling(c: &mut Criterion) {
    // confirms the O(n_angles · n²) scaling the throughput model assumes
    let mut group = c.benchmark_group("fbp_scaling");
    group.sample_size(15);
    for &n in &[32usize, 64, 128] {
        let img = shepp_logan_2d(n);
        let geom = Geometry::parallel_180(n, n);
        let sino = forward_project(&img, &geom);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(fbp_slice(&sino, &geom, &FbpConfig::default()).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_algorithms, bench_fbp_scaling);
criterion_main!(benches);
