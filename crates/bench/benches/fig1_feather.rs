//! F1 — the Figure 1 feather comparison as a benchmark: time the
//! mount→scan→reconstruct→compare loop the paper says went from hours to
//! ~20 minutes, and print the discriminating morphology metrics.

use als_phantom::{feather_volume, FeatherSpecies, MorphologyReport};
use als_phantom::{DetectorConfig, ScanSimulator};
use als_tomo::{fbp_volume, FbpConfig, Geometry, Sinogram};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

/// The analysis loop: scan the phantom, reconstruct, measure morphology.
fn scan_and_measure(species: FeatherSpecies) -> MorphologyReport {
    let n = 64;
    let nz = 4;
    let phantom = feather_volume(species, n, nz, 99);
    let geom = Geometry::parallel_180(72, n);
    let det = DetectorConfig::default();
    let mut sim = ScanSimulator::new(&phantom, geom.clone(), det, 1);
    let frames = sim.all_frames();
    let sinos: Vec<Sinogram> = (0..nz)
        .map(|r| {
            als_phantom::frames_to_sinogram(
                &frames,
                sim.dark_field(),
                sim.flat_field(),
                r,
                det.mu_scale,
            )
        })
        .collect();
    let vol = fbp_volume(&sinos, &geom, &FbpConfig::default()).unwrap();
    MorphologyReport::of_volume(&vol, 0.5)
}

fn bench_feather_comparison(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_feather");
    group.sample_size(10);
    for species in [FeatherSpecies::Chicken, FeatherSpecies::Sandgrouse] {
        group.bench_with_input(
            BenchmarkId::from_parameter(species.name()),
            &species,
            |b, &sp| b.iter(|| black_box(scan_and_measure(sp))),
        );
    }
    group.finish();

    let chicken = scan_and_measure(FeatherSpecies::Chicken);
    let sandgrouse = scan_and_measure(FeatherSpecies::Sandgrouse);
    eprintln!(
        "fig1: enclosed void sandgrouse {:.4} vs chicken {:.4}; radial anisotropy chicken {:.3} vs sandgrouse {:.3}",
        sandgrouse.enclosed_void_fraction,
        chicken.enclosed_void_fraction,
        chicken.radial_anisotropy,
        sandgrouse.radial_anisotropy
    );
}

criterion_group!(benches, bench_feather_comparison);
criterion_main!(benches);
