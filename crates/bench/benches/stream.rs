//! Zero-copy multi-detector streaming benchmark.
//!
//! Measures the rebuilt `als-stream` hot path end to end: slab-pooled
//! frames published once and shared by every consumer, bounded queues
//! with exact drop accounting, incremental sinogram assembly, and N
//! concurrent detector streams multiplexed onto one shared
//! reconstruction plan.
//!
//! Writes `BENCH_stream.json` at the workspace root:
//!
//! * a stream-count sweep (1/2/4/8 concurrent detectors) with aggregate
//!   frames/s and preview-latency p50/p99,
//! * proof the hot path performs **zero** pixel deep-copies and a
//!   bounded slab working set,
//! * the incremental-vs-from-scratch preview equivalence check
//!   (bit-identical),
//! * a `core::faults` storm arm (brownout throttling + corruption
//!   bursts) with the measured preview-latency SLO: the paper-scale
//!   equivalent p99 must stay under 10 s on the sim clock.
//!
//! `--quick` (CI) runs a reduced problem and compares the single-stream
//! wall time against the committed reference in
//! `ci/stream_quick_ref.json`, exiting nonzero on a >2x regression.

use als_flows::faults::FaultPlan;
use als_flows::realmode::publish_scan_under_storm;
use als_flows::streaming_model::streaming_timing;
use als_phantom::{shepp_logan_volume, DetectorConfig, ScanSimulator};
use als_stream::slab::{deep_copy_count, FrameSlab, SlabFrame};
use als_stream::streamer::{reconstruct_preview, IncrementalScan, PlanCache, StreamerConfig};
use als_stream::{
    announce_for, publish_scan_pooled, DeliveryMode, FileWriterConfig, FileWriterService, SlabPool,
    StreamHub,
};
use als_tomo::throughput::ScanDims;
use als_tomo::{FbpConfig, Geometry};
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".into()
    }
}

/// Nearest-rank percentile over an unsorted sample, in milliseconds.
fn percentile_ms(samples: &[Duration], q: f64) -> f64 {
    if samples.is_empty() {
        return f64::NAN;
    }
    let mut ms: Vec<f64> = samples.iter().map(|d| d.as_secs_f64() * 1e3).collect();
    ms.sort_by(f64::total_cmp);
    let idx = ((q * ms.len() as f64).ceil() as usize).clamp(1, ms.len()) - 1;
    ms[idx]
}

struct SweepResult {
    json: String,
    wall_s: f64,
}

/// One stream-count sweep entry: `streams` concurrent detectors, each
/// publishing `scans` acquisitions through its own lane of a shared hub.
fn sweep_entry(streams: usize, scans: usize, n: usize, nz: usize, n_angles: usize) -> SweepResult {
    let hub = StreamHub::new();
    let lanes: Vec<_> = (0..streams)
        .map(|i| hub.open_lane(&format!("det{i}"), FbpConfig::default(), 1 << 12))
        .collect();
    let vol = Arc::new(shepp_logan_volume(n, nz));
    let det = DetectorConfig {
        noise: false,
        ..Default::default()
    };

    let t0 = Instant::now();
    // one publisher thread per detector, each with its own slab pool
    let publishers: Vec<_> = lanes
        .iter()
        .enumerate()
        .map(|(i, lane)| {
            let server = Arc::clone(&lane.server);
            let vol = Arc::clone(&vol);
            std::thread::spawn(move || {
                let pool = SlabPool::new(n * nz);
                for s in 0..scans {
                    let geom = Geometry::parallel_180(n_angles, n);
                    let mut sim = ScanSimulator::new(&vol, geom, det, (i * 1000 + s) as u64);
                    publish_scan_pooled(
                        &server,
                        &mut sim,
                        &format!("det{i}_s{s}"),
                        det.mu_scale,
                        &pool,
                    );
                }
                pool.allocated()
            })
        })
        .collect();
    // one collector per lane, recording preview latencies
    let collectors: Vec<_> = lanes
        .iter()
        .map(|lane| {
            let mut feedback = Vec::with_capacity(scans);
            let mut recon = Vec::with_capacity(scans);
            for _ in 0..scans {
                let p = lane
                    .previews
                    .recv_timeout(Duration::from_secs(120))
                    .expect("preview within deadline");
                assert_eq!(p.dropped_frames, 0, "sweep stream must not lose frames");
                feedback.push(p.feedback_wall);
                recon.push(p.recon_wall);
            }
            (feedback, recon)
        })
        .collect();
    let wall_s = t0.elapsed().as_secs_f64();
    let max_slabs = publishers
        .into_iter()
        .map(|h| h.join().expect("publisher joins"))
        .max()
        .unwrap_or(0);

    let feedback: Vec<Duration> = collectors.iter().flat_map(|(f, _)| f.clone()).collect();
    let recon: Vec<Duration> = collectors.iter().flat_map(|(_, r)| r.clone()).collect();
    let frames_total = (streams * scans * n_angles) as f64;
    let frames_per_s = frames_total / wall_s;
    let p50 = percentile_ms(&feedback, 0.50);
    let p99 = percentile_ms(&feedback, 0.99);
    let recon_p50 = percentile_ms(&recon, 0.50);

    let snap = hub.registry().snapshot();
    let dropped: u64 = snap
        .counters
        .iter()
        .filter(|(k, _)| k.starts_with("stream_frames_dropped_total"))
        .map(|(_, &v)| v)
        .sum();
    let published: u64 = snap
        .counters
        .iter()
        .filter(|(k, _)| k.starts_with("stream_frames_published_total"))
        .map(|(_, &v)| v)
        .sum();
    let (plans_built, plan_hits) = (hub.plans().misses(), hub.plans().hits());

    println!(
        "{streams} stream(s) x {scans} scans: {frames_per_s:.0} frames/s, preview p50 {p50:.1} ms p99 {p99:.1} ms, {plans_built} plan(s) built ({plan_hits} cache hits), peak {max_slabs} slabs/stream, {dropped} dropped"
    );
    for lane in lanes {
        lane.close();
    }
    let json = format!(
        "    {{\"streams\": {streams}, \"scans_per_stream\": {scans}, \"frames_per_s\": {}, \"preview_p50_ms\": {}, \"preview_p99_ms\": {}, \"recon_p50_ms\": {}, \"previews\": {}, \"messages_published\": {published}, \"frames_dropped\": {dropped}, \"plans_built\": {plans_built}, \"plan_cache_hits\": {plan_hits}, \"peak_slabs_per_stream\": {max_slabs}}}",
        json_num(frames_per_s),
        json_num(p50),
        json_num(p99),
        json_num(recon_p50),
        feedback.len(),
    );
    SweepResult { json, wall_s }
}

/// The incremental assembler against the retained from-scratch preview
/// path: must be bit-identical.
fn equivalence_entry(n: usize, nz: usize, n_angles: usize) -> String {
    let vol = shepp_logan_volume(n, nz);
    let geom = Geometry::parallel_180(n_angles, n);
    let det = DetectorConfig::default();
    let mut sim = ScanSimulator::new(&vol, geom, det, 4141);
    let announce = announce_for(&sim, "equiv", det.mu_scale);
    let frames: Vec<SlabFrame> = sim
        .all_frames()
        .into_iter()
        .map(|f| FrameSlab::detached(f.meta, f.data))
        .collect();
    let cfg = StreamerConfig::default();

    let t = Instant::now();
    let scratch = reconstruct_preview(&announce, &frames, &cfg, "equiv").expect("scratch");
    let scratch_ms = t.elapsed().as_secs_f64() * 1e3;

    let announce = Arc::new(announce);
    let t = Instant::now();
    let mut scan = IncrementalScan::new(Arc::clone(&announce));
    for f in &frames {
        scan.ingest(f);
    }
    let ingest_ms = t.elapsed().as_secs_f64() * 1e3;
    let t = Instant::now();
    let incremental = scan
        .finish(&PlanCache::new(), &cfg.fbp, "equiv")
        .expect("incremental");
    let finish_ms = t.elapsed().as_secs_f64() * 1e3;

    let mut max_abs = 0.0f32;
    let mut identical = true;
    for (a, b) in incremental.slices.iter().zip(scratch.slices.iter()) {
        identical &= a.data == b.data;
        for (&x, &y) in a.data.iter().zip(b.data.iter()) {
            max_abs = max_abs.max((x - y).abs());
        }
    }
    assert!(
        identical,
        "incremental preview diverged from from-scratch (max abs diff {max_abs})"
    );
    println!(
        "incremental equivalence: bit-identical; scan-end work {finish_ms:.1} ms vs from-scratch {scratch_ms:.1} ms (in-stream ingest {ingest_ms:.1} ms amortized over acquisition)"
    );
    format!(
        "  {{\"bit_identical\": {identical}, \"max_abs_diff\": {}, \"scan_end_work_ms\": {}, \"from_scratch_ms\": {}, \"amortized_ingest_ms\": {}}}",
        json_num(max_abs as f64),
        json_num(finish_ms),
        json_num(scratch_ms),
        json_num(ingest_ms)
    )
}

/// The storm arm: one detector stream with the full dual-path topology
/// (reliable file writer + lossy preview monitor) publishing under a
/// `FaultPlan::storm` — ESnet brownouts throttle the source, corruption
/// bursts inject malformed frames — while the preview-latency SLO is
/// measured.
fn storm_entry(
    scans: usize,
    n: usize,
    nz: usize,
    n_angles: usize,
    frame_period: Duration,
) -> (String, bool) {
    use als_simcore::SimDuration;
    let hub = StreamHub::new();
    let lane = hub.open_lane("storm0", FbpConfig::default(), 1 << 12);
    let out_dir = std::env::temp_dir().join("bench_stream_storm");
    std::fs::remove_dir_all(&out_dir).ok();
    let writer = FileWriterService::spawn_with(
        lane.server
            .subscribe_named("filewriter", 256, DeliveryMode::Reliable),
        &out_dir,
        FileWriterConfig {
            stream: "storm0".into(),
            registry: Some(Arc::clone(hub.registry())),
            ..Default::default()
        },
    );
    let vol = shepp_logan_volume(n, nz);
    let det = DetectorConfig {
        noise: false,
        ..Default::default()
    };

    let mut published = 0usize;
    let mut corrupt = 0usize;
    let mut throttled = 0usize;
    let mut feedback = Vec::with_capacity(scans);
    let mut recon = Vec::with_capacity(scans);
    let mut rejected_total = 0usize;
    for s in 0..scans {
        let geom = Geometry::parallel_180(n_angles, n);
        let mut sim = ScanSimulator::new(&vol, geom, det, 7000 + s as u64);
        // the storm horizon covers the acquisition at 1 sim-second/frame
        let plan = FaultPlan::storm(s as u64, SimDuration::from_secs(n_angles as u64), 1.0);
        let stats = publish_scan_under_storm(
            &lane.server,
            &mut sim,
            &format!("storm_s{s}"),
            det.mu_scale,
            &plan,
            frame_period,
            1.0,
        );
        published += stats.published;
        corrupt += stats.corrupt_injected;
        throttled += stats.brownout_throttled;
        let p = lane
            .previews
            .recv_timeout(Duration::from_secs(120))
            .expect("preview despite the storm");
        assert_eq!(
            p.cached_frames + p.dropped_frames,
            n_angles,
            "storm accounting must close"
        );
        assert!(
            p.rejected_frames <= stats.corrupt_injected,
            "rejections can only come from injected corruption"
        );
        rejected_total += p.rejected_frames;
        feedback.push(p.feedback_wall);
        recon.push(p.recon_wall);
        let w = writer
            .wait_completion(Duration::from_secs(120))
            .expect("scan written despite the storm");
        assert_eq!(w.n_frames, stats.published, "writer keeps every real frame");
    }
    writer.stop();
    lane.close();
    std::fs::remove_dir_all(&out_dir).ok();

    let p50 = percentile_ms(&feedback, 0.50);
    let p99 = percentile_ms(&feedback, 0.99);
    let recon_p50 = percentile_ms(&recon, 0.50);

    // SLO on the sim clock: the calibrated paper-scale model says
    // reconstruction takes ~7-8 s and the preview send <1 s on a NERSC
    // GPU node. What the *streaming machinery* adds on top is additive,
    // not proportional to recon cost — incremental assembly is amortized
    // into acquisition, so scan-end work is recon + queueing + slice
    // send. The measured p99 feedback minus median recon is that added
    // overhead at its worst, under the storm; the paper-scale equivalent
    // p99 (paper recon + paper send + measured overhead) must stay under
    // the 10 s figure.
    let paper = streaming_timing(&ScanDims::paper_reference());
    let paper_recon_s = paper.recon.as_secs_f64();
    let paper_send_s = paper.preview_send.as_secs_f64();
    let overhead_p99_s = (p99 - recon_p50).max(0.0) / 1e3;
    let equivalent_p99_s = paper_recon_s + paper_send_s + overhead_p99_s;
    let pass = equivalent_p99_s < 10.0;
    println!(
        "storm arm: {published} frames published, {corrupt} corrupt injected ({rejected_total} rejected downstream), {throttled} brownout-throttled; preview p50 {p50:.1} ms p99 {p99:.1} ms"
    );
    println!(
        "preview SLO: machinery overhead p99 = {:.2} ms; paper-scale equivalent p99 = {paper_recon_s:.1} s recon + {paper_send_s:.2} s send + overhead = {equivalent_p99_s:.2} s (target < 10 s) -> {}",
        overhead_p99_s * 1e3,
        if pass { "PASS" } else { "FAIL" }
    );
    let json = format!(
        "  {{\"scans\": {scans}, \"frames_published\": {published}, \"corrupt_injected\": {corrupt}, \"corrupt_rejected\": {rejected_total}, \"brownout_throttled\": {throttled}, \"preview_p50_ms\": {}, \"preview_p99_ms\": {}, \"recon_p50_ms\": {}, \"slo\": {{\"paper_recon_s\": {}, \"paper_send_s\": {}, \"machinery_overhead_p99_ms\": {}, \"equivalent_p99_s\": {}, \"target_s\": 10.0, \"pass\": {pass}}}}}",
        json_num(p50),
        json_num(p99),
        json_num(recon_p50),
        json_num(paper_recon_s),
        json_num(paper_send_s),
        json_num(overhead_p99_s * 1e3),
        json_num(equivalent_p99_s)
    );
    (json, pass)
}

/// Pull `"quick_single_stream_wall_ms": <num>` out of the committed
/// reference file. Returns `None` when the file is absent.
fn load_quick_reference(path: &Path) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let v: serde_json::Value = serde_json::from_str(&text).ok()?;
    v.get("quick_single_stream_wall_ms")?.as_f64()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (n, nz, n_angles, scans, storm_scans, frame_period) = if quick {
        (48, 3, 48, 4, 3, Duration::ZERO)
    } else {
        (64, 4, 96, 6, 6, Duration::from_micros(200))
    };
    let deep_copies_before = deep_copy_count();

    println!("stream sweep: {n}x{n}x{nz}, {n_angles} angles, {scans} scans per stream");
    let sweep: Vec<SweepResult> = [1usize, 2, 4, 8]
        .iter()
        .map(|&streams| sweep_entry(streams, scans, n, nz, n_angles))
        .collect();

    let equivalence = equivalence_entry(n, nz, n_angles);
    let (storm, slo_pass) = storm_entry(storm_scans, n, nz, n_angles, frame_period);

    // the whole bench — fanout, mirror-free dual consumers, incremental
    // assembly, file writing — must not have deep-copied a single frame
    let deep_copies = deep_copy_count() - deep_copies_before;
    assert_eq!(
        deep_copies, 0,
        "hot path performed {deep_copies} pixel deep-copies"
    );
    println!("zero-copy check: {deep_copies} frame deep-copies across the whole bench");

    let row_json: Vec<&str> = sweep.iter().map(|r| r.json.as_str()).collect();
    let json = format!(
        "{{\n  \"bench\": \"stream\",\n  \"mode\": \"{}\",\n  \"note\": \"zero-copy multi-detector streaming: slab-pooled frames published once and shared by monitor/writer/preview consumers, bounded queues with exact drop accounting, incremental sinogram assembly (scan-end work = recon only), N streams multiplexed onto one shared ReconPlan; storm arm publishes under core::faults brownout+corruption with the paper-scale preview-latency SLO (equivalent p99 < 10 s on the sim clock)\",\n  \"scan\": {{\"n\": {n}, \"nz\": {nz}, \"n_angles\": {n_angles}}},\n  \"zero_copy\": {{\"frame_deep_copies\": {deep_copies}}},\n  \"quick_single_stream_wall_ms\": {},\n  \"stream_sweep\": [\n{}\n  ],\n  \"incremental_equivalence\": \n{},\n  \"storm\": \n{}\n}}\n",
        if quick { "quick" } else { "full" },
        json_num(sweep[0].wall_s * 1e3),
        row_json.join(",\n"),
        equivalence,
        storm
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_stream.json");
    std::fs::write(out, &json).expect("write BENCH_stream.json");
    println!("wrote {out}");

    if !slo_pass {
        eprintln!("SLO FAILURE: paper-scale equivalent preview p99 exceeded 10 s under the storm");
        std::process::exit(1);
    }

    if quick {
        let ref_path = Path::new(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../ci/stream_quick_ref.json"
        ));
        let quick_ms = sweep[0].wall_s * 1e3;
        match load_quick_reference(ref_path) {
            Some(ref_ms) => {
                println!(
                    "quick-mode guard: single-stream wall {quick_ms:.1} ms vs committed reference {ref_ms:.1} ms"
                );
                if quick_ms > 2.0 * ref_ms {
                    eprintln!(
                        "REGRESSION: quick single-stream wall {quick_ms:.1} ms is more than 2x the committed reference {ref_ms:.1} ms"
                    );
                    std::process::exit(1);
                }
            }
            None => println!(
                "quick-mode guard skipped: no committed reference at {}",
                ref_path.display()
            ),
        }
    }
}
