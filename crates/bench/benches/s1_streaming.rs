//! S1 — the streaming branch (§5.2).
//!
//! Measures the *real* streaming reconstruction path (frame cache →
//! per-slice sinograms → rayon-parallel FBP → three-slice preview) at
//! laptop scale, and reports the calibrated paper-scale estimate the DES
//! uses. The paper's numbers at full scale: 7–8 s reconstruction on a
//! 4-GPU node, <1 s preview send, <10 s total.

use als_phantom::{shepp_logan_volume, DetectorConfig, ScanSimulator};
use als_stream::slab::{FrameSlab, SlabFrame};
use als_stream::streamer::{reconstruct_preview, StreamerConfig};
use als_stream::ScanAnnounce;
use als_tomo::Geometry;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_streaming_recon(c: &mut Criterion) {
    let mut group = c.benchmark_group("streaming_recon");
    group.sample_size(10);
    for &(n, nz, n_angles) in &[(64usize, 4usize, 64usize), (96, 6, 96), (128, 8, 128)] {
        let vol = shepp_logan_volume(n, nz);
        let geom = Geometry::parallel_180(n_angles, n);
        let det = DetectorConfig::default();
        let mut sim = ScanSimulator::new(&vol, geom.clone(), det, 3);
        let frames: Vec<SlabFrame> = sim
            .all_frames()
            .into_iter()
            .map(|f| FrameSlab::detached(f.meta, f.data))
            .collect();
        let announce = ScanAnnounce {
            scan_id: "bench".into(),
            n_angles,
            rows: nz,
            cols: n,
            angles: geom.angles.clone(),
            dark: sim.dark_field().to_vec(),
            flat: sim.flat_field().to_vec(),
            mu_scale: det.mu_scale,
        };
        let cfg = StreamerConfig::default();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n_angles}x{nz}x{n}")),
            &n,
            |b, _| {
                b.iter(|| {
                    black_box(reconstruct_preview(&announce, &frames, &cfg, "bench").unwrap())
                })
            },
        );
    }
    group.finish();
}

fn bench_paper_scale_estimate(c: &mut Criterion) {
    // the analytic model is itself nearly free; benching it documents the
    // numbers alongside the measured small-scale runs
    use als_flows::streaming_model::streaming_timing;
    use als_tomo::throughput::ScanDims;
    c.bench_function("paper_scale_model", |b| {
        b.iter(|| black_box(streaming_timing(&ScanDims::paper_reference())))
    });
    let t = streaming_timing(&ScanDims::paper_reference());
    eprintln!(
        "paper-scale estimate: recon {:.2} s + send {:.3} s = {:.2} s (paper: 7-8 s, <1 s, <10 s)",
        t.recon.as_secs_f64(),
        t.preview_send.as_secs_f64(),
        t.total.as_secs_f64()
    );
}

criterion_group!(benches, bench_streaming_recon, bench_paper_scale_estimate);
criterion_main!(benches);
