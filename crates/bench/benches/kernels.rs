//! Kernel microbenchmarks: FFT, ramp filtering, forward/back projection,
//! and the preprocessing chain — the per-slice costs every pipeline
//! estimate in the paper-scale model is calibrated from.
//!
//! Besides the criterion groups, this bench measures plan-based
//! reconstruction throughput against the retained pre-plan reference
//! kernels (same run, same inputs) and writes `BENCH_recon.json` at the
//! workspace root so the perf trajectory is tracked per PR. Run with
//! `--quick` (CI) for a reduced-repetition pass.

use als_phantom::shepp_logan_2d;
use als_tomo::fft::{fft, Complex};
use als_tomo::filter::{filter_sinogram, FilterKind};
use als_tomo::prep;
use als_tomo::radon::{backproject, forward_project};
use als_tomo::{reference, FbpConfig, Geometry, ReconPlan, Sinogram};
use criterion::{black_box, criterion_group, BenchmarkId, Criterion};
use std::path::Path;
use std::time::Instant;

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft");
    for &n in &[256usize, 1024, 4096] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let data: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.1).sin(), 0.0))
                .collect();
            b.iter(|| {
                let mut d = data.clone();
                fft(&mut d);
                black_box(d)
            });
        });
    }
    group.finish();
}

fn bench_filter(c: &mut Criterion) {
    let mut group = c.benchmark_group("ramp_filter");
    let img = shepp_logan_2d(128);
    let geom = Geometry::parallel_180(180, 128);
    let sino = forward_project(&img, &geom);
    for kind in [FilterKind::RamLak, FilterKind::SheppLogan, FilterKind::Hann] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{kind:?}")),
            &kind,
            |b, &kind| b.iter(|| black_box(filter_sinogram(&sino, kind))),
        );
    }
    group.finish();
}

fn bench_projectors(c: &mut Criterion) {
    let mut group = c.benchmark_group("projectors");
    for &n in &[64usize, 128] {
        let img = shepp_logan_2d(n);
        let geom = Geometry::parallel_180(n, n);
        group.bench_with_input(BenchmarkId::new("forward", n), &n, |b, _| {
            b.iter(|| black_box(forward_project(&img, &geom)))
        });
        let sino = forward_project(&img, &geom);
        group.bench_with_input(BenchmarkId::new("back", n), &n, |b, _| {
            b.iter(|| black_box(backproject(&sino, &geom, n, 1.0)))
        });
    }
    group.finish();
}

fn bench_preprocessing(c: &mut Criterion) {
    let mut group = c.benchmark_group("preprocessing");
    let img = shepp_logan_2d(128);
    let geom = Geometry::parallel_180(180, 128);
    let sino = forward_project(&img, &geom);
    let dark = vec![100.0f32; 128];
    let flat = vec![10_000.0f32; 128];
    group.bench_function("normalize", |b| {
        b.iter(|| black_box(prep::normalize(&sino, &dark, &flat)))
    });
    group.bench_function("minus_log", |b| {
        b.iter(|| black_box(prep::minus_log(&sino)))
    });
    group.bench_function("remove_zingers", |b| {
        b.iter(|| black_box(prep::remove_zingers(&sino, 0.5)))
    });
    group.bench_function("remove_stripes", |b| {
        b.iter(|| black_box(prep::remove_stripes(&sino, 9)))
    });
    group.bench_function("paganin", |b| {
        b.iter(|| black_box(prep::paganin_filter(&sino, 50.0)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fft,
    bench_filter,
    bench_projectors,
    bench_preprocessing
);

// ---------------------------------------------------------------------------
// BENCH_recon.json: plan vs reference reconstruction throughput
// ---------------------------------------------------------------------------

/// Best-of-`reps` wall time of `f`, after one warmup call.
fn time_best<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn shepp_sino(n: usize, n_angles: usize) -> (Sinogram, Geometry) {
    let img = shepp_logan_2d(n);
    let geom = Geometry::parallel_180(n_angles, n);
    (forward_project(&img, &geom), geom)
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".into()
    }
}

/// The `cpu` block: detected ISA features, the SIMD path the plans
/// dispatch to, and its f32 lane width — so BENCH_recon numbers from
/// different machines (or the `ALS_TOMO_SIMD=scalar` fallback) are
/// directly comparable. The schema is identical on non-AVX2 hosts;
/// only the values change.
fn cpu_block() -> String {
    let path = als_tomo::simd::detect();
    #[cfg(target_arch = "x86_64")]
    let (avx2, fma, avx512f) = (
        std::is_x86_feature_detected!("avx2"),
        std::is_x86_feature_detected!("fma"),
        std::is_x86_feature_detected!("avx512f"),
    );
    #[cfg(not(target_arch = "x86_64"))]
    let (avx2, fma, avx512f) = (false, false, false);
    format!(
        "  \"cpu\": {{\"arch\": \"{}\", \"avx2\": {avx2}, \"fma\": {fma}, \"avx512f\": {avx512f}, \"simd_path\": \"{}\", \"f32_lanes\": {}}}",
        std::env::consts::ARCH,
        path.name(),
        als_tomo::simd::lanes(path)
    )
}

struct SliceResult {
    json: String,
    plan_ms: f64,
    speedup: f64,
}

fn slice_entry(n: usize, n_angles: usize, reps: usize) -> SliceResult {
    let (sino, geom) = shepp_sino(n, n_angles);
    let cfg = FbpConfig::default();
    let plan = ReconPlan::new(&geom, &cfg).unwrap();
    let path = plan.simd_path();
    let mut scratch = plan.make_scratch();
    let t_plan = time_best(reps, || {
        black_box(plan.fbp_slice_with(&sino, &mut scratch).unwrap());
    });
    let t_ref = time_best(reps, || {
        black_box(reference::fbp_slice(&sino, &geom, &cfg).unwrap());
    });
    let mpix = (n * n) as f64 / 1e6;
    let speedup = t_ref / t_plan;
    println!(
        "recon/slice {n}x{n}x{n_angles} [{}]: plan {:.3} ms ({:.1} slices/s), reference {:.3} ms, speedup {:.2}x",
        path.name(),
        t_plan * 1e3,
        1.0 / t_plan,
        t_ref * 1e3,
        speedup
    );
    let json = format!(
        "    {{\"n\": {n}, \"n_angles\": {n_angles}, \"simd_path\": \"{}\", \"plan_ms\": {}, \"reference_ms\": {}, \"plan_slices_per_s\": {}, \"plan_mpix_per_s\": {}, \"speedup\": {}}}",
        path.name(),
        json_num(t_plan * 1e3),
        json_num(t_ref * 1e3),
        json_num(1.0 / t_plan),
        json_num(mpix / t_plan),
        json_num(speedup)
    );
    SliceResult {
        json,
        plan_ms: t_plan * 1e3,
        speedup,
    }
}

/// Fused prep chain (PrepPlan + ring + Paganin post-stage, one pass)
/// vs the unfused reference chain, same inputs, same run.
fn prep_chain_entry(n: usize, n_angles: usize, reps: usize) -> String {
    let (sino, _) = shepp_sino(n, n_angles);
    // treat the projections as raw-ish counts so normalize has work to do
    let mut raw = sino.clone();
    for v in raw.data.iter_mut() {
        *v = 200.0 + v.abs() * 50.0;
    }
    let dark = vec![100.0f32; n];
    let flat = vec![1000.0f32; n];
    let plan = prep::PrepPlan::new(&dark, &flat, Some(0.5))
        .with_ring(9)
        .with_paganin(40.0);
    let mut scratch = plan.make_post_scratch();
    let t_fused = time_best(reps, || {
        let mut s = raw.clone();
        plan.apply_with(&mut s, &mut scratch);
        black_box(s);
    });
    let t_ref = time_best(reps, || {
        black_box(reference::prep_chain(
            &raw,
            &dark,
            &flat,
            Some(0.5),
            Some(9),
            Some(40.0),
        ));
    });
    println!(
        "prep/chain {n_angles}x{n} (norm+zinger+log+ring+paganin): fused {:.3} ms, reference {:.3} ms, speedup {:.2}x",
        t_fused * 1e3,
        t_ref * 1e3,
        t_ref / t_fused
    );
    format!(
        "    {{\"n_det\": {n}, \"n_angles\": {n_angles}, \"fused_ms\": {}, \"reference_ms\": {}, \"speedup\": {}}}",
        json_num(t_fused * 1e3),
        json_num(t_ref * 1e3),
        json_num(t_ref / t_fused)
    )
}

struct VolumeResult {
    json: String,
    single_thread_speedup: f64,
}

fn volume_entry(n: usize, n_angles: usize, nz: usize, reps: usize) -> VolumeResult {
    let (sino, geom) = shepp_sino(n, n_angles);
    let sinos = vec![sino; nz];
    let cfg = FbpConfig::default();
    let plan = ReconPlan::new(&geom, &cfg).unwrap();
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);

    // single-thread plan vs (inherently single-thread) reference, same run
    rayon::set_num_threads(1);
    let t_plan_1 = time_best(reps, || {
        black_box(plan.fbp_volume(&sinos).unwrap());
    });
    let t_ref = time_best(reps, || {
        black_box(reference::fbp_volume(&sinos, &geom, &cfg).unwrap());
    });
    let single_thread_speedup = t_ref / t_plan_1;
    println!(
        "recon/volume {n}x{n}x{n_angles} ({nz} slices) 1 thread: plan {:.1} ms, reference {:.1} ms, speedup {:.2}x",
        t_plan_1 * 1e3,
        t_ref * 1e3,
        single_thread_speedup
    );

    // Thread sweep. Scaling efficiency is only meaningful when the
    // requested worker count fits the detected cores: on a 1-core CI
    // runner, 2- and 4-thread rows time-slice one core and their
    // "efficiency" is pure scheduler noise. Over-subscribed rows are
    // still measured (they show the over-subscription penalty) but are
    // flagged explicitly and report no efficiency figure.
    let mut sweep = Vec::new();
    for threads in [1usize, 2, 4] {
        rayon::set_num_threads(threads);
        let t = if threads == 1 {
            t_plan_1
        } else {
            time_best(reps, || {
                black_box(plan.fbp_volume(&sinos).unwrap());
            })
        };
        let speedup_vs_1 = t_plan_1 / t;
        let oversubscribed = threads > cores;
        let efficiency = if oversubscribed {
            f64::NAN // serialized as null
        } else {
            speedup_vs_1 / threads as f64
        };
        println!(
            "recon/volume {n}x{n}x{n_angles} ({nz} slices) {threads} threads: {:.1} ms, {:.2}x vs 1 thread, efficiency {}",
            t * 1e3,
            speedup_vs_1,
            if oversubscribed {
                "n/a (oversubscribed)".to_string()
            } else {
                format!("{efficiency:.2}")
            }
        );
        sweep.push(format!(
            "      {{\"threads\": {threads}, \"oversubscribed\": {oversubscribed}, \"plan_ms\": {}, \"slices_per_s\": {}, \"speedup_vs_1_thread\": {}, \"scaling_efficiency\": {}}}",
            json_num(t * 1e3),
            json_num(nz as f64 / t),
            json_num(speedup_vs_1),
            json_num(efficiency)
        ));
    }
    rayon::set_num_threads(0);

    let json = format!(
        "    {{\"n\": {n}, \"n_angles\": {n_angles}, \"nz\": {nz}, \"available_cores\": {cores}, \"plan_1_thread_ms\": {}, \"reference_1_thread_ms\": {}, \"single_thread_speedup\": {}, \"thread_sweep\": [\n{}\n    ]}}",
        json_num(t_plan_1 * 1e3),
        json_num(t_ref * 1e3),
        json_num(single_thread_speedup),
        sweep.join(",\n")
    );
    VolumeResult {
        json,
        single_thread_speedup,
    }
}

/// Committed quick-mode reference for the CI regression guard.
fn load_quick_reference(path: &Path) -> Option<f64> {
    let raw = std::fs::read_to_string(path).ok()?;
    let parsed: serde_json::Value = serde_json::from_str(&raw).ok()?;
    parsed.get("quick_slice_fbp_256_plan_ms")?.as_f64()
}

fn recon_throughput(quick: bool) {
    let reps = if quick { 1 } else { 3 };
    let nz = if quick { 4 } else { 8 };
    println!("{}", cpu_block().trim());
    let slice_sizes: &[(usize, usize)] = &[(64, 90), (128, 180), (256, 180), (512, 360)];
    let slices: Vec<SliceResult> = slice_sizes
        .iter()
        .map(|&(n, a)| slice_entry(n, a, reps))
        .collect();
    let preps: Vec<String> = [(256usize, 180usize), (512, 360)]
        .iter()
        .map(|&(n, a)| prep_chain_entry(n, a, reps))
        .collect();
    // the acceptance volume: 256×256, 180 angles
    let vol = volume_entry(256, 180, nz, reps);

    let slice_rows: Vec<&str> = slices.iter().map(|s| s.json.as_str()).collect();
    let json = format!(
        "{{\n  \"bench\": \"recon\",\n  \"mode\": \"{}\",\n{},\n  \"note\": \"plan engine vs retained pre-plan reference, same run, same inputs; scaling_efficiency = (speedup vs 1 thread) / threads, reported only for rows with threads <= available_cores (oversubscribed rows are flagged and carry null efficiency)\",\n  \"slice_fbp\": [\n{}\n  ],\n  \"prep_chain\": [\n{}\n  ],\n  \"volume_fbp\": [\n{}\n  ]\n}}\n",
        if quick { "quick" } else { "full" },
        cpu_block(),
        slice_rows.join(",\n"),
        preps.join(",\n"),
        vol.json
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_recon.json");
    std::fs::write(out, &json).expect("write BENCH_recon.json");
    println!("wrote {out}");
    if vol.single_thread_speedup < 3.0 {
        println!(
            "WARNING: single-thread volume speedup {:.2}x below the 3x acceptance bar",
            vol.single_thread_speedup
        );
    }
    let big_slices_fast = slices
        .iter()
        .zip(slice_sizes)
        .filter(|(_, &(n, _))| n >= 256)
        .all(|(s, _)| s.speedup >= 10.0);
    if !quick && !big_slices_fast {
        println!("WARNING: n>=256 slice_fbp speedup below the 10x acceptance bar");
    }

    // CI regression guard (quick mode only): the 256×256 slice row must
    // stay within 2x of the committed reference, same pattern as the
    // pipeline and orchestrator benches.
    if quick {
        let guard_row = slices
            .iter()
            .zip(slice_sizes)
            .find(|(_, &(n, _))| n == 256)
            .map(|(s, _)| s.plan_ms);
        let ref_path = Path::new(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../ci/recon_quick_ref.json"
        ));
        match (guard_row, load_quick_reference(ref_path)) {
            (Some(quick_ms), Some(ref_ms)) => {
                println!(
                    "recon quick guard: slice_fbp 256 plan {:.3} ms vs committed reference {:.3} ms",
                    quick_ms, ref_ms
                );
                if quick_ms > 2.0 * ref_ms {
                    eprintln!(
                        "REGRESSION: quick slice_fbp 256 plan time {quick_ms:.3} ms exceeds 2x the committed reference {ref_ms:.3} ms"
                    );
                    std::process::exit(1);
                }
            }
            _ => println!(
                "recon quick guard: no committed reference at {} — skipping",
                ref_path.display()
            ),
        }
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    if !quick {
        benches();
    }
    recon_throughput(quick);
}
