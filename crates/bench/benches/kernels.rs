//! Kernel microbenchmarks: FFT, ramp filtering, forward/back projection,
//! and the preprocessing chain — the per-slice costs every pipeline
//! estimate in the paper-scale model is calibrated from.

use als_phantom::shepp_logan_2d;
use als_tomo::fft::{fft, Complex};
use als_tomo::filter::{filter_sinogram, FilterKind};
use als_tomo::prep;
use als_tomo::radon::{backproject, forward_project};
use als_tomo::Geometry;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft");
    for &n in &[256usize, 1024, 4096] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let data: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.1).sin(), 0.0))
                .collect();
            b.iter(|| {
                let mut d = data.clone();
                fft(&mut d);
                black_box(d)
            });
        });
    }
    group.finish();
}

fn bench_filter(c: &mut Criterion) {
    let mut group = c.benchmark_group("ramp_filter");
    let img = shepp_logan_2d(128);
    let geom = Geometry::parallel_180(180, 128);
    let sino = forward_project(&img, &geom);
    for kind in [FilterKind::RamLak, FilterKind::SheppLogan, FilterKind::Hann] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{kind:?}")),
            &kind,
            |b, &kind| b.iter(|| black_box(filter_sinogram(&sino, kind))),
        );
    }
    group.finish();
}

fn bench_projectors(c: &mut Criterion) {
    let mut group = c.benchmark_group("projectors");
    for &n in &[64usize, 128] {
        let img = shepp_logan_2d(n);
        let geom = Geometry::parallel_180(n, n);
        group.bench_with_input(BenchmarkId::new("forward", n), &n, |b, _| {
            b.iter(|| black_box(forward_project(&img, &geom)))
        });
        let sino = forward_project(&img, &geom);
        group.bench_with_input(BenchmarkId::new("back", n), &n, |b, _| {
            b.iter(|| black_box(backproject(&sino, &geom, n, 1.0)))
        });
    }
    group.finish();
}

fn bench_preprocessing(c: &mut Criterion) {
    let mut group = c.benchmark_group("preprocessing");
    let img = shepp_logan_2d(128);
    let geom = Geometry::parallel_180(180, 128);
    let sino = forward_project(&img, &geom);
    let dark = vec![100.0f32; 128];
    let flat = vec![10_000.0f32; 128];
    group.bench_function("normalize", |b| {
        b.iter(|| black_box(prep::normalize(&sino, &dark, &flat)))
    });
    group.bench_function("minus_log", |b| {
        b.iter(|| black_box(prep::minus_log(&sino)))
    });
    group.bench_function("remove_zingers", |b| {
        b.iter(|| black_box(prep::remove_zingers(&sino, 0.5)))
    });
    group.bench_function("remove_stripes", |b| {
        b.iter(|| black_box(prep::remove_stripes(&sino, 9)))
    });
    group.bench_function("paganin", |b| {
        b.iter(|| black_box(prep::paganin_filter(&sino, 50.0)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fft,
    bench_filter,
    bench_projectors,
    bench_preprocessing
);
criterion_main!(benches);
