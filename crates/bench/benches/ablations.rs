//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! realtime QOS, the ALCF demand queue, checksum verification, transfer
//! concurrency, and the fail-early incident remediation. Each bench also
//! prints the metric difference so the log doubles as the ablation table.

use als_flows::campaign::{run_campaign, CampaignConfig};
use als_flows::incident::run_incident;
use als_flows::sim::{SimConfig, FLOW_ALCF, FLOW_NERSC};
use als_globus::compute::AcquisitionMode;
use als_hpc::scheduler::Qos;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn campaign_with(cfg: SimConfig) -> f64 {
    run_campaign(&CampaignConfig {
        n_scans: 30,
        sim: cfg,
    })
    .measured(FLOW_NERSC)
    .map(|m| m.median)
    .unwrap_or(0.0)
}

fn bench_qos_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_qos");
    group.sample_size(10);
    for qos in [Qos::Realtime, Qos::Regular] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{qos:?}")),
            &qos,
            |b, &qos| {
                b.iter(|| {
                    black_box(campaign_with(SimConfig {
                        seed: 77,
                        nersc_qos: qos,
                        nersc_nodes: 4,
                        background_mean_arrival_s: Some(240.0),
                        ..Default::default()
                    }))
                })
            },
        );
    }
    group.finish();
    let rt = campaign_with(SimConfig {
        seed: 77,
        nersc_qos: Qos::Realtime,
        nersc_nodes: 4,
        background_mean_arrival_s: Some(240.0),
        ..Default::default()
    });
    let reg = campaign_with(SimConfig {
        seed: 77,
        nersc_qos: Qos::Regular,
        nersc_nodes: 4,
        background_mean_arrival_s: Some(240.0),
        ..Default::default()
    });
    eprintln!("ablation_qos: nersc flow median realtime {rt:.0} s vs regular {reg:.0} s");
}

fn bench_demand_queue_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_demand_queue");
    group.sample_size(10);
    let alcf_median = |mode: AcquisitionMode| {
        run_campaign(&CampaignConfig {
            n_scans: 30,
            sim: SimConfig {
                seed: 78,
                alcf_mode: mode,
                background_mean_arrival_s: None,
                ..Default::default()
            },
        })
        .measured(FLOW_ALCF)
        .map(|m| m.median)
        .unwrap_or(0.0)
    };
    for mode in [AcquisitionMode::DemandQueue, AcquisitionMode::Batch] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{mode:?}")),
            &mode,
            |b, &mode| b.iter(|| black_box(alcf_median(mode))),
        );
    }
    group.finish();
    eprintln!(
        "ablation_demand_queue: alcf flow median demand {:.0} s vs batch {:.0} s",
        alcf_median(AcquisitionMode::DemandQueue),
        alcf_median(AcquisitionMode::Batch)
    );
}

fn bench_checksum_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_checksum");
    group.sample_size(10);
    let median = |verify: bool| {
        campaign_with(SimConfig {
            seed: 79,
            verify_checksums: verify,
            background_mean_arrival_s: None,
            ..Default::default()
        })
    };
    for verify in [true, false] {
        group.bench_with_input(
            BenchmarkId::from_parameter(verify),
            &verify,
            |b, &verify| b.iter(|| black_box(median(verify))),
        );
    }
    group.finish();
    eprintln!(
        "ablation_checksum: nersc flow median verified {:.0} s vs unverified {:.0} s",
        median(true),
        median(false)
    );
}

fn bench_fail_early_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_fail_early");
    for fail_fast in [false, true] {
        group.bench_with_input(
            BenchmarkId::from_parameter(if fail_fast {
                "fail_early"
            } else {
                "legacy_hang"
            }),
            &fail_fast,
            |b, &ff| b.iter(|| black_box(run_incident(ff, 8, 1))),
        );
    }
    group.finish();
    let legacy = run_incident(false, 8, 1);
    let fixed = run_incident(true, 8, 1);
    eprintln!(
        "ablation_fail_early: legitimate transfers mean legacy {:.0} s vs fail-early {:.0} s",
        legacy.mean_scan_transfer_s.unwrap_or(f64::NAN),
        fixed.mean_scan_transfer_s.unwrap_or(f64::NAN)
    );
}

criterion_group!(
    benches,
    bench_qos_ablation,
    bench_demand_queue_ablation,
    bench_checksum_ablation,
    bench_fail_early_ablation
);
criterion_main!(benches);
