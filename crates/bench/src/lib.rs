//! Shared helpers for the bench crate (currently none; benches are self-contained).
