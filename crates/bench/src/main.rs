//! `experiments` — regenerate every table and figure of the paper.
//!
//! ```sh
//! cargo run --release -p als-bench --bin experiments            # everything
//! cargo run --release -p als-bench --bin experiments table2    # one artifact
//! ```
//!
//! Artifacts: `table1`, `table2`, `fig1`, `fig2`, `fig3`, `streaming`
//! (S1), `speedup` (S2), `lifecycle` (S3), `incident` (S4), `resilience`
//! (R1), `recovery` (R2), `shard_recovery` (R3), `routing` (R4),
//! `observability` (R5), `quality` (Q1). Output goes to stdout; figure
//! assets land in `target/experiments/`.

use als_flows::campaign::{run_campaign, CampaignConfig};
use als_flows::incident::incident_comparison;
use als_flows::lifecycle::{cadence_sweep, run_lifecycle};
use als_flows::realmode::run_session;
use als_flows::streaming_model::{speedup_vs_historical, streaming_timing};
use als_flows::users::table1_text;
use als_phantom::{feather_volume, shepp_logan_volume, FeatherSpecies, MorphologyReport};
use als_tomo::quality::{mse_in_disk, psnr};
use als_tomo::throughput::ScanDims;
use als_viz::{write_preview_pgms, Window};
use std::path::PathBuf;

fn out_dir() -> PathBuf {
    let d = PathBuf::from("target/experiments");
    std::fs::create_dir_all(&d).ok();
    d
}

fn main() {
    let which: Vec<String> = std::env::args().skip(1).collect();
    let run_all = which.is_empty();
    let wants = |name: &str| run_all || which.iter().any(|w| w == name);

    if wants("table1") {
        println!("\n================ TABLE 1 ================\n");
        println!("{}", table1_text());
    }
    if wants("table2") {
        println!("\n================ TABLE 2 ================\n");
        let report = run_campaign(&CampaignConfig::default());
        println!("{}", report.table2_text());
        println!(
            "campaign: {:.1} h simulated, {:.2} TiB over the WAN, mean {:.1} Gbps per transfer",
            report.campaign_hours,
            report.total_transfer_gib / 1024.0,
            report.mean_transfer_gbps
        );
        for (flow, rate) in &report.success_rates {
            println!("  {flow}: {:.0}% success", rate * 100.0);
        }
    }
    if wants("fig1") {
        println!("\n================ FIGURE 1 (feather morphology) ================\n");
        let dir = out_dir();
        for species in [FeatherSpecies::Chicken, FeatherSpecies::Sandgrouse] {
            let phantom = feather_volume(species, 96, 6, 1234);
            let session_dir = dir.join(species.name());
            let result = run_session(&phantom, 120, &session_dir, species.name(), 7);
            let m = MorphologyReport::of_volume(&result.file_based_volume, 0.5);
            println!(
                "{:<11} material {:.3}  enclosed-void {:.4}  radial-anisotropy {:.3}",
                species.name(),
                m.material_fraction,
                m.enclosed_void_fraction,
                m.radial_anisotropy
            );
            let mid = result.file_based_volume.slice_xy(3);
            als_viz::write_pgm(
                &dir.join(format!("fig1_{}.pgm", species.name())),
                &mid,
                Window::percentile(&mid, 1.0, 99.0),
            )
            .unwrap();
        }
        println!("renders: {}/fig1_*.pgm", dir.display());
    }
    if wants("fig2") {
        println!("\n================ FIGURE 2 (user journey) ================\n");
        let dir = out_dir().join("fig2");
        let phantom = shepp_logan_volume(96, 6);
        let result = run_session(&phantom, 96, &dir, "fig2_scan", 42);
        println!("A. sample aligned (phantom mounted)");
        println!("B. streaming service launched at NERSC (SFAPI)");
        println!(
            "C. scan started: {} frames published",
            result.preview.cached_frames
        );
        println!(
            "D/E. orthogonal preview in ImageJ {:.2} s after acquisition end",
            result.preview.recon_wall.as_secs_f64() + result.preview.send_wall.as_secs_f64()
        );
        let paths = write_preview_pgms(&out_dir(), "fig2_preview", &result.preview.slices).unwrap();
        println!(
            "F. scan file for JupyterLab analysis: {}",
            result.scan_path.display()
        );
        println!(
            "G. preview assets: {}",
            paths[0].parent().unwrap().display()
        );
    }
    if wants("fig3") {
        println!("\n================ FIGURE 3 (operational layers) ================\n");
        let t = streaming_timing(&ScanDims::paper_reference());
        println!(
            "Acquisition : 1969 frames, {:.1} GiB raw, ~3 min beam time",
            t.raw_gib
        );
        println!("Orchestration: new_file_832 + nersc_recon_flow + alcf_recon_flow per scan");
        println!("Movement    : streaming (PVA) + Globus file transfer (checksummed)");
        println!(
            "Compute     : NERSC realtime Slurm + ALCF Globus Compute; streaming recon {:.1} s",
            t.recon.as_secs_f64()
        );
        println!(
            "Access      : {:.1} GiB volume, TIFF + multiscale store, SciCat metadata",
            t.volume_gib
        );
        let report = run_campaign(&CampaignConfig {
            n_scans: 20,
            ..Default::default()
        });
        println!(
            "\n20-scan layer throughput check:\n{}",
            report.table2_text()
        );
    }
    if wants("streaming") {
        println!("\n================ S1 (streaming branch timing) ================\n");
        for scale in [1.0, 0.5, 0.25] {
            let dims = ScanDims::paper_reference().scaled(scale);
            let t = streaming_timing(&dims);
            println!(
                "scale {scale:>4}: {:>5} x {:>4} x {:>4} -> recon {:>6.2} s + send {:>5.3} s = {:>6.2} s",
                dims.n_angles,
                dims.det_rows,
                dims.det_cols,
                t.recon.as_secs_f64(),
                t.preview_send.as_secs_f64(),
                t.total.as_secs_f64()
            );
        }
        println!("(paper at scale 1: 7-8 s recon, <1 s send, <10 s total)");
    }
    if wants("speedup") {
        println!("\n================ S2 (time-to-insight) ================\n");
        let s = speedup_vs_historical();
        println!(
            "historical: {:.0} min (45 min save + 60 min single-slice recon)",
            s.historical.as_secs_f64() / 60.0
        );
        println!("streaming : {:.1} s", s.streaming.as_secs_f64());
        println!("speedup   : {:.0}x (paper: >100x)", s.speedup);
    }
    if wants("lifecycle") {
        println!("\n================ S3 (data lifecycle) ================\n");
        println!(
            "{:>9} {:>12} {:>12} {:>14} {:>10} {:>10}",
            "cadence", "scans/h", "raw TB/day", "total TB/day", "peak occ", "final occ"
        );
        for r in cadence_sweep(1, 11) {
            println!(
                "{:>8}s {:>12.1} {:>12.2} {:>14.2} {:>10.2} {:>10.2}",
                r.cadence_s,
                r.scans_per_hour,
                r.daily_raw_tb,
                r.daily_total_tb,
                r.beamline_peak_occupancy,
                r.beamline_final_occupancy
            );
        }
        let unpruned = run_lifecycle(240.0, 2, false, 11);
        println!(
            "\nwithout pruning (2 days @ 240 s): final occupancy {:.2} (saturating)",
            unpruned.beamline_final_occupancy
        );
    }
    if wants("incident") {
        println!("\n================ S4 (prune-burst incident) ================\n");
        let fmt_mean = |m: Option<f64>| m.map_or("   n/a".to_string(), |s| format!("{s:>6.0}"));
        for burst in [4, 8, 16] {
            let (legacy, fixed) = incident_comparison(burst, 1);
            println!(
                "burst {burst:>3}: legacy mean {} s ({}/{} on time) | fail-early mean {} s ({}/{} on time)",
                fmt_mean(legacy.mean_scan_transfer_s),
                legacy.scans_on_time,
                legacy.scans_total,
                fmt_mean(fixed.mean_scan_transfer_s),
                fixed.scans_on_time,
                fixed.scans_total
            );
        }
    }
    if wants("resilience") {
        println!("\n================ R1 (fault injection + failover) ================\n");
        let report = als_flows::resilience::resilience_experiment(24, 5);
        let row = |o: &als_flows::ResilienceOutcome| {
            format!(
                "{:>5.1}% complete ({:>2}/{:<2}) | {:>2} failovers {:>2} remote-cancels {:>2} breaker trips | p50 {} p99 {}",
                o.completion_rate * 100.0,
                o.branch_flows_completed,
                o.branch_flows_total,
                o.failover_count,
                o.remote_cancels,
                o.nersc_breaker_trips + o.alcf_breaker_trips,
                o.p50_flow_s.map_or("   n/a".into(), |s| format!("{s:>6.0} s")),
                o.p99_flow_s.map_or("   n/a".into(), |s| format!("{s:>6.0} s")),
            )
        };
        println!("90-min NERSC outage mid-beamtime (24 scans @ 5 min):");
        println!("  failover on : {}", row(&report.outage.with_failover));
        println!("  failover off: {}", row(&report.outage.without_failover));
        println!("\nseeded fault storms (mixed outages/brownouts/auth/corruption):");
        for p in &report.sweep {
            println!("  intensity {:.2}", p.intensity);
            println!("    failover on : {}", row(&p.comparison.with_failover));
            println!("    failover off: {}", row(&p.comparison.without_failover));
        }
        println!("\n(cross-facility failover holds completion near 100% as faults intensify)");
    }
    if wants("routing") {
        println!(
            "\n================ R4 (cost-aware N-way routing, rolling outages) ================\n"
        );
        let report = als_flows::routing::routing_experiment(24, 5);
        let row = |o: &als_flows::RoutingOutcome| {
            let served = o
                .served_by
                .iter()
                .map(|(f, n)| format!("{f}:{n}"))
                .collect::<Vec<_>>()
                .join(" ");
            format!(
                "{:>5.1}% complete ({:>2}/{:<2}) | {:>2} redirects (max {} hops) {:>2} remote-cancels {} dup side-effects | p50 {} p95 {} | served {}",
                o.completion_rate * 100.0,
                o.branch_flows_completed,
                o.branch_flows_total,
                o.failover_count,
                o.max_route_hops,
                o.remote_cancels,
                o.duplicate_side_effects,
                o.p50_flow_s.map_or("   n/a".into(), |s| format!("{s:>6.0} s")),
                o.p95_flow_s.map_or("   n/a".into(), |s| format!("{s:>6.0} s")),
                served,
            )
        };
        let r = &report.rolling;
        println!("rolling 3-facility outage schedule (OLCF early, then NERSC, then ALCF on top; 24 scans @ 5 min):");
        println!("  cost-aware, 3 facilities: {}", row(&r.cost_aware_3fac));
        println!("  one-shot,   2 facilities: {}", row(&r.one_shot_2fac));
        println!(
            "\n(the cost-aware router re-routes a branch more than once — NERSC→ALCF→OLCF —\n so the campaign survives outages that roll across the fleet; the one-shot\n router strands every branch whose single refuge also dies)"
        );
    }
    if wants("observability") {
        println!(
            "\n================ R5 (telemetry spine: traces + Table-2 report under crash) ================\n"
        );
        let bundle = als_flows::observability::run_observability(24, 5);
        let r = &bundle.report;
        println!(
            "rolling outages + coordinator crash at t={}s ({}s restart); 24 scans @ 5 min:",
            als_flows::observability::CRASH_AT_S,
            als_flows::observability::CRASH_RESTART_S,
        );
        println!(
            "  {} traced scans | {} branches completed | {} redirects | {} crash / {} recovery",
            r.traced_scans, r.completed_branches, r.failover_count, r.crash_count, r.recovery_count,
        );
        println!(
            "  spans: {} open after drain | {} redirect links | {} router-decision notes",
            r.open_spans, r.redirect_links, r.routed_notes,
        );
        println!(
            "  accounting identity (stage_sum − overlap + idle = end-to-end): {}",
            if r.accounting_identity_holds {
                "holds, µs-exact"
            } else {
                "VIOLATED"
            },
        );
        println!(
            "  crash reconstruction (journal-only verifier vs live store):   {}",
            if r.crash_reconstruction_identical {
                "identical"
            } else {
                "DIVERGED"
            },
        );
        if let Some(t) = &bundle.timeline {
            println!("\nsample trace timeline (deepest redirect chain):\n");
            print!("{}", t.rendered);
        }
        println!("\nTable-2-style per-stage latency by facility:\n");
        print!("{}", r.table.render());
        let dir = out_dir();
        let metrics = dir.join("r5_metrics.json");
        std::fs::write(&metrics, &bundle.metrics_json).ok();
        std::fs::write(dir.join("r5_metrics.prom"), &bundle.prometheus_text).ok();
        println!(
            "\n(wrote the fleet metrics snapshot to {} — journal flush batches, group-commit\n latency, router decisions, WAN bandwidth, recovery counters)",
            metrics.display()
        );
        // CI gate: the telemetry spine's two hard guarantees
        if !r.accounting_identity_holds || !r.crash_reconstruction_identical {
            eprintln!("R5 FAILED: telemetry invariant violated");
            std::process::exit(1);
        }
    }
    if wants("recovery") {
        println!(
            "\n================ R2 (orchestrator crash + durable recovery) ================\n"
        );
        let report = als_flows::recovery::recovery_experiment(24, 5);
        let row = |o: &als_flows::RecoveryOutcome| {
            format!(
                "{:>5.1}% complete ({:>2}/{:<2}) | {:>2} duplicated steps | {} crashes {} replays {:>2} re-attached {:>2} orphans cancelled | p50 {} p99 {}",
                o.completion_rate * 100.0,
                o.branches_completed,
                o.branches_total,
                o.duplicate_side_effects,
                o.crashes,
                o.recoveries,
                o.reattached_ops,
                o.orphans_cancelled,
                o.p50_latency_s.map_or("   n/a".into(), |s| format!("{s:>6.0} s")),
                o.p99_latency_s.map_or("   n/a".into(), |s| format!("{s:>6.0} s")),
            )
        };
        println!("one crash mid-campaign, 10-min restart gap (24 scans @ 5 min):");
        println!("  journal on : {}", row(&report.one_crash.durable));
        println!("  journal off: {}", row(&report.one_crash.non_durable));
        println!("\ncrash storm (three deaths, 7.5-min gaps):");
        println!("  journal on : {}", row(&report.crash_storm.durable));
        println!("  journal off: {}", row(&report.crash_storm.non_durable));
        println!(
            "\n(the write-ahead journal resumes in-flight work without re-initiating it; the\n amnesiac baseline either loses branches or duplicates facility work)"
        );
    }
    if wants("shard_recovery") {
        println!("\n================ R3 (sharded journal + shard-level chaos) ================\n");
        let report = als_flows::shard_chaos_experiment(24, 5);
        println!(
            "{:>6} {:>9} {:>10} {:>8} {:>9} {:>10} {:>9} {:>9} {:>9}",
            "shards",
            "complete",
            "duplicates",
            "crashes",
            "re-attach",
            "adopted",
            "degraded",
            "damaged",
            "isolated"
        );
        for o in &report.rows {
            println!(
                "{:>6} {:>8.1}% {:>10} {:>8} {:>9} {:>10} {:>9} {:>9} {:>9}",
                o.shards,
                o.completion_rate * 100.0,
                o.duplicate_side_effects,
                o.crashes,
                o.reattached_ops,
                o.adopted_orphan_ops,
                o.degraded_scans,
                o.damaged_shards,
                o.damage_isolated,
            );
        }
        println!(
            "\n(every crash also wounds one shard's journal image — torn group-commit,\n truncated tail, or corrupt byte. Flows on intact shards recover by plain\n replay; only the wounded shard's flows need evidence-based healing, and\n nothing is ever initiated twice at a facility)"
        );
    }
    if wants("dynamic") {
        println!("\n================ §6 extension: 4D time-resolved streaming ================\n");
        let series = als_flows::dynamic::run_creep_series(64, 4, 5, 64, 2020);
        println!(
            "{:>5} {:>12} {:>12} {:>10}",
            "step", "compaction", "porosity", "recon s"
        );
        for s in &series.steps {
            println!(
                "{:>5} {:>12.2} {:>12.3} {:>10.2}",
                s.step, s.compaction, s.porosity, s.recon_secs
            );
        }
        println!(
            "porosity trace monotone: {} (live experiment-steering signal)",
            series.porosity_monotone_decreasing(0.03)
        );
    }
    if wants("scaling") {
        println!("\n================ §6 extension: multi-beamline scaling ================\n");
        println!(
            "{:>10} {:>22} {:>12} {:>12}",
            "beamlines", "policy", "median s", "p95 s"
        );
        for p in als_flows::multibeamline::scaling_sweep(&[1, 2, 4], 10, 9) {
            println!(
                "{:>10} {:>22} {:>12.0} {:>12.0}",
                p.beamlines,
                format!("{:?}", p.policy),
                p.median_s,
                p.p95_s
            );
        }
        println!("(shared pool degrades with fleet size; reserved compute stays flat)");
    }
    if wants("quality") {
        println!(
            "\n================ Q1 (recon quality: streaming vs file-based) ================\n"
        );
        let dir = out_dir().join("quality");
        let truth = shepp_logan_volume(64, 2);
        // photon-limited acquisition: the regime where preprocessing +
        // iterative reconstruction earn the file-based branch's latency
        let det = als_phantom::DetectorConfig {
            i0: 500.0,
            ..Default::default()
        };
        for n_angles in [16usize, 32, 64] {
            let r = als_flows::realmode::run_session_with(
                &truth,
                n_angles,
                &dir,
                &format!("q{n_angles}"),
                5,
                det,
            );
            let t = truth.slice_xy(1);
            let s = r.streaming_volume.slice_xy(1);
            let f = r.file_based_volume.slice_xy(1);
            println!(
                "{n_angles:>3} angles: streaming FBP psnr {:>5.1} dB (mse {:.5}) | file-based SIRT psnr {:>5.1} dB (mse {:.5})",
                psnr(&t, &s, 1.0),
                mse_in_disk(&t, &s),
                psnr(&t, &f, 1.0),
                mse_in_disk(&t, &f)
            );
        }
        println!("(the file-based branch trades 20-30 min of latency for quality)");
    }
}
