//! The paper-scale multi-facility campaign: 100 scans through the full
//! dual-path infrastructure on the discrete-event simulation, regenerating
//! Table 2, the streaming-branch timings, the >100x speedup claim, and
//! the §5.3 incident comparison.
//!
//! ```sh
//! cargo run --release --example multi_facility_campaign
//! ```

use als_flows::campaign::{run_campaign, CampaignConfig};
use als_flows::incident::incident_comparison;
use als_flows::streaming_model::{speedup_vs_historical, streaming_timing};
use als_tomo::throughput::ScanDims;

fn main() {
    println!("== Multi-facility campaign: 100 scans, dual-path processing ==\n");
    let report = run_campaign(&CampaignConfig::default());
    println!("{}", report.table2_text());
    println!(
        "campaign: {:.1} h simulated, {:.1} TiB over the WAN, mean transfer {:.1} Gbps",
        report.campaign_hours,
        report.total_transfer_gib / 1024.0,
        report.mean_transfer_gbps
    );
    for (flow, rate) in &report.success_rates {
        println!("  {flow}: {:.0}% success", rate * 100.0);
    }

    println!("\n== Streaming branch at paper scale (S1) ==");
    let t = streaming_timing(&ScanDims::paper_reference());
    println!(
        "scan 1969 x 2160 x 2560 u16 ({:.1} GiB raw, {:.1} GiB volume)",
        t.raw_gib, t.volume_gib
    );
    println!(
        "recon {:.1} s + preview send {:.2} s = {:.1} s total (paper: 7-8 s + <1 s, <10 s total)",
        t.recon.as_secs_f64(),
        t.preview_send.as_secs_f64(),
        t.total.as_secs_f64()
    );

    println!("\n== Time-to-insight speedup (S2) ==");
    let s = speedup_vs_historical();
    println!(
        "historical {:.0} min -> streaming {:.1} s: {:.0}x (paper: >100x)",
        s.historical.as_secs_f64() / 60.0,
        s.streaming.as_secs_f64(),
        s.speedup
    );

    println!("\n== The prune-burst incident (S4) ==");
    let (legacy, fixed) = incident_comparison(8, 1);
    println!(
        "legacy (hang):      scan transfers mean {:>7.0} s, {}/{} on time",
        legacy.mean_scan_transfer_s.unwrap_or(f64::NAN),
        legacy.scans_on_time,
        legacy.scans_total
    );
    println!(
        "fail-early (fixed): scan transfers mean {:>7.0} s, {}/{} on time",
        fixed.mean_scan_transfer_s.unwrap_or(f64::NAN),
        fixed.scans_on_time,
        fixed.scans_total
    );
}
