//! Case Study 2: fracking proppant analysis, a retrospective.
//!
//! The paper reanalyzes a 2020 micro-CT dataset of proppant-filled shale
//! fractures with the new infrastructure, producing a segmented volume
//! that visitors later explored in VR. Here: synthesize the 4D creep
//! series, push each time step through reconstruction, segment, track
//! fracture porosity over time, and export a multiscale (Zarr-style)
//! volume — the access-layer product the web viewer consumes.
//!
//! ```sh
//! cargo run --release --example proppant_retrospective
//! ```

use als_phantom::proppant::{fracture_porosity, proppant_creep_series, ProppantConfig};
use als_scidata::MultiscaleStore;
use als_tomo::{fbp_slice, forward_project, FbpConfig, Geometry, Volume};
use als_viz::{write_pgm, Window};

fn main() {
    let out_dir = std::env::temp_dir().join("als_flows_proppant");
    std::fs::remove_dir_all(&out_dir).ok();
    std::fs::create_dir_all(&out_dir).unwrap();

    println!("== Case Study 2: proppant retrospective (4D creep series) ==\n");

    // the "2020 dataset": four time steps of an in-situ creep experiment
    let series = proppant_creep_series(96, 6, &ProppantConfig::default(), 4, 2020);
    let geom = Geometry::parallel_180(120, 96);
    let cfg = FbpConfig::default();

    println!(
        "{:<6} {:>18} {:>18}",
        "step", "porosity (truth)", "porosity (recon)"
    );
    let mut last_recon = None;
    for (step, truth) in series.iter().enumerate() {
        // reprocess through the reconstruction pipeline
        let mut recon = Volume::zeros(96, 96, truth.nz);
        for z in 0..truth.nz {
            let sino = forward_project(&truth.slice_xy(z), &geom);
            let img = fbp_slice(&sino, &geom, &cfg).unwrap();
            recon.set_slice_xy(z, &img);
        }
        // segment by thresholding the reconstruction at the
        // shale/pore midpoint, then measure porosity
        let mut segmented = recon.clone();
        for v in segmented.data.iter_mut() {
            *v = if *v > 0.4 { 1.0 } else { 0.0 };
        }
        let p_truth = fracture_porosity(truth);
        let p_recon = fracture_porosity_reconstructed(&recon);
        println!("{:<6} {:>18.3} {:>18.3}", step, p_truth, p_recon);
        let mid = recon.slice_xy(3);
        write_pgm(
            &out_dir.join(format!("creep_step{step}.pgm")),
            &mid,
            Window::percentile(&mid, 1.0, 99.0),
        )
        .unwrap();
        last_recon = Some(recon);
    }

    // export the final state as a multiscale store for the web viewer / VR
    let final_recon = last_recon.expect("at least one step");
    let store = MultiscaleStore::create(
        &out_dir.join("proppant.mzarr"),
        "proppant_2020_retrospective",
        &final_recon,
        [4, 32, 32],
        3,
    )
    .unwrap();
    println!(
        "\nmultiscale volume: {} levels, {:.1} MiB on disk — ready for the \
         itk-vtk-viewer-style web app (and the Quest 3 demo)",
        store.n_levels(),
        store.disk_bytes() as f64 / (1 << 20) as f64
    );
    println!("artifacts in {}", out_dir.display());
}

/// Porosity of the reconstructed (continuous-valued) volume: classify
/// voxels against the shale/grain attenuation levels (shale 0.8, grain
/// 1.0, pore 0.0) and report pore / (pore + grain), mirroring
/// [`fracture_porosity`] on segmented data.
fn fracture_porosity_reconstructed(vol: &Volume) -> f64 {
    let mut pore = 0usize;
    let mut grain = 0usize;
    for z in 0..vol.nz {
        for y in 0..vol.ny {
            for x in 0..vol.nx {
                let v = vol.get(x, y, z);
                if v < 0.3 {
                    pore += 1;
                } else if v > 0.9 {
                    grain += 1;
                }
            }
        }
    }
    let total = pore + grain;
    if total == 0 {
        0.0
    } else {
        pore as f64 / total as f64
    }
}
