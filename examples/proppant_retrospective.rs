//! Case Study 2: fracking proppant analysis, a retrospective.
//!
//! The paper reanalyzes a 2020 micro-CT dataset of proppant-filled shale
//! fractures with the new infrastructure, producing a segmented volume
//! that visitors later explored in VR. Here: synthesize the 4D creep
//! series, re-acquire each time step as a raw scan, push it through the
//! chunked scan-to-archive pipeline, segment, track fracture porosity
//! over time, and export a multiscale (Zarr-style) volume — the
//! access-layer product the web viewer consumes — streamed slice by
//! slice from the final step's reconstruction as it completes.
//!
//! ```sh
//! cargo run --release --example proppant_retrospective
//! ```

use als_flows::realmode::streaming_reconstruction;
use als_phantom::proppant::{fracture_porosity, proppant_creep_series, ProppantConfig};
use als_phantom::{DetectorConfig, ScanSimulator};
use als_scidata::{MultiscaleStore, MultiscaleWriter, ScanFile};
use als_tomo::pipeline::{self, PipelineConfig, ReconKind, SliceSink, VolumeSink};
use als_tomo::{FbpConfig, Geometry, Volume};
use als_viz::{write_pgm, Window};

/// Re-acquire a truth volume as the raw scan the 2020 beamline would
/// have written: noiseless detector, counts quantized to u16.
fn reacquire(truth: &Volume, geom: &Geometry, name: &str, seed: u64) -> (ScanFile, f64) {
    let det = DetectorConfig {
        noise: false,
        ..Default::default()
    };
    let mut sim = ScanSimulator::new(truth, geom.clone(), det, seed);
    let frames = sim.all_frames();
    let scan = ScanFile::from_frames(
        name,
        &frames,
        sim.dark_field(),
        sim.flat_field(),
        &geom.angles,
    )
    .expect("scan assembles");
    (scan, det.mu_scale)
}

fn main() {
    let out_dir = std::env::temp_dir().join("als_flows_proppant");
    std::fs::remove_dir_all(&out_dir).ok();
    std::fs::create_dir_all(&out_dir).unwrap();

    println!("== Case Study 2: proppant retrospective (4D creep series) ==\n");

    // the "2020 dataset": four time steps of an in-situ creep experiment
    let series = proppant_creep_series(96, 6, &ProppantConfig::default(), 4, 2020);
    let geom = Geometry::parallel_180(120, 96);

    println!(
        "{:<6} {:>18} {:>18}",
        "step", "porosity (truth)", "porosity (recon)"
    );
    let n_steps = series.len();
    let mut archive_report = None;
    for (step, truth) in series.iter().enumerate() {
        // re-acquire the step as a raw scan and reprocess it through the
        // chunked pipeline (slab transpose -> fused prep -> FBP)
        let (scan, mu) = reacquire(
            truth,
            &geom,
            &format!("proppant_step{step}"),
            2020 + step as u64,
        );
        let recon = if step + 1 < n_steps {
            streaming_reconstruction(&scan, mu)
        } else {
            // final state: same pipeline, but with the multiscale archive
            // sink attached — chunks stream to disk while later slices
            // are still reconstructing
            let mut vol_sink = VolumeSink::new();
            let mut mzarr = MultiscaleWriter::new(
                &out_dir.join("proppant.mzarr"),
                "proppant_2020_retrospective",
                [4, 32, 32],
                3,
            );
            let report = {
                let mut sinks: [&mut dyn SliceSink; 2] = [&mut vol_sink, &mut mzarr];
                let cfg = PipelineConfig {
                    recon: ReconKind::Fbp(FbpConfig::default()),
                    mu_scale: mu,
                    ..Default::default()
                };
                pipeline::run(&scan, &mut sinks, &cfg).expect("archive pipeline succeeds")
            };
            archive_report = Some(report);
            let (nx, ny, nz) = vol_sink.shape();
            let mut vol = Volume::zeros(nx, ny, nz);
            vol.data = vol_sink.into_data();
            vol
        };
        // segment by thresholding the reconstruction at the
        // shale/pore midpoint, then measure porosity
        let mut segmented = recon.clone();
        for v in segmented.data.iter_mut() {
            *v = if *v > 0.4 { 1.0 } else { 0.0 };
        }
        let p_truth = fracture_porosity(truth);
        let p_recon = fracture_porosity_reconstructed(&recon);
        println!("{:<6} {:>18.3} {:>18.3}", step, p_truth, p_recon);
        let mid = recon.slice_xy(3);
        write_pgm(
            &out_dir.join(format!("creep_step{step}.pgm")),
            &mid,
            Window::percentile(&mid, 1.0, 99.0),
        )
        .unwrap();
    }

    // the multiscale store was streamed during the final reconstruction;
    // reopen it for the viewer-facing stats
    let store = MultiscaleStore::open(&out_dir.join("proppant.mzarr")).unwrap();
    let report = archive_report.expect("final step ran the archive pipeline");
    println!(
        "\nmultiscale volume: {} levels, {:.1} MiB on disk — ready for the \
         itk-vtk-viewer-style web app (and the Quest 3 demo)",
        store.n_levels(),
        store.disk_bytes() as f64 / (1 << 20) as f64
    );
    println!(
        "final-step scan->archive: {:.2} s wall, sink busy {:.0} ms of which {:.0} ms overlapped with recon",
        report.wall.as_secs_f64(),
        report.sink_busy.as_secs_f64() * 1e3,
        report.sink_busy_overlapped.as_secs_f64() * 1e3,
    );
    println!("artifacts in {}", out_dir.display());
}

/// Porosity of the reconstructed (continuous-valued) volume: classify
/// voxels against the shale/grain attenuation levels (shale 0.8, grain
/// 1.0, pore 0.0) and report pore / (pore + grain), mirroring
/// [`fracture_porosity`] on segmented data.
fn fracture_porosity_reconstructed(vol: &Volume) -> f64 {
    let mut pore = 0usize;
    let mut grain = 0usize;
    for z in 0..vol.nz {
        for y in 0..vol.ny {
            for x in 0..vol.nx {
                let v = vol.get(x, y, z);
                if v < 0.3 {
                    pore += 1;
                } else if v > 0.9 {
                    grain += 1;
                }
            }
        }
    }
    let total = pore + grain;
    if total == 0 {
        0.0
    } else {
        pore as f64 / total as f64
    }
}
