//! Case Study 1 (Figure 1): chicken vs sandgrouse feather morphology.
//!
//! The sandgrouse has evolved coiled barbule structures that store water
//! — absent in chicken feathers. The pipeline's job is to make that
//! difference visible *fast*: mount, scan, reconstruct, compare. Here we
//! run both samples through the full acquisition + reconstruction path
//! and quantify the difference with morphology descriptors.
//!
//! ```sh
//! cargo run --release --example feather_morphology
//! ```

use als_flows::realmode::run_session;
use als_phantom::{feather_volume, FeatherSpecies, MorphologyReport};
use als_viz::{write_pgm, Window};
use std::time::Instant;

fn main() {
    let out_dir = std::env::temp_dir().join("als_flows_feathers");
    std::fs::remove_dir_all(&out_dir).ok();
    std::fs::create_dir_all(&out_dir).unwrap();

    println!("== Case Study 1: feather morphology comparison ==\n");
    let t_session = Instant::now();

    let mut reports = Vec::new();
    for species in [FeatherSpecies::Chicken, FeatherSpecies::Sandgrouse] {
        let t0 = Instant::now();
        // mount + scan + reconstruct
        let phantom = feather_volume(species, 96, 6, 1234);
        let result = run_session(
            &phantom,
            120,
            &out_dir.join(species.name()),
            &format!("{}_feather", species.name()),
            7,
        );
        // measure morphology on the *reconstructed* volume, as a user
        // would — not on the phantom
        let report = MorphologyReport::of_volume(&result.file_based_volume, 0.5);
        println!(
            "{:<11} scanned+reconstructed in {:>5.1} s",
            species.name(),
            t0.elapsed().as_secs_f64()
        );
        println!(
            "{:<11} material {:.3}  enclosed-void {:.4}  radial-anisotropy {:.3}",
            "", report.material_fraction, report.enclosed_void_fraction, report.radial_anisotropy
        );
        let mid = result.file_based_volume.slice_xy(3);
        write_pgm(
            &out_dir.join(format!("{}_recon.pgm", species.name())),
            &mid,
            Window::percentile(&mid, 1.0, 99.0),
        )
        .unwrap();
        reports.push((species, report));
    }

    println!("\n-- side-by-side (the Figure 1 comparison, quantified) --");
    let (chicken, sandgrouse) = (&reports[0].1, &reports[1].1);
    println!(
        "enclosed void (water storage): sandgrouse {:.4} vs chicken {:.4}  ({}x)",
        sandgrouse.enclosed_void_fraction,
        chicken.enclosed_void_fraction,
        (sandgrouse.enclosed_void_fraction / chicken.enclosed_void_fraction.max(1e-6)) as u32
    );
    println!(
        "radial anisotropy (straight barbules): chicken {:.3} vs sandgrouse {:.3}",
        chicken.radial_anisotropy, sandgrouse.radial_anisotropy
    );
    assert!(
        sandgrouse.enclosed_void_fraction > chicken.enclosed_void_fraction,
        "the sandgrouse's coiled barbules must enclose more void"
    );
    println!(
        "\nmount→scan→reconstruct→compare took {:.1} s wall \
         (the paper: '20 minutes instead of hours' at production scale)",
        t_session.elapsed().as_secs_f64()
    );
    println!("renders in {}", out_dir.display());
}
