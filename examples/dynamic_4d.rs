//! The §6 future-work extension, running: 4D time-resolved streaming.
//!
//! An in-situ creep experiment on a proppant-filled fracture: every time
//! step is scanned and streamed through the real reconstruction service,
//! and the porosity trace updates live — the signal an experimenter uses
//! to steer (or stop) the experiment.
//!
//! ```sh
//! cargo run --release --example dynamic_4d
//! ```

use als_flows::dynamic::run_creep_series;

fn main() {
    println!("== 4D time-resolved streaming (paper §6, implemented) ==\n");
    println!("sample: proppant-filled shale fracture under creep, 6 time steps");
    println!("pipeline: scan -> PVA stream -> in-memory cache -> FBP -> porosity\n");

    let series = run_creep_series(80, 5, 6, 80, 2020);

    println!(
        "{:>5} {:>12} {:>12} {:>12} {:>13}",
        "step", "compaction", "porosity", "recon (s)", "feedback (s)"
    );
    let mut prev: Option<f64> = None;
    for s in &series.steps {
        let trend = match prev {
            Some(p) if s.porosity < p - 0.005 => "▼ closing",
            Some(_) => "≈ stable",
            None => "",
        };
        println!(
            "{:>5} {:>12.2} {:>12.3} {:>12.2} {:>13.2}   {}",
            s.step, s.compaction, s.porosity, s.recon_secs, s.feedback_secs, trend
        );
        prev = Some(s.porosity);
    }
    println!(
        "\nzero-copy stream: {} reconstruction plan(s) built for {} steps \
         ({} cache hits), {} slab buffer(s) allocated for {} frames",
        series.plans_built,
        series.steps.len(),
        series.plan_cache_hits,
        series.slabs_allocated,
        series.steps.len() * 80
    );

    let first = series.steps.first().unwrap().porosity;
    let last = series.steps.last().unwrap().porosity;
    println!(
        "\nfracture porosity closed from {:.3} to {:.3} over the experiment",
        first, last
    );
    println!(
        "trace monotone: {} — at production scale each point would arrive \
         <10 s after its scan, fast enough to stop the press before the \
         fracture seals",
        series.porosity_monotone_decreasing(0.03)
    );
}
