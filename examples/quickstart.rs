//! Quickstart: one complete dual-path beamline session (Figure 2's user
//! journey) at laptop scale.
//!
//! Mount a (synthetic) sample, start the streaming service, run a scan,
//! get the three-slice preview back, then let the file-based branch
//! produce the high-quality reconstruction — and compare the two.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use als_flows::realmode::{run_session_with, scan_to_archive, FileBranchConfig};
use als_phantom::{shepp_logan_volume, DetectorConfig};
use als_scidata::ScanFile;
use als_tomo::quality::{mse_in_disk, psnr};
use als_viz::{write_preview_pgms, Window};

fn main() {
    let out_dir = std::env::temp_dir().join("als_flows_quickstart");
    std::fs::remove_dir_all(&out_dir).ok();
    std::fs::create_dir_all(&out_dir).unwrap();

    println!("== ALS 8.3.2 dual-path session (laptop scale) ==\n");
    println!("sample: Shepp-Logan volume, 96x96x8, 96 angles, photon-limited exposure");

    // 1. acquire: detector -> PVA mirror -> {file writer, streaming svc}.
    // A short-exposure (noisy) acquisition: the regime where the paper's
    // high-quality file-based branch visibly earns its 20-30 minutes.
    let phantom = shepp_logan_volume(96, 8);
    let det = DetectorConfig {
        i0: 500.0,
        ..Default::default()
    };
    let result = run_session_with(&phantom, 96, &out_dir, "quickstart_scan", 42, det);

    // 2. the streaming branch's feedback (the <10 s path in production)
    println!("\n-- streaming branch --");
    println!("frames cached in memory : {}", result.preview.cached_frames);
    println!(
        "reconstruction wall time: {:.2} s",
        result.preview.recon_wall.as_secs_f64()
    );
    println!(
        "preview assembly        : {:.4} s",
        result.preview.send_wall.as_secs_f64()
    );
    let paths = write_preview_pgms(&out_dir, "preview", &result.preview.slices).unwrap();
    println!(
        "preview slices written  : {}",
        paths[0].parent().unwrap().display()
    );

    // 3. the file-based branch's product: the written scan goes through
    // the chunked scan-to-archive pipeline — slab transpose, fused prep,
    // slice-parallel SIRT, and both archive sinks on a dedicated I/O
    // thread, overlapped with reconstruction
    println!("\n-- file-based branch (scan-to-archive pipeline) --");
    println!("scan file               : {}", result.scan_path.display());
    println!(
        "raw size                : {:.1} MiB",
        result.scan_bytes as f64 / (1 << 20) as f64
    );
    let scan = ScanFile::load(&result.scan_path).expect("written scan loads");
    let archive = scan_to_archive(
        &scan,
        det.mu_scale,
        &FileBranchConfig::default(),
        &out_dir.join("archive"),
    );
    let rep = &archive.report;
    println!(
        "scan->archive wall      : {:.2} s ({:.1} slices/s, {} slabs)",
        rep.wall.as_secs_f64(),
        rep.slices_per_sec(),
        rep.slabs
    );
    println!(
        "stage busy (load/prep/recon/sink): {:.0}/{:.0}/{:.0}/{:.0} ms, sink overlapped with recon {:.0} ms",
        rep.load_busy.as_secs_f64() * 1e3,
        rep.prep_busy.as_secs_f64() * 1e3,
        rep.recon_busy.as_secs_f64() * 1e3,
        rep.sink_busy.as_secs_f64() * 1e3,
        rep.sink_busy_overlapped.as_secs_f64() * 1e3,
    );
    println!("tiff stack              : {}", archive.tiff_dir.display());
    println!(
        "multiscale store        : {}",
        archive.multiscale_dir.display()
    );

    // 4. quality comparison against ground truth
    println!("\n-- quality (vs ground-truth phantom, middle slice) --");
    let truth = phantom.slice_xy(4);
    let stream_slice = result.streaming_volume.slice_xy(4);
    let file_slice = result.file_based_volume.slice_xy(4);
    let (p_stream, p_file) = (
        psnr(&truth, &stream_slice, 1.0),
        psnr(&truth, &file_slice, 1.0),
    );
    println!(
        "streaming FBP   : PSNR {:.1} dB, disk MSE {:.5}",
        p_stream,
        mse_in_disk(&truth, &stream_slice)
    );
    println!(
        "file-based SIRT : PSNR {:.1} dB, disk MSE {:.5}",
        p_file,
        mse_in_disk(&truth, &file_slice)
    );
    let w = Window::percentile(&file_slice, 1.0, 99.0);
    als_viz::write_pgm(&out_dir.join("file_based_mid.pgm"), &file_slice, w).unwrap();

    println!("\nartifacts in {}", out_dir.display());
}
